//! Hardware aging as data: a deterministic, **resumable** drift model over
//! the [`Xavier`] simulator.
//!
//! The predictor-serving story assumes the device the predictor was trained
//! against stays put; real boards do not. Thermal throttling, DVFS policy
//! updates and silicon aging all move the latency surface — mostly as a
//! slowly varying *multiplicative* factor (every kernel slows down together
//! when the clocks drop). [`DriftSchedule`] models exactly that: a gradual
//! ramp plus step **bursts** (a fan dies, a power mode flips), and
//! [`DriftStream`] turns it into the live sample feed an online adaptation
//! loop consumes — `(architecture, observed latency)` pairs drawn one at a
//! time.
//!
//! Two properties make the stream testable:
//!
//! * **Deterministic**: every sample is a pure function of `(seed, index,
//!   time)` — same seed, same stream, byte for byte.
//! * **Resumable**: each sample re-derives its own RNG from the index
//!   ([`DriftStream::resume_at`]), so a stream restarted at index `k`
//!   continues exactly where a fresh stream advanced `k` times would be —
//!   no hidden RNG state to checkpoint.

use std::time::Duration;

use lightnas_space::{Architecture, SearchSpace};

use crate::device::Xavier;

/// splitmix64 step — the workspace's standard cheap seed mixer, inlined so
/// the device crate stays dependency-free.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The largest index a stream may be resumed at.
///
/// Indices live in the lower half of the `u64` range so the per-sample
/// increment can never wrap: a checkpoint key at `u64::MAX` would make the
/// *next* `next_sample` overflow, and an overflow here is always a corrupt
/// checkpoint, never a 9-quintillion-sample soak.
pub const MAX_RESUME_INDEX: u64 = u64::MAX >> 1;

/// Why a [`DriftStream`] could not be resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftStreamError {
    /// The requested resume index exceeds [`MAX_RESUME_INDEX`] — a corrupt
    /// or wrapped checkpoint key, refused instead of panicking mid-soak.
    IndexOutOfRange {
        /// The index that was asked for.
        index: u64,
        /// The largest acceptable index ([`MAX_RESUME_INDEX`]).
        max: u64,
    },
}

impl std::fmt::Display for DriftStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::IndexOutOfRange { index, max } => {
                write!(
                    f,
                    "drift stream resume index {index} out of range (max {max})"
                )
            }
        }
    }
}

impl std::error::Error for DriftStreamError {}

/// One step change in the device's latency scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftBurst {
    /// Device-clock time the burst lands.
    pub at: Duration,
    /// Multiplicative latency factor from `at` onwards (e.g. `1.35` =
    /// everything 35% slower). Factors compose across bursts.
    pub scale: f64,
}

/// A deterministic latency-drift profile: gradual thermal ramp plus
/// scheduled step bursts.
///
/// The profile is *pure data* — [`scale_at`](Self::scale_at) is a pure
/// function of time — which is what lets a drift soak re-run byte-identically
/// and lets a resumed stream agree with the original.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DriftSchedule {
    /// Fractional latency growth per second of device time (silicon aging /
    /// slow thermal creep). `0.0` = no ramp.
    pub ramp_per_s: f64,
    bursts: Vec<DriftBurst>,
}

impl DriftSchedule {
    /// A stationary device: scale 1.0 forever.
    pub fn stationary() -> Self {
        Self::default()
    }

    /// A pure ramp: scale grows by `ramp_per_s` per second, no bursts.
    pub fn ramp(ramp_per_s: f64) -> Self {
        Self {
            ramp_per_s,
            bursts: Vec::new(),
        }
    }

    /// Adds a step burst. Bursts may be pushed in any order; same-time
    /// bursts compose in insertion order (multiplication commutes, so the
    /// scale is order-independent — the ordering contract matters for the
    /// audit trail, not the arithmetic).
    pub fn push_burst(&mut self, at: Duration, scale: f64) {
        assert!(scale > 0.0, "burst scale must be positive, got {scale}");
        self.bursts.push(DriftBurst { at, scale });
    }

    /// Same schedule with one more burst (builder form).
    pub fn with_burst(mut self, at: Duration, scale: f64) -> Self {
        self.push_burst(at, scale);
        self
    }

    /// The scheduled bursts, in insertion order.
    pub fn bursts(&self) -> &[DriftBurst] {
        &self.bursts
    }

    /// The multiplicative latency factor in effect at `t`: the ramp term
    /// times every burst with `at <= t`.
    pub fn scale_at(&self, t: Duration) -> f64 {
        let mut scale = 1.0 + self.ramp_per_s * t.as_secs_f64();
        for b in &self.bursts {
            if b.at <= t {
                scale *= b.scale;
            }
        }
        scale
    }
}

/// One live observation from a drifting device.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftSample {
    /// 0-based position in the stream (the resume key).
    pub index: u64,
    /// The architecture that was profiled.
    pub arch: Architecture,
    /// Its flattened `ᾱ` encoding (what the predictor consumes).
    pub encoding: Vec<f32>,
    /// The noisy, drift-scaled latency the "board" reported, ms.
    pub observed_ms: f64,
    /// The drift-free ground truth (diagnostics only — a real deployment
    /// never sees this), ms.
    pub undrifted_ms: f64,
    /// The drift scale in effect when this sample was taken.
    pub scale: f64,
    /// Device-clock time of the measurement.
    pub at: Duration,
}

/// The live sample feed: random architectures profiled one at a time on a
/// drifting device.
///
/// The caller owns time (pass `now` to [`next_sample`](Self::next_sample)),
/// matching the serving layer's clock-as-capability discipline — a
/// `VirtualClock` soak and a wall-clock deployment use the same stream code.
#[derive(Debug, Clone)]
pub struct DriftStream<'a> {
    device: &'a Xavier,
    space: &'a SearchSpace,
    schedule: DriftSchedule,
    seed: u64,
    index: u64,
}

impl<'a> DriftStream<'a> {
    /// A stream from its first sample.
    pub fn new(
        device: &'a Xavier,
        space: &'a SearchSpace,
        schedule: DriftSchedule,
        seed: u64,
    ) -> Self {
        Self::resume_at(device, space, schedule, seed, 0).expect("index 0 is always in range")
    }

    /// A stream resumed at `index`: sample `index` and everything after it
    /// are byte-identical to a fresh stream advanced `index` times. O(1) —
    /// per-sample RNG is derived from the index, so there is no state to
    /// replay.
    ///
    /// # Errors
    ///
    /// Returns [`DriftStreamError::IndexOutOfRange`] when `index` exceeds
    /// [`MAX_RESUME_INDEX`]. A checkpoint key in the upper half of the
    /// `u64` range can only come from corruption or wrap-around, and the
    /// typed refusal keeps a bad checkpoint from turning into an index
    /// overflow panic deep inside a running soak.
    pub fn resume_at(
        device: &'a Xavier,
        space: &'a SearchSpace,
        schedule: DriftSchedule,
        seed: u64,
        index: u64,
    ) -> Result<Self, DriftStreamError> {
        if index > MAX_RESUME_INDEX {
            return Err(DriftStreamError::IndexOutOfRange {
                index,
                max: MAX_RESUME_INDEX,
            });
        }
        Ok(Self {
            device,
            space,
            schedule,
            seed,
            index,
        })
    }

    /// The next stream index to be produced (the checkpoint key).
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The active drift schedule.
    pub fn schedule(&self) -> &DriftSchedule {
        &self.schedule
    }

    /// Injects a step burst at `at` (chaos plans land drift bursts here
    /// mid-run). Past samples are unaffected; the stream stays resumable as
    /// long as the resumed copy is given the same accumulated schedule.
    pub fn apply_burst(&mut self, at: Duration, scale: f64) {
        self.schedule.push_burst(at, scale);
    }

    /// Draws the next sample at device-clock time `now`.
    pub fn next_sample(&mut self, now: Duration) -> DriftSample {
        let index = self.index;
        self.index += 1;
        // Per-sample derivation: architecture and measurement noise both
        // come from `mix(seed, index)`, never from carried RNG state.
        let arch = Architecture::random(self.space, mix(self.seed ^ index) ^ 0xd81f);
        let undrifted_ms = self.device.measure_latency_ms(
            &arch,
            self.space,
            mix(self.seed.rotate_left(17) ^ index),
        );
        let scale = self.schedule.scale_at(now);
        // Drift scales the *board*, noise scales with it: a 1.3× slower
        // device jitters 1.3× wider in absolute terms.
        let encoding = arch.encode();
        DriftSample {
            index,
            observed_ms: undrifted_ms * scale,
            undrifted_ms,
            scale,
            at: now,
            encoding,
            arch,
        }
    }

    /// A window of `n` *drift-free* calibration rows starting at the current
    /// index (advancing the stream): the corpus a freshly trained oracle
    /// would use. Targets carry measurement noise but scale 1.0.
    pub fn take_undrifted(&mut self, n: usize, now: Duration) -> Vec<DriftSample> {
        (0..n)
            .map(|_| {
                let mut s = self.next_sample(now);
                s.observed_ms = s.undrifted_ms;
                s.scale = 1.0;
                s
            })
            .collect()
    }
}

/// Gaussian helper kept for schedule calibration experiments: the std-dev of
/// `n` drift-free measurements of `arch` (seeded, deterministic).
pub fn measurement_spread_ms(
    device: &Xavier,
    space: &SearchSpace,
    arch: &Architecture,
    n: usize,
    seed: u64,
) -> f64 {
    let xs: Vec<f64> = (0..n as u64)
        .map(|i| device.measure_latency_ms(arch, space, mix(seed ^ i)))
        .collect();
    let m = xs.iter().sum::<f64>() / xs.len() as f64;
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Re-derives the same per-index noise stream [`DriftStream`] uses —
/// exported so tests can pin the derivation (a silent change here would
/// break every resumed checkpoint).
pub fn sample_noise_seed(seed: u64, index: u64) -> u64 {
    mix(seed.rotate_left(17) ^ index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::XavierConfig;

    fn setup() -> (Xavier, SearchSpace) {
        (Xavier::new(XavierConfig::maxn()), SearchSpace::standard())
    }

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn schedule_composes_ramp_and_bursts() {
        let s = DriftSchedule::ramp(0.01)
            .with_burst(ms(1000), 1.5)
            .with_burst(ms(2000), 1.2);
        assert_eq!(s.scale_at(Duration::ZERO), 1.0);
        assert!((s.scale_at(ms(1000)) - 1.01 * 1.5).abs() < 1e-12);
        assert!((s.scale_at(ms(2000)) - 1.02 * 1.5 * 1.2).abs() < 1e-12);
        assert_eq!(DriftSchedule::stationary().scale_at(ms(5000)), 1.0);
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let (dev, space) = setup();
        let sched = DriftSchedule::ramp(0.05).with_burst(ms(10), 1.3);
        let mut a = DriftStream::new(&dev, &space, sched.clone(), 7);
        let mut b = DriftStream::new(&dev, &space, sched.clone(), 7);
        let mut c = DriftStream::new(&dev, &space, sched, 8);
        let mut differed = false;
        for i in 0..16u64 {
            let t = ms(i * 3);
            let sa = a.next_sample(t);
            let sb = b.next_sample(t);
            assert_eq!(sa, sb, "same seed must reproduce sample {i}");
            differed |= sa.observed_ms != c.next_sample(t).observed_ms;
        }
        assert!(differed, "different seeds must differ somewhere");
    }

    #[test]
    fn stream_resumes_byte_identically() {
        let (dev, space) = setup();
        let sched = DriftSchedule::ramp(0.02).with_burst(ms(9), 1.4);
        let mut fresh = DriftStream::new(&dev, &space, sched.clone(), 11);
        let reference: Vec<DriftSample> = (0..12u64).map(|i| fresh.next_sample(ms(i))).collect();
        // Resume at 5: samples 5.. must match the fresh stream exactly.
        let mut resumed =
            DriftStream::resume_at(&dev, &space, sched, 11, 5).expect("in-range resume");
        assert_eq!(resumed.index(), 5);
        for i in 5..12u64 {
            assert_eq!(
                resumed.next_sample(ms(i)),
                reference[i as usize],
                "resumed sample {i} diverged"
            );
        }
    }

    #[test]
    fn drift_scales_observations_not_truth() {
        let (dev, space) = setup();
        let mut stream = DriftStream::new(
            &dev,
            &space,
            DriftSchedule::stationary().with_burst(ms(100), 1.5),
            3,
        );
        let before = stream.next_sample(ms(0));
        assert_eq!(before.observed_ms, before.undrifted_ms);
        let after = stream.next_sample(ms(100));
        assert_eq!(after.scale, 1.5);
        assert!((after.observed_ms - 1.5 * after.undrifted_ms).abs() < 1e-12);
    }

    #[test]
    fn mid_run_burst_matches_a_preloaded_schedule() {
        // apply_burst must leave the stream resumable: injecting at runtime
        // equals having scheduled the burst up front.
        let (dev, space) = setup();
        let mut live = DriftStream::new(&dev, &space, DriftSchedule::stationary(), 5);
        let _ = live.next_sample(ms(0));
        live.apply_burst(ms(4), 1.25);
        let live_after = live.next_sample(ms(6));
        let mut preloaded = DriftStream::resume_at(
            &dev,
            &space,
            DriftSchedule::stationary().with_burst(ms(4), 1.25),
            5,
            1,
        )
        .expect("in-range resume");
        assert_eq!(preloaded.next_sample(ms(6)), live_after);
    }

    #[test]
    fn out_of_range_resume_is_a_typed_error_not_a_panic() {
        // Regression: a corrupt/wrapped checkpoint key used to be accepted
        // silently and blow up later inside next_sample's index increment.
        let (dev, space) = setup();
        let ok = DriftStream::resume_at(
            &dev,
            &space,
            DriftSchedule::stationary(),
            7,
            MAX_RESUME_INDEX,
        );
        assert!(ok.is_ok(), "the boundary index itself is valid");
        for bad in [MAX_RESUME_INDEX + 1, u64::MAX] {
            let err = DriftStream::resume_at(&dev, &space, DriftSchedule::stationary(), 7, bad)
                .expect_err("upper-half index must be refused");
            assert_eq!(
                err,
                DriftStreamError::IndexOutOfRange {
                    index: bad,
                    max: MAX_RESUME_INDEX,
                }
            );
            let msg = err.to_string();
            assert!(msg.contains("out of range"), "{msg}");
        }
    }

    #[test]
    fn undrifted_window_ignores_the_schedule() {
        let (dev, space) = setup();
        let mut stream = DriftStream::new(
            &dev,
            &space,
            DriftSchedule::stationary().with_burst(ms(0), 2.0),
            1,
        );
        for s in stream.take_undrifted(4, ms(50)) {
            assert_eq!(s.observed_ms, s.undrifted_ms);
            assert_eq!(s.scale, 1.0);
        }
        assert_eq!(stream.index(), 4, "calibration rows advance the stream");
    }

    #[test]
    fn noise_seed_derivation_is_pinned() {
        // Changing this derivation would silently break resumed checkpoints;
        // the constant pins it.
        assert_eq!(sample_noise_seed(0, 0), super::mix(0u64.rotate_left(17)));
        assert_ne!(sample_noise_seed(1, 0), sample_noise_seed(0, 0));
        assert_ne!(sample_noise_seed(0, 1), sample_noise_seed(0, 0));
    }

    #[test]
    fn spread_helper_is_positive_and_deterministic() {
        let (dev, space) = setup();
        let arch = Architecture::random(&space, 2);
        let a = measurement_spread_ms(&dev, &space, &arch, 32, 9);
        let b = measurement_spread_ms(&dev, &space, &arch, 32, 9);
        assert_eq!(a, b);
        assert!(a > 0.0);
    }
}
