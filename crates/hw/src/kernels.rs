//! Decomposition of operators into device kernels.
//!
//! The roofline model works at kernel granularity: an `MBConv K5 E6` slot
//! launches an expansion GEMM, a depthwise convolution and a projection
//! GEMM (plus two small kernels when Squeeze-and-Excitation is attached).
//! Each kernel carries its multiply-add count and DRAM traffic so the
//! device model can score it as compute- or memory-bound.

use lightnas_space::{LayerSpec, Operator};

/// The execution character of a kernel, which selects its compute
/// efficiency and power draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Dense convolution (stem).
    Dense,
    /// 1×1 pointwise convolution (GEMM-like, compute-bound).
    Pointwise,
    /// Depthwise convolution (memory-bound on GPUs).
    Depthwise,
    /// Pooling / skip-on-reduction (pure memory).
    Pool,
    /// Fully-connected classifier.
    Fc,
    /// Squeeze-and-Excitation gating (two tiny GEMMs + a broadcast).
    Se,
}

/// One device kernel: its work and its single-inference memory traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelDesc {
    /// Execution character.
    pub kind: KernelKind,
    /// Multiply-add operations for ONE inference (before batch scaling).
    pub madds: u64,
    /// Activation elements read + written for one inference.
    pub act_elems: u64,
    /// Weight elements read (not scaled by batch).
    pub weight_elems: u64,
}

impl KernelDesc {
    /// DRAM bytes moved at the given batch size (f32 activations, weights
    /// read once per launch).
    pub fn bytes(&self, batch: usize) -> u64 {
        4 * (self.act_elems * batch as u64 + self.weight_elems)
    }

    /// Multiply-adds at the given batch size.
    pub fn batched_madds(&self, batch: usize) -> u64 {
        self.madds * batch as u64
    }

    /// Output activation bytes at the given batch (for cache-reuse checks).
    ///
    /// Approximated as half the activation traffic (in ≈ out for the kernels
    /// in this space).
    pub fn out_bytes(&self, batch: usize) -> u64 {
        2 * self.act_elems * batch as u64
    }
}

/// Kernels launched by operator `op` in slot `spec`.
///
/// An identity `SkipConnect` launches nothing; on a reduction layer it
/// launches one pooling kernel. `with_se` appends the SE pair after the
/// depthwise stage.
pub fn kernels_for_layer(op: Operator, spec: &LayerSpec, with_se: bool) -> Vec<KernelDesc> {
    let hin = spec.hin as u64;
    let hout = spec.hout() as u64;
    let (cin, cout) = (spec.cin as u64, spec.cout as u64);
    match op {
        Operator::SkipConnect => {
            if spec.skip_is_identity() {
                Vec::new()
            } else {
                vec![KernelDesc {
                    kind: KernelKind::Pool,
                    madds: hout * hout * cin,
                    act_elems: hin * hin * cin + hout * hout * cout,
                    weight_elems: 0,
                }]
            }
        }
        Operator::MbConv { kernel, expansion } => {
            let k = kernel.size() as u64;
            let e = expansion.ratio() as u64;
            let mid = cin * e;
            let mut kernels = vec![
                KernelDesc {
                    kind: KernelKind::Pointwise,
                    madds: hin * hin * cin * mid,
                    act_elems: hin * hin * (cin + mid),
                    weight_elems: cin * mid,
                },
                KernelDesc {
                    kind: KernelKind::Depthwise,
                    madds: hout * hout * mid * k * k,
                    act_elems: hin * hin * mid + hout * hout * mid,
                    weight_elems: mid * k * k,
                },
            ];
            if with_se {
                let hidden = (mid / 4).max(1);
                kernels.push(KernelDesc {
                    kind: KernelKind::Se,
                    madds: 2 * mid * hidden + hout * hout * mid,
                    act_elems: 2 * hout * hout * mid,
                    weight_elems: 2 * mid * hidden,
                });
            }
            kernels.push(KernelDesc {
                kind: KernelKind::Pointwise,
                madds: hout * hout * mid * cout,
                act_elems: hout * hout * (mid + cout),
                weight_elems: mid * cout,
            });
            kernels
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightnas_space::{Expansion, Kernel, SearchSpace};

    fn space() -> SearchSpace {
        SearchSpace::standard()
    }

    #[test]
    fn identity_skip_launches_nothing() {
        let s = space();
        let spec = &s.layers()[1];
        assert!(kernels_for_layer(Operator::SkipConnect, spec, false).is_empty());
    }

    #[test]
    fn reduction_skip_launches_one_pool() {
        let s = space();
        let spec = &s.layers()[0];
        let ks = kernels_for_layer(Operator::SkipConnect, spec, false);
        assert_eq!(ks.len(), 1);
        assert_eq!(ks[0].kind, KernelKind::Pool);
        assert_eq!(ks[0].weight_elems, 0);
    }

    #[test]
    fn mbconv_launches_three_kernels() {
        let s = space();
        let op = Operator::MbConv {
            kernel: Kernel::K5,
            expansion: Expansion::E6,
        };
        let ks = kernels_for_layer(op, &s.layers()[4], false);
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[0].kind, KernelKind::Pointwise);
        assert_eq!(ks[1].kind, KernelKind::Depthwise);
        assert_eq!(ks[2].kind, KernelKind::Pointwise);
    }

    #[test]
    fn se_adds_a_fourth_kernel() {
        let s = space();
        let op = Operator::MbConv {
            kernel: Kernel::K3,
            expansion: Expansion::E3,
        };
        let ks = kernels_for_layer(op, &s.layers()[20], true);
        assert_eq!(ks.len(), 4);
        assert_eq!(ks[2].kind, KernelKind::Se);
    }

    #[test]
    fn depthwise_madds_scale_with_kernel_squared() {
        let s = space();
        let spec = &s.layers()[8];
        let dw = |k| {
            kernels_for_layer(
                Operator::MbConv {
                    kernel: k,
                    expansion: Expansion::E3,
                },
                spec,
                false,
            )[1]
            .madds
        };
        let (k3, k7) = (dw(Kernel::K3), dw(Kernel::K7));
        assert_eq!(k7 / k3, 49 / 9);
    }

    #[test]
    fn bytes_scale_with_batch_for_activations_only() {
        let s = space();
        let op = Operator::MbConv {
            kernel: Kernel::K3,
            expansion: Expansion::E6,
        };
        let k = kernels_for_layer(op, &s.layers()[4], false)[0];
        let b1 = k.bytes(1);
        let b8 = k.bytes(8);
        // Weights are not rescaled, so b8 < 8 * b1.
        assert!(b8 > 4 * b1 && b8 < 8 * b1);
    }

    #[test]
    fn kernel_totals_match_space_cost_counter() {
        // The kernel decomposition and the analytic counter must agree on
        // total multiply-adds for MBConv slots.
        let s = space();
        for (i, spec) in s.layers().iter().enumerate() {
            let op = Operator::MbConv {
                kernel: Kernel::K5,
                expansion: Expansion::E3,
            };
            let from_kernels: u64 = kernels_for_layer(op, spec, false)
                .iter()
                .map(|k| k.madds)
                .sum();
            let from_cost = lightnas_space::layer_cost(op, spec, false).flops;
            assert_eq!(from_kernels, from_cost, "layer {i} disagreement");
        }
    }
}
