//! Seeded Gaussian measurement noise.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A deterministic Gaussian noise source (Box–Muller over a seeded stream).
///
/// # Example
///
/// ```
/// use lightnas_hw::GaussianNoise;
///
/// let mut n = GaussianNoise::new(42);
/// let x = n.sample(0.0, 1.0);
/// assert!(x.is_finite());
/// ```
#[derive(Debug)]
pub struct GaussianNoise {
    rng: StdRng,
    spare: Option<f64>,
}

impl GaussianNoise {
    /// Creates a noise source from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Draws one `N(mean, std²)` sample.
    pub fn sample(&mut self, mean: f64, std: f64) -> f64 {
        let z = match self.spare.take() {
            Some(z) => z,
            None => {
                let u1: f64 = self.rng.random_range(f64::EPSILON..1.0);
                let u2: f64 = self.rng.random_range(0.0..1.0);
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = 2.0 * std::f64::consts::PI * u2;
                self.spare = Some(r * theta.sin());
                r * theta.cos()
            }
        };
        mean + std * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_are_roughly_right() {
        let mut n = GaussianNoise::new(7);
        let xs: Vec<f64> = (0..100_000).map(|_| n.sample(3.0, 0.5)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 3.0).abs() < 0.01);
        assert!((var.sqrt() - 0.5).abs() < 0.01);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = GaussianNoise::new(1);
        let mut b = GaussianNoise::new(1);
        for _ in 0..10 {
            assert_eq!(a.sample(0.0, 1.0), b.sample(0.0, 1.0));
        }
    }
}
