//! Analytic Jetson AGX Xavier device model.
//!
//! The paper measures every architecture on a physical Jetson AGX Xavier
//! (MAXN power mode, batch size 8). No such device is available to this
//! reproduction, so this crate provides the closest synthetic equivalent
//! that exercises the same code paths (see DESIGN.md §2): a per-kernel
//! **roofline model** — each convolution kernel takes
//! `max(compute time, memory time) + launch overhead` — plus a
//! network-level runtime overhead, an inter-layer cache-reuse effect and
//! seeded measurement noise.
//!
//! The model is calibrated so that the qualitative facts the paper relies
//! on hold:
//!
//! * MobileNetV2 lands near its reported 20.2 ms (batch 8) and the space
//!   spans roughly 13–40 ms, matching Table 2's range.
//! * FLOPs do **not** determine latency (Fig. 2): depthwise kernels are
//!   memory-bound while pointwise kernels are compute-bound, so equal-FLOPs
//!   architectures differ in latency and vice versa.
//! * A latency look-up table misses the constant runtime overhead — the
//!   mechanism behind Fig. 5's ≈ 11.48 ms gap — and cannot express the
//!   cross-layer cache-reuse term, which bounds its residual RMSE away from
//!   zero (Sec. 3.2).
//! * Energy is power × time with utilization-dependent power and extra
//!   thermal measurement noise (Fig. 8).
//!
//! # Example
//!
//! ```
//! use lightnas_hw::Xavier;
//! use lightnas_space::{mobilenet_v2, SearchSpace};
//!
//! let device = Xavier::maxn();
//! let space = SearchSpace::standard();
//! let ms = device.true_latency_ms(&mobilenet_v2(), &space);
//! assert!(ms > 5.0 && ms < 60.0);
//! ```

mod device;
mod drift;
mod kernels;
mod noise;

pub use device::{device_seed_salt, Measurement, Xavier, XavierConfig};
pub use drift::{
    measurement_spread_ms, sample_noise_seed, DriftBurst, DriftSample, DriftSchedule, DriftStream,
    DriftStreamError, MAX_RESUME_INDEX,
};
pub use kernels::{kernels_for_layer, KernelDesc, KernelKind};
pub use noise::GaussianNoise;
