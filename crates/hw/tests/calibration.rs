//! Calibration anchors of the simulated Jetson AGX Xavier.
//!
//! These tests pin the device model to the published operating points the
//! reproduction is calibrated against. If a model change moves an anchor,
//! the corresponding figure/table harness will drift too — fail fast here.

use lightnas_hw::Xavier;
use lightnas_space::{
    mobilenet_v2, reference_architectures, Architecture, Expansion, Kernel, Operator, SearchSpace,
};

fn setup() -> (Xavier, SearchSpace) {
    (Xavier::maxn(), SearchSpace::standard())
}

#[test]
fn anchor_mobilenet_v2_is_20_2_ms() {
    let (dev, space) = setup();
    let ms = dev.true_latency_ms(&mobilenet_v2(), &space);
    assert!(
        (ms - 20.2).abs() < 0.8,
        "MobileNetV2 {ms:.2} ms drifted from the 20.2 ms anchor"
    );
}

#[test]
fn anchor_space_range_covers_table2() {
    // Table 2 spans 20.0 .. 37.2 ms; the space must reach past both ends.
    let (dev, space) = setup();
    let lightest = Architecture::homogeneous(Operator::SkipConnect);
    let heaviest = Architecture::homogeneous(Operator::MbConv {
        kernel: Kernel::K7,
        expansion: Expansion::E6,
    });
    assert!(dev.true_latency_ms(&lightest, &space) < 18.0);
    assert!(dev.true_latency_ms(&heaviest, &space) > 29.0);
    // EfficientNet-B0-like (heaviest + full SE) approaches the 37 ms row.
    let effnet = heaviest.with_se_tail(21);
    let ms = dev.true_latency_ms(&effnet, &space);
    assert!(
        ms > 31.0,
        "SE-heavy extreme {ms:.1} ms should push beyond 31 ms"
    );
}

#[test]
fn anchor_reference_latency_ordering_is_sane() {
    // The simulator will not reproduce the paper's absolute per-model
    // numbers, but gross orderings must hold: OFA-L > OFA-S, FBNet-C >
    // FBNet-A, EfficientNet-B0 slowest among the † rows.
    let (dev, space) = setup();
    let lat = |name: &str| {
        let r = reference_architectures()
            .into_iter()
            .find(|r| r.name == name)
            .expect("known baseline");
        dev.true_latency_ms(&r.arch, &space)
    };
    assert!(lat("OFA-L") > lat("OFA-S"));
    assert!(lat("FBNet-C") > lat("FBNet-A"));
    assert!(lat("EfficientNet-B0") > lat("MobileNetV3"));
    assert!(lat("EfficientNet-B0") > lat("MnasNet-A1"));
}

#[test]
fn anchor_energy_range_brackets_500mj() {
    let (dev, space) = setup();
    let energies: Vec<f64> = (0..100)
        .map(|s| dev.true_energy_mj(&Architecture::random(&space, s), &space))
        .collect();
    let below = energies.iter().filter(|&&e| e < 500.0).count();
    let above = energies.iter().filter(|&&e| e > 500.0).count();
    assert!(
        below > 5 && above > 5,
        "500 mJ not inside the bulk ({below} below / {above} above)"
    );
}

#[test]
fn measurement_noise_matches_the_declared_sigma() {
    let (dev, space) = setup();
    let m = mobilenet_v2();
    let truth = dev.true_latency_ms(&m, &space);
    let n = 500;
    let errs: Vec<f64> = (0..n)
        .map(|s| dev.measure_latency_ms(&m, &space, s) - truth)
        .collect();
    let mean = errs.iter().sum::<f64>() / n as f64;
    let std = (errs.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / n as f64).sqrt();
    let declared = dev.config().noise_std_ms;
    assert!(mean.abs() < declared / 2.0, "noise is biased: {mean:.4}");
    assert!(
        (std - declared).abs() < declared * 0.25,
        "noise std {std:.4} vs declared {declared}"
    );
}

#[test]
fn energy_noise_is_relative_not_absolute() {
    // Thermal noise scales with the measured value (paper: energy readings
    // are noisier); heavier networks must show larger absolute spread.
    let (dev, space) = setup();
    let light = Architecture::homogeneous(Operator::SkipConnect);
    let heavy = Architecture::homogeneous(Operator::MbConv {
        kernel: Kernel::K7,
        expansion: Expansion::E6,
    });
    let spread = |arch: &Architecture| {
        let vals: Vec<f64> = (0..200)
            .map(|s| dev.measure_energy_mj(arch, &space, s))
            .collect();
        let m = vals.iter().sum::<f64>() / vals.len() as f64;
        (vals.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / vals.len() as f64).sqrt()
    };
    assert!(spread(&heavy) > 2.0 * spread(&light));
}

#[test]
fn batch_one_inference_is_several_times_faster() {
    let (_, space) = setup();
    let mut cfg = lightnas_hw::XavierConfig::maxn();
    cfg.batch = 1;
    let dev1 = Xavier::new(cfg);
    let dev8 = Xavier::maxn();
    let m = mobilenet_v2();
    let ratio = dev8.true_latency_ms(&m, &space) / dev1.true_latency_ms(&m, &space);
    assert!(
        ratio > 1.2 && ratio < 8.0,
        "batch-8/batch-1 ratio {ratio:.2} implausible"
    );
}

#[test]
fn nano_class_profile_is_uniformly_slower() {
    let space = SearchSpace::standard();
    let xavier = Xavier::maxn();
    let nano = Xavier::new(lightnas_hw::XavierConfig::nano_class());
    for seed in 0..20 {
        let arch = Architecture::random(&space, seed);
        let fast = xavier.true_latency_ms(&arch, &space);
        let slow = nano.true_latency_ms(&arch, &space);
        assert!(
            slow > 1.5 * fast,
            "nano {slow:.1} ms vs xavier {fast:.1} ms (seed {seed})"
        );
    }
}

#[test]
fn device_profiles_rank_architectures_differently() {
    // Cross-device transfer is imperfect: the compute/bandwidth balance
    // differs, so some architecture pairs swap order between devices —
    // the reason the paper trains one predictor per target platform.
    let space = SearchSpace::standard();
    let xavier = Xavier::maxn();
    let nano = Xavier::new(lightnas_hw::XavierConfig::nano_class());
    let archs: Vec<Architecture> = (0..80).map(|s| Architecture::random(&space, s)).collect();
    let mut swaps = 0;
    for (i, a) in archs.iter().enumerate() {
        for b in archs.iter().skip(i + 1) {
            let (xa, xb) = (
                xavier.true_latency_ms(a, &space),
                xavier.true_latency_ms(b, &space),
            );
            let (na, nb) = (
                nano.true_latency_ms(a, &space),
                nano.true_latency_ms(b, &space),
            );
            if (xa - xb).abs() > 0.1 && (na - nb).abs() > 0.1 && ((xa > xb) != (na > nb)) {
                swaps += 1;
            }
        }
    }
    assert!(
        swaps > 0,
        "device profiles should disagree on some orderings"
    );
}

#[test]
fn peak_memory_tracks_operator_size() {
    let (dev, space) = setup();
    let light = Architecture::homogeneous(Operator::MbConv {
        kernel: Kernel::K3,
        expansion: Expansion::E3,
    });
    let heavy = Architecture::homogeneous(Operator::MbConv {
        kernel: Kernel::K3,
        expansion: Expansion::E6,
    });
    let (ml, mh) = (
        dev.peak_memory_mib(&light, &space),
        dev.peak_memory_mib(&heavy, &space),
    );
    assert!(
        mh > ml,
        "expansion 6 should need more memory than 3 ({mh:.1} vs {ml:.1} MiB)"
    );
    assert!(
        ml > 5.0 && mh < 400.0,
        "peak memory out of plausible range: {ml:.1}..{mh:.1}"
    );
}

#[test]
fn peak_memory_measurement_noise_is_small() {
    let (dev, space) = setup();
    let m = mobilenet_v2();
    let truth = dev.peak_memory_mib(&m, &space);
    for seed in 0..20 {
        let v = dev.measure_peak_memory_mib(&m, &space, seed);
        assert!((v - truth).abs() < 0.3, "seed {seed}: {v:.2} vs {truth:.2}");
    }
}
