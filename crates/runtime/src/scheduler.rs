//! A deterministic worker-pool scheduler over indexed jobs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-size pool of worker threads executing an indexed job list.
///
/// The scheduler is deliberately *stateless about the jobs themselves*: it
/// maps a pure function over indices `0..items`, pulling the next index from
/// a shared counter, and returns the results **in index order** regardless
/// of which worker ran which job or in what order they finished. Because
/// every LightNAS search job is a deterministic function of its
/// `(target, seed, config)` triple, this makes whole sweeps reproducible
/// bit-for-bit under any worker count — 1 worker and 8 workers produce
/// byte-identical result vectors, only the wall-clock differs.
///
/// Worker threads are scoped ([`std::thread::scope`]), so the job closure
/// may freely borrow substrates (oracle, predictor, caches) from the caller.
///
/// # Example
///
/// ```
/// use lightnas_runtime::JobScheduler;
///
/// let squares = JobScheduler::new(4).run(6, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobScheduler {
    workers: usize,
}

impl JobScheduler {
    /// A scheduler with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// A single-threaded scheduler: jobs run inline, in order.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// A scheduler sized to the machine (`available_parallelism`, capped).
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(n.min(8))
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` for every index in `0..items` and returns the results in
    /// index order. With one worker (or at most one item) the jobs run
    /// inline on the calling thread; otherwise worker threads pull indices
    /// from a shared counter until the list is drained.
    ///
    /// # Panics
    ///
    /// A panic inside `f` propagates to the caller once the pool has joined
    /// (no result is silently dropped).
    pub fn run<T, F>(&self, items: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.workers == 1 || items <= 1 {
            return (0..items).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = Vec::with_capacity(items);
        slots.resize_with(items, || None);
        let slots = Mutex::new(slots);
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(items) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items {
                        break;
                    }
                    let out = f(i);
                    slots.lock().expect("result lock poisoned")[i] = Some(out);
                });
            }
        });
        slots
            .into_inner()
            .expect("result lock poisoned")
            .into_iter()
            .map(|slot| slot.expect("every index was claimed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_workers_clamp_to_one() {
        assert_eq!(JobScheduler::new(0).workers(), 1);
        assert_eq!(JobScheduler::serial().workers(), 1);
        assert!(JobScheduler::auto().workers() >= 1);
    }

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 4, 7] {
            let out = JobScheduler::new(workers).run(23, |i| i * 3);
            assert_eq!(
                out,
                (0..23).map(|i| i * 3).collect::<Vec<_>>(),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = JobScheduler::new(4).run(50, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<usize> = JobScheduler::new(4).run(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn workers_actually_share_the_queue() {
        // With more jobs than workers, a 3-worker pool must still cover all
        // indices; record which thread handled each job and check coverage.
        let out = JobScheduler::new(3).run(30, |i| (i, std::thread::current().id()));
        let indices: Vec<usize> = out.iter().map(|&(i, _)| i).collect();
        assert_eq!(indices, (0..30).collect::<Vec<_>>());
    }
}
