//! A deterministic worker-pool scheduler over indexed jobs, with per-job
//! panic isolation.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// A job closure panicked; the payload is preserved as a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the job that panicked.
    pub index: usize,
    /// The panic payload, stringified (`"<non-string panic payload>"` when
    /// the payload was neither `&str` nor `String`).
    pub message: String,
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Extracts a human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A fixed-size pool of worker threads executing an indexed job list.
///
/// The scheduler is deliberately *stateless about the jobs themselves*: it
/// maps a pure function over indices `0..items`, pulling the next index from
/// a shared counter, and returns the results **in index order** regardless
/// of which worker ran which job or in what order they finished. Because
/// every LightNAS search job is a deterministic function of its
/// `(target, seed, config)` triple, this makes whole sweeps reproducible
/// bit-for-bit under any worker count — 1 worker and 8 workers produce
/// byte-identical result vectors, only the wall-clock differs.
///
/// Worker threads are scoped ([`std::thread::scope`]), so the job closure
/// may freely borrow substrates (oracle, predictor, caches) from the caller.
///
/// # Example
///
/// ```
/// use lightnas_runtime::JobScheduler;
///
/// let squares = JobScheduler::new(4).run(6, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobScheduler {
    workers: usize,
}

impl JobScheduler {
    /// A scheduler with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// A single-threaded scheduler: jobs run inline, in order.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// A scheduler sized to the machine (`available_parallelism`, capped).
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(n.min(8))
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` for every index in `0..items` and returns the results in
    /// index order. With one worker (or at most one item) the jobs run
    /// inline on the calling thread; otherwise worker threads pull indices
    /// from a shared counter until the list is drained.
    ///
    /// # Panics
    ///
    /// A panic inside `f` propagates to the caller once the pool has
    /// joined, with the original payload message and the job index attached
    /// (no result is silently dropped, and the remaining jobs still run —
    /// see [`run_catching`](Self::run_catching)).
    pub fn run<T, F>(&self, items: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut first_panic = None;
        let results: Vec<Option<T>> = self
            .run_catching(items, f)
            .into_iter()
            .map(|r| match r {
                Ok(v) => Some(v),
                Err(p) => {
                    first_panic.get_or_insert(p);
                    None
                }
            })
            .collect();
        if let Some(p) = first_panic {
            panic!("{p}");
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every index was claimed exactly once"))
            .collect()
    }

    /// Like [`run`](Self::run), but a panic inside `f(i)` is *isolated*: it
    /// becomes `Err(`[`JobPanic`]`)` in slot `i` while every other job still
    /// runs to completion — a worker that catches a panicking job goes back
    /// to the queue for the next index instead of dying.
    ///
    /// The result mutex is poison-recovered: slots are written whole, so a
    /// panic elsewhere can never leave a half-written entry.
    pub fn run_catching<T, F>(&self, items: usize, f: F) -> Vec<Result<T, JobPanic>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let catching = |i: usize| {
            catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|payload| JobPanic {
                index: i,
                message: panic_message(payload.as_ref()),
            })
        };
        if self.workers == 1 || items <= 1 {
            return (0..items).map(catching).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<T, JobPanic>>> = Vec::with_capacity(items);
        slots.resize_with(items, || None);
        let slots = Mutex::new(slots);
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(items) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items {
                        break;
                    }
                    let out = catching(i);
                    slots.lock().unwrap_or_else(PoisonError::into_inner)[i] = Some(out);
                });
            }
        });
        slots
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_iter()
            .map(|slot| slot.expect("every index was claimed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_workers_clamp_to_one() {
        assert_eq!(JobScheduler::new(0).workers(), 1);
        assert_eq!(JobScheduler::serial().workers(), 1);
        assert!(JobScheduler::auto().workers() >= 1);
    }

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 4, 7] {
            let out = JobScheduler::new(workers).run(23, |i| i * 3);
            assert_eq!(
                out,
                (0..23).map(|i| i * 3).collect::<Vec<_>>(),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = JobScheduler::new(4).run(50, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<usize> = JobScheduler::new(4).run(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn a_panicking_job_does_not_take_down_its_neighbours() {
        for workers in [1, 4] {
            let out = JobScheduler::new(workers).run_catching(10, |i| {
                assert!(i != 3 && i != 7, "injected failure in job {i}");
                i * 2
            });
            assert_eq!(out.len(), 10, "{workers} workers");
            for (i, r) in out.iter().enumerate() {
                match r {
                    Ok(v) if i != 3 && i != 7 => assert_eq!(*v, i * 2),
                    Err(p) if i == 3 || i == 7 => {
                        assert_eq!(p.index, i);
                        assert!(p.message.contains(&format!("job {i}")), "{}", p.message);
                    }
                    other => panic!("job {i}: unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn run_propagates_the_panic_with_its_payload() {
        let caught = std::panic::catch_unwind(|| {
            JobScheduler::new(2).run(6, |i| {
                if i == 4 {
                    panic!("boom from {i}");
                }
                i
            })
        })
        .expect_err("run must re-panic");
        let msg = panic_message(caught.as_ref());
        assert!(
            msg.contains("job 4") && msg.contains("boom from 4"),
            "payload {msg:?} must name the job and carry the original message"
        );
    }

    #[test]
    fn non_string_payloads_are_survived() {
        let out = JobScheduler::serial().run_catching(2, |i| {
            if i == 1 {
                std::panic::panic_any(42_i32);
            }
            i
        });
        assert_eq!(out[0], Ok(0));
        assert_eq!(
            out[1].as_ref().unwrap_err().message,
            "<non-string panic payload>"
        );
    }

    #[test]
    fn workers_actually_share_the_queue() {
        // With more jobs than workers, a 3-worker pool must still cover all
        // indices; record which thread handled each job and check coverage.
        let out = JobScheduler::new(3).run(30, |i| (i, std::thread::current().id()));
        let indices: Vec<usize> = out.iter().map(|&(i, _)| i).collect();
        assert_eq!(indices, (0..30).collect::<Vec<_>>());
    }
}
