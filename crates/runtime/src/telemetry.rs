//! Append-only JSONL run telemetry.
//!
//! One [`Telemetry`] sink per sweep, one JSON object per line, written under
//! `results/runs/<run-id>.jsonl` by convention. The schema is flat and
//! self-describing — every line carries `"event"` and `"run"` keys plus
//! event-specific fields (see DESIGN.md for the event catalogue) — so the
//! files grep/`jq` cleanly and survive partially-written runs: a crashed
//! sweep leaves a valid prefix, because every line is flushed as it is
//! emitted.
//!
//! JSON is rendered by hand (no serde in the dependency closure); values are
//! limited to the small [`Field`] vocabulary the runtime needs.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// The event-name catalogue: every `"event"` value the workspace emits.
///
/// Event names are load-bearing — downstream `jq`/grep pipelines and the
/// byte-identity tests key on them — so they live here as constants rather
/// than as scattered string literals. The runtime's sweep/supervisor events
/// come first; the serving layer (`lightnas-serve`) shares this catalogue
/// for its admission/breaker events so one file stays the schema's single
/// source of truth (see DESIGN.md for per-event fields).
///
/// Multi-device attribution: when a sweep sets
/// [`SweepOptions::device`](crate::SweepOptions), every run- and
/// job-lifecycle line (`run_start`/`run_end`, `job_*`, `epoch`,
/// `checkpoint*`) additionally carries a `"device"` string field naming the
/// target device. The field is omitted — not emitted as null — when unset,
/// so single-device telemetry is byte-identical to earlier releases.
pub mod events {
    /// Sweep begins: job count, worker count, kernel threads.
    pub const RUN_START: &str = "run_start";
    /// Sweep ends: completed/failed counts, dropped telemetry events.
    pub const RUN_END: &str = "run_end";
    /// A job (re)starts: target, seed, starting epoch, attempt.
    pub const JOB_START: &str = "job_start";
    /// A job converged: final architecture and metrics.
    pub const JOB_DONE: &str = "job_done";
    /// A job exhausted its retries (or could not be scheduled).
    pub const JOB_FAILED: &str = "job_failed";
    /// A crashed or diverged job is about to re-run.
    pub const JOB_RETRIED: &str = "job_retried";
    /// The epoch budget interrupted a job mid-run.
    pub const JOB_INTERRUPTED: &str = "job_interrupted";
    /// One completed search epoch: λ, τ, argmax metric.
    pub const EPOCH: &str = "epoch";
    /// A checkpoint generation was written.
    pub const CHECKPOINT: &str = "checkpoint";
    /// An unloadable/foreign checkpoint was renamed `*.corrupt`.
    pub const CHECKPOINT_QUARANTINED: &str = "checkpoint_quarantined";
    /// The guarded predictor answered from its fallback.
    pub const PREDICTOR_DEGRADED: &str = "predictor_degraded";

    // --- serving layer (lightnas-serve) ---

    /// The service accepted a request into its queue.
    pub const SERVE_ADMITTED: &str = "serve_admitted";
    /// Admission control turned a request away (typed `Overloaded`).
    pub const SERVE_REJECTED: &str = "serve_rejected";
    /// A request was answered (primary or degraded path).
    pub const SERVE_DONE: &str = "serve_done";
    /// A request's deadline expired before it could be served.
    pub const SERVE_DEADLINE: &str = "serve_deadline";
    /// The circuit breaker changed state (`from`/`to`/reason).
    pub const BREAKER_TRANSITION: &str = "breaker_transition";
    /// A coalesced batch went through the predictor.
    pub const SERVE_BATCH: &str = "serve_batch";
    /// Graceful drain finished: served/rejected/in-flight accounting.
    pub const SERVE_DRAINED: &str = "serve_drained";

    // --- online adaptation (lightnas-serve::adapt) ---

    /// The drift monitor flagged the serving model as stale (windowed
    /// RMSE/rank-correlation vs live observations breached a bar).
    pub const ADAPT_STALENESS: &str = "adapt_staleness";
    /// Shadow retraining started on the recent sample window.
    pub const ADAPT_RETRAIN: &str = "adapt_retrain";
    /// A shadow candidate finished paired live-traffic validation
    /// (`passed` says whether it beat the incumbent by the margin).
    pub const ADAPT_VALIDATED: &str = "adapt_validated";
    /// A validated shadow was promoted to serve (new `generation`).
    pub const ADAPT_PROMOTED: &str = "adapt_promoted";
    /// A promoted generation regressed on probation and was rolled back
    /// (the breaker trips alongside this event).
    pub const ADAPT_ROLLBACK: &str = "adapt_rollback";

    // --- fleet adaptation (lightnas-fleet::adapt) ---

    /// A drift flag on one device armed a transfer warm start on a
    /// correlated device (`source`/`target` fleet indices).
    pub const FLEET_WARM_START: &str = "fleet_warm_start";
    /// A device's retrain joined the shared pool queue.
    pub const FLEET_RETRAIN_QUEUED: &str = "fleet_retrain_queued";
    /// The pool admitted a queued retrain (`waited_ticks` in queue).
    pub const FLEET_RETRAIN_ADMITTED: &str = "fleet_retrain_admitted";
    /// The pool admitted nothing this tick despite a non-empty queue
    /// (budget exhausted or starved by chaos).
    pub const FLEET_POOL_STARVED: &str = "fleet_pool_starved";

    // --- multi-tenant search service (lightnas-serve::search) ---

    /// A tenant's sweep was admitted into the service queue
    /// (`tenant`/`sweep`/`jobs`/`queued_jobs`).
    pub const SEARCH_SWEEP_ADMITTED: &str = "search_sweep_admitted";
    /// A tenant's sweep was turned away, typed: a per-tenant quota breach
    /// (`reason:"quota"`) or the shared admission watermark
    /// (`reason:"overloaded"`).
    pub const SEARCH_SWEEP_REJECTED: &str = "search_sweep_rejected";
    /// A tenant's sweep finished executing: per-sweep completed/failed
    /// counts and the shared-cache traffic it contributed to.
    pub const SEARCH_SWEEP_DONE: &str = "search_sweep_done";
    /// Shared sharded-cache counters at a service checkpoint: merged
    /// hits/misses/hit-rate plus shard count and total occupancy.
    pub const SEARCH_CACHE_STATS: &str = "search_cache_stats";
}

/// A telemetry field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// An unsigned counter (job index, epoch, hit count, ...).
    U(u64),
    /// A float metric (λ, predicted latency, wall-clock ms, ...). Non-finite
    /// values render as `null` to keep the line valid JSON.
    F(f64),
    /// A string (architecture spec, checkpoint path, ...).
    S(String),
    /// A flag.
    B(bool),
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders one event line (without the trailing newline).
fn render_line(run: &str, event: &str, fields: &[(&str, Field)]) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"event\":");
    push_json_string(&mut out, event);
    out.push_str(",\"run\":");
    push_json_string(&mut out, run);
    for (key, value) in fields {
        out.push(',');
        push_json_string(&mut out, key);
        out.push(':');
        match value {
            Field::U(u) => {
                let _ = write!(out, "{u}");
            }
            Field::F(f) if f.is_finite() => {
                let _ = write!(out, "{f}");
            }
            Field::F(_) => out.push_str("null"),
            Field::S(s) => push_json_string(&mut out, s),
            Field::B(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
    out.push('}');
    out
}

/// A thread-safe JSONL event sink for one run.
#[derive(Debug)]
pub struct Telemetry {
    run_id: String,
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
    /// Events lost to I/O errors — see [`dropped_events`](Self::dropped_events).
    dropped: AtomicU64,
}

impl Telemetry {
    /// Creates (truncating) `<dir>/<run_id>.jsonl` and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn create(dir: impl AsRef<Path>, run_id: &str) -> std::io::Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{run_id}.jsonl"));
        let writer = Mutex::new(BufWriter::new(File::create(&path)?));
        Ok(Self {
            run_id: run_id.to_string(),
            path,
            writer,
            dropped: AtomicU64::new(0),
        })
    }

    /// The run identifier stamped on every line.
    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    /// Where the JSONL file lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// How many events were lost to I/O errors so far.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends one event line and flushes it (crash-safe prefix property).
    ///
    /// Telemetry must never take down a sweep, so I/O failures do not
    /// propagate — but they are not silent either: every lost event is
    /// counted ([`dropped_events`](Self::dropped_events), also reported in
    /// the sweep's `run_end` line) and the *first* loss prints a one-time
    /// warning to stderr. A panic on another thread holding the lock is
    /// likewise survived: lines are written whole under the lock, so the
    /// recovered writer is still line-aligned.
    pub fn emit(&self, event: &str, fields: &[(&str, Field)]) {
        let line = render_line(&self.run_id, event, fields);
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        if let Err(e) = writeln!(w, "{line}").and_then(|()| w.flush()) {
            if self.dropped.fetch_add(1, Ordering::Relaxed) == 0 {
                eprintln!(
                    "warning: telemetry write to {} failed ({e}); further losses are only counted",
                    self.path.display()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_flat_json_objects() {
        let line = render_line(
            "r1",
            "job_done",
            &[
                ("job", Field::U(3)),
                ("lambda", Field::F(-0.5)),
                ("arch", Field::S("0123456".into())),
                ("resumed", Field::B(false)),
            ],
        );
        assert_eq!(
            line,
            r#"{"event":"job_done","run":"r1","job":3,"lambda":-0.5,"arch":"0123456","resumed":false}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let line = render_line("r", "e", &[("msg", Field::S("a\"b\\c\nd\u{1}".into()))]);
        assert!(line.contains(r#""msg":"a\"b\\c\nd\u0001""#), "{line}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let line = render_line("r", "e", &[("x", Field::F(f64::NAN))]);
        assert!(line.ends_with(r#""x":null}"#), "{line}");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn io_failures_are_counted_not_swallowed() {
        // /dev/full accepts opens but fails every write with ENOSPC —
        // exactly the "disk filled up mid-sweep" failure mode.
        let writer = Mutex::new(BufWriter::new(
            File::create("/dev/full").expect("open /dev/full"),
        ));
        let t = Telemetry {
            run_id: "unit".into(),
            path: PathBuf::from("/dev/full"),
            writer,
            dropped: AtomicU64::new(0),
        };
        assert_eq!(t.dropped_events(), 0);
        t.emit("a", &[]);
        t.emit("b", &[("x", Field::U(1))]);
        assert_eq!(t.dropped_events(), 2, "both events must be counted lost");
    }

    #[test]
    fn sink_appends_one_line_per_event() {
        let dir =
            std::env::temp_dir().join(format!("lightnas-telemetry-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = Telemetry::create(&dir, "unit").expect("create sink");
        t.emit("run_start", &[("jobs", Field::U(2))]);
        t.emit("run_end", &[("completed", Field::U(2))]);
        let text = std::fs::read_to_string(t.path()).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(r#"{"event":"run_start","run":"unit""#));
        assert!(lines[1].contains(r#""completed":2"#));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
