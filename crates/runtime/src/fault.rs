//! Deterministic fault injection for supervised sweeps.
//!
//! Robustness claims that are only exercised by production incidents are
//! untestable claims. A [`FaultPlan`] is a *seeded, reproducible schedule*
//! of the three failure classes the runtime supervises:
//!
//! * **job panics** ([`FaultKind::Panic`]) — a worker crashes mid-epoch;
//! * **checkpoint corruption** ([`FaultKind::CorruptCheckpoint`]) — a saved
//!   snapshot is truncated, bit-flipped, or version-stomped on disk;
//! * **predictor poison** ([`FaultKind::PredictorNan`]) — a latency query
//!   answers NaN.
//!
//! Faults are **one-shot**: each fires at most once (a transient event, not
//! a permanent condition), tracked by an atomic flag so a retried job does
//! not re-hit the same injected crash forever. The same plan against the
//! same sweep therefore produces the same injected history on every run —
//! which is what lets tests assert the headline guarantee: a faulted sweep's
//! results are *byte-identical* to a fault-free run.

use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

/// How [`FaultKind::CorruptCheckpoint`] damages the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionMode {
    /// Chop the file roughly in half (a torn write that bypassed the
    /// atomic-rename protocol, e.g. filesystem loss after the rename).
    Truncate,
    /// Flip one hex digit of the `lambda` record — still valid syntax, only
    /// the checksum can catch it.
    FlipBits,
    /// Stomp the version line (a file from an incompatible build).
    WrongVersion,
}

/// One injectable failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic the job when it reaches `epoch`.
    Panic {
        /// Epoch (0-based) at whose start the panic fires.
        epoch: usize,
    },
    /// Corrupt the job's checkpoint file right after the first save at or
    /// past `after_epoch`.
    CorruptCheckpoint {
        /// Earliest epoch whose save gets corrupted.
        after_epoch: usize,
        /// The damage to apply.
        mode: CorruptionMode,
    },
    /// Make the job's `call`-th predictor query (0-based) return NaN.
    PredictorNan {
        /// Index of the poisoned query.
        call: usize,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Panic { epoch } => write!(f, "panic at epoch {epoch}"),
            FaultKind::CorruptCheckpoint { after_epoch, mode } => {
                write!(
                    f,
                    "{mode:?} checkpoint corruption after epoch {after_epoch}"
                )
            }
            FaultKind::PredictorNan { call } => write!(f, "NaN on predictor call {call}"),
        }
    }
}

/// A fault bound to one job of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Index of the job (in submission order) the fault targets.
    pub job: usize,
    /// What happens to it.
    pub kind: FaultKind,
}

/// A deterministic schedule of one-shot faults for one sweep run.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    fired: Vec<AtomicBool>,
}

/// splitmix64 — the standard seeding PRNG; enough structure to scatter
/// faults over a grid without pulling a rand dependency into the runtime.
/// Public because the serving layer's chaos plans seed from it too.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The empty plan: a supervised run with nothing injected.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan firing exactly the given faults (each at most once).
    pub fn new(faults: Vec<Fault>) -> Self {
        let fired = faults.iter().map(|_| AtomicBool::new(false)).collect();
        Self { faults, fired }
    }

    /// A seeded plan over a `jobs × epochs` sweep covering all three fault
    /// classes: one mid-run panic, one checkpoint corruption followed by a
    /// panic (so the corrupted file actually gets *read*), and one early
    /// predictor NaN — each on a distinct, seed-chosen job.
    ///
    /// # Panics
    ///
    /// Panics if `jobs < 3` or `epochs < 4` — too small a sweep to place
    /// three independent faults.
    pub fn seeded(seed: u64, jobs: usize, epochs: usize) -> Self {
        assert!(jobs >= 3, "need at least 3 jobs to scatter 3 faults");
        assert!(epochs >= 4, "need at least 4 epochs to schedule a recovery");
        let mut s = seed ^ 0xd6e8_feb8_6659_fd93;
        let mut pick_job = {
            let mut taken = vec![false; jobs];
            move |s: &mut u64| loop {
                let j = (splitmix64(s) % jobs as u64) as usize;
                if !taken[j] {
                    taken[j] = true;
                    return j;
                }
            }
        };
        let mid = |s: &mut u64| 1 + (splitmix64(s) % (epochs as u64 - 2)) as usize;
        let panic_job = pick_job(&mut s);
        let panic_epoch = mid(&mut s);
        let corrupt_job = pick_job(&mut s);
        // ≥ 2 so a previous-generation checkpoint exists to fall back to.
        let corrupt_after = 2 + (splitmix64(&mut s) % (epochs as u64 - 3)) as usize;
        let modes = [
            CorruptionMode::Truncate,
            CorruptionMode::FlipBits,
            CorruptionMode::WrongVersion,
        ];
        let mode = modes[(splitmix64(&mut s) % 3) as usize];
        let nan_job = pick_job(&mut s);
        let nan_call = (splitmix64(&mut s) % 64) as usize;
        Self::new(vec![
            Fault {
                job: panic_job,
                kind: FaultKind::Panic { epoch: panic_epoch },
            },
            Fault {
                job: corrupt_job,
                kind: FaultKind::CorruptCheckpoint {
                    after_epoch: corrupt_after,
                    mode,
                },
            },
            // The corruption only matters if something re-reads the file:
            // crash the same job right after the damaged save (with
            // per-epoch checkpointing, the save at `corrupt_after` is the
            // damaged one and the next panic check sits at that epoch).
            Fault {
                job: corrupt_job,
                kind: FaultKind::Panic {
                    epoch: corrupt_after,
                },
            },
            Fault {
                job: nan_job,
                kind: FaultKind::PredictorNan { call: nan_call },
            },
        ])
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// How many faults have fired so far.
    pub fn fired(&self) -> usize {
        self.fired
            .iter()
            .filter(|f| f.load(Ordering::Relaxed))
            .count()
    }

    /// Claims an unfired fault matching `pred`; at most one caller wins.
    fn take(&self, pred: impl Fn(&Fault) -> bool) -> Option<Fault> {
        for (fault, fired) in self.faults.iter().zip(&self.fired) {
            if pred(fault)
                && fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return Some(*fault);
            }
        }
        None
    }

    /// Fires a pending panic for `job` at `epoch`, if scheduled.
    pub fn take_panic(&self, job: usize, epoch: usize) -> Option<Fault> {
        self.take(|f| f.job == job && matches!(f.kind, FaultKind::Panic { epoch: e } if e == epoch))
    }

    /// Fires a pending checkpoint corruption for `job` at a save of
    /// `epoch`, if one is scheduled at or before it.
    pub fn take_corruption(&self, job: usize, epoch: usize) -> Option<(Fault, CorruptionMode)> {
        self.take(|f| {
            f.job == job
                && matches!(f.kind, FaultKind::CorruptCheckpoint { after_epoch, .. } if epoch >= after_epoch)
        })
        .map(|f| match f.kind {
            FaultKind::CorruptCheckpoint { mode, .. } => (f, mode),
            _ => unreachable!("take predicate only admits corruption"),
        })
    }

    /// Fires a pending predictor NaN for `job` on its `call`-th query, if
    /// scheduled.
    pub fn take_predictor_nan(&self, job: usize, call: usize) -> Option<Fault> {
        self.take(|f| {
            f.job == job && matches!(f.kind, FaultKind::PredictorNan { call: c } if c == call)
        })
    }
}

/// Damages an on-disk checkpoint in place, per `mode`.
///
/// # Panics
///
/// Panics if the file cannot be read or written — an injection harness that
/// silently fails to inject would green-light broken recovery code.
pub fn apply_corruption(path: &Path, mode: CorruptionMode) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {} to corrupt it: {e}", path.display()));
    let damaged = match mode {
        CorruptionMode::Truncate => text[..text.len() / 2].to_string(),
        CorruptionMode::FlipBits => {
            let lambda = text
                .lines()
                .find(|l| l.starts_with("lambda "))
                .unwrap_or_else(|| panic!("{} has no lambda record", path.display()));
            let value = lambda.strip_prefix("lambda ").expect("prefix just matched");
            let flipped = if value.starts_with('0') { '1' } else { '0' };
            let rest = value.get(1..).unwrap_or("");
            text.replace(lambda, &format!("lambda {flipped}{rest}"))
        }
        CorruptionMode::WrongVersion => {
            let version = text.lines().next().unwrap_or_default().to_string();
            text.replacen(&version, "lightnas-checkpoint v0", 1)
        }
    };
    std::fs::write(path, damaged)
        .unwrap_or_else(|e| panic!("cannot corrupt {}: {e}", path.display()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_exactly_once() {
        let plan = FaultPlan::new(vec![Fault {
            job: 1,
            kind: FaultKind::Panic { epoch: 3 },
        }]);
        assert!(plan.take_panic(0, 3).is_none(), "wrong job");
        assert!(plan.take_panic(1, 2).is_none(), "wrong epoch");
        assert!(plan.take_panic(1, 3).is_some());
        assert!(plan.take_panic(1, 3).is_none(), "one-shot");
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn corruption_fires_at_the_first_save_past_its_epoch() {
        let plan = FaultPlan::new(vec![Fault {
            job: 0,
            kind: FaultKind::CorruptCheckpoint {
                after_epoch: 4,
                mode: CorruptionMode::Truncate,
            },
        }]);
        assert!(plan.take_corruption(0, 3).is_none(), "too early");
        let (fault, mode) = plan.take_corruption(0, 6).expect("fires late");
        assert_eq!(fault.job, 0);
        assert_eq!(mode, CorruptionMode::Truncate);
        assert!(plan.take_corruption(0, 7).is_none(), "one-shot");
    }

    #[test]
    fn seeded_plans_are_reproducible_and_cover_all_classes() {
        let a = FaultPlan::seeded(9, 9, 10);
        let b = FaultPlan::seeded(9, 9, 10);
        assert_eq!(a.faults(), b.faults());
        assert_ne!(
            a.faults(),
            FaultPlan::seeded(10, 9, 10).faults(),
            "different seed, different plan"
        );
        let has = |pred: &dyn Fn(&FaultKind) -> bool| a.faults().iter().any(|f| pred(&f.kind));
        assert!(has(&|k| matches!(k, FaultKind::Panic { .. })));
        assert!(has(&|k| matches!(k, FaultKind::CorruptCheckpoint { .. })));
        assert!(has(&|k| matches!(k, FaultKind::PredictorNan { .. })));
        // Panic/corruption/NaN land on three distinct jobs.
        let corrupt_job = a
            .faults()
            .iter()
            .find(|f| matches!(f.kind, FaultKind::CorruptCheckpoint { .. }))
            .unwrap()
            .job;
        let nan_job = a
            .faults()
            .iter()
            .find(|f| matches!(f.kind, FaultKind::PredictorNan { .. }))
            .unwrap()
            .job;
        assert_ne!(corrupt_job, nan_job);
    }

    #[test]
    fn the_empty_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(plan.take_panic(0, 0).is_none());
        assert!(plan.take_corruption(0, 0).is_none());
        assert!(plan.take_predictor_nan(0, 0).is_none());
        assert_eq!(plan.fired(), 0);
    }
}
