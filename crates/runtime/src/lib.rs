//! **lightnas-runtime** — the concurrent search-job runtime of the LightNAS
//! reproduction.
//!
//! The paper's headline economics ("you only search **once**") still leave a
//! practitioner running *many* searches: one per latency target, per seed,
//! per device. This crate turns those runs from ad-hoc loops into scheduled,
//! cacheable, resumable, observable jobs:
//!
//! * [`JobScheduler`] — a worker-thread pool mapping a function over job
//!   indices with **deterministic, index-ordered results**: 1 worker and N
//!   workers produce byte-identical sweeps, only wall-clock differs.
//! * [`CachedPredictor`] (re-exported from `lightnas-predictor`) — one
//!   thread-safe memoizing predictor shared across all jobs of a sweep,
//!   with hit/miss counters surfaced in the run telemetry.
//! * [`Checkpoint`] — a versioned on-disk snapshot of a job's
//!   [`SearchState`](lightnas::SearchState) (IEEE-754 bits, atomic writes),
//!   so a killed sweep resumes **bit-identically**.
//! * [`Telemetry`] — an append-only JSONL event sink (one file per run,
//!   conventionally under `results/runs/`), counting rather than hiding
//!   its own write failures.
//! * [`run_sweep`] — the composition of all four over a [`SearchJob`] list.
//!
//! Sweeps are **supervised**: each job runs behind panic isolation with
//! bounded, checkpoint-resuming retries ([`SweepOptions::max_retries`]),
//! corrupt checkpoints are quarantined (`*.corrupt`) with fallback to a
//! previous generation ([`CheckpointStore`]), non-finite search quantities
//! trip typed divergence guards
//! ([`DivergencePolicy`]), and non-finite predictor answers degrade a
//! single query instead of a job. [`run_sweep_with_faults`] drives the
//! same machinery under a deterministic [`FaultPlan`] — seeded schedules
//! of panics, checkpoint corruption, and predictor NaNs — so the recovery
//! paths are *tested*, not just present; the guarantee (proved by the
//! `fault_sweep` exhibit) is that a faulted sweep's results are
//! byte-identical to a fault-free run.
//!
//! # Example
//!
//! ```no_run
//! use lightnas::SearchConfig;
//! use lightnas_eval::AccuracyOracle;
//! use lightnas_hw::Xavier;
//! use lightnas_predictor::{Metric, MetricDataset, MlpPredictor, TrainConfig};
//! use lightnas_runtime::{run_sweep, SearchJob, SweepOptions, Telemetry};
//! use lightnas_space::SearchSpace;
//!
//! let space = SearchSpace::standard();
//! let oracle = AccuracyOracle::imagenet();
//! let data = MetricDataset::sample_diverse(
//!     &Xavier::maxn(), &space, Metric::LatencyMs, 10_000, 0);
//! let predictor = MlpPredictor::train(&data.split(0.8).0, &TrainConfig::default());
//!
//! let jobs = SearchJob::grid(&[18.0, 24.0, 30.0], &[0, 1, 2], SearchConfig::paper());
//! let telemetry = Telemetry::create("results/runs", "frontier-sweep").unwrap();
//! let report = run_sweep(
//!     &oracle, &predictor, &jobs,
//!     &SweepOptions { workers: 4, ..Default::default() },
//!     Some(&telemetry),
//! );
//! for r in report.completed() {
//!     println!("T={} seed={} -> {}", r.job.target, r.job.seed,
//!              r.outcome.architecture.to_spec());
//! }
//! println!("cache hit rate: {:.1}%", 100.0 * report.cache.hit_rate());
//! ```

mod checkpoint;
mod fault;
mod scheduler;
mod supervisor;
mod sweep;
mod telemetry;

pub use checkpoint::{Checkpoint, CheckpointError, CHECKPOINT_VERSION};
pub use fault::{apply_corruption, splitmix64, CorruptionMode, Fault, FaultKind, FaultPlan};
pub use lightnas::DivergencePolicy;
pub use lightnas_predictor::{CacheSnapshot, CacheStats, CachedPredictor, ShardOccupancy};
pub use scheduler::{panic_message, JobPanic, JobScheduler};
pub use supervisor::CheckpointStore;
pub use sweep::{
    run_sweep, run_sweep_shared, run_sweep_with_faults, JobResult, JobStatus, SearchJob,
    SweepOptions, SweepReport,
};
pub use telemetry::{events, Field, Telemetry};
