//! The sweep runner: search jobs × worker pool × shared predictor cache ×
//! checkpoint/resume × telemetry, composed.
//!
//! [`run_sweep`] is the runtime's front door. It takes a list of
//! [`SearchJob`]s, executes them on a [`JobScheduler`] pool behind one
//! shared [`CachedPredictor`], optionally persists a [`Checkpoint`] per job
//! under a directory, and optionally narrates everything to a [`Telemetry`]
//! sink. The returned [`SweepReport`] carries per-job statuses in job order
//! — deterministic under any worker count — plus the merged cache counters
//! and the wall-clock.
//!
//! An `epoch_budget` turns the runner into a resumable batch system: when
//! the budget runs out mid-sweep (a simulated kill, a cluster preemption
//! slot, a CI time box), in-flight jobs checkpoint and report
//! [`JobStatus::Interrupted`]; calling [`run_sweep`] again with the same
//! jobs and checkpoint directory resumes each exactly where it stopped and
//! — because [`SearchState`](lightnas::SearchState) snapshots are
//! bit-exact — lands on results byte-identical to a never-interrupted run.
//!
//! Every job runs *supervised* (see [`crate::supervisor`]): a panicking or
//! diverging job is isolated, retried up to [`SweepOptions::max_retries`]
//! times from its newest loadable checkpoint (corrupt generations are
//! quarantined), and only then reported as [`JobStatus::Failed`] — the
//! rest of the sweep always runs to completion. [`run_sweep_with_faults`]
//! additionally threads a deterministic [`FaultPlan`] through the run so
//! tests and the `fault_sweep` exhibit can prove recovery is byte-exact.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::{Duration, Instant};

use lightnas::{DivergencePolicy, SearchConfig, SearchOutcome};
use lightnas_eval::AccuracyOracle;
use lightnas_predictor::{CacheStats, CachedPredictor, Predictor};

use crate::fault::FaultPlan;
use crate::scheduler::JobScheduler;
use crate::supervisor::{supervise_job, JobContext};
use crate::telemetry::{events, Field, Telemetry};

/// One unit of schedulable search work: "find the best architecture at
/// `target` with `seed` under `config`". A job is a pure function of this
/// triple, which is what makes sweeps deterministic under concurrency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchJob {
    /// The constraint target `T` (ms for latency, mJ for energy).
    pub target: f64,
    /// RNG seed of the search.
    pub seed: u64,
    /// The schedule to run.
    pub config: SearchConfig,
}

impl SearchJob {
    /// Convenience constructor.
    pub fn new(target: f64, seed: u64, config: SearchConfig) -> Self {
        Self {
            target,
            seed,
            config,
        }
    }

    /// The grid of jobs a target × seed sweep expands to (row-major:
    /// all seeds of the first target, then the next target).
    pub fn grid(targets: &[f64], seeds: &[u64], config: SearchConfig) -> Vec<SearchJob> {
        targets
            .iter()
            .flat_map(|&target| {
                seeds
                    .iter()
                    .map(move |&seed| Self::new(target, seed, config))
            })
            .collect()
    }
}

/// Knobs of one [`run_sweep`] invocation.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads (0 or 1 = serial).
    pub workers: usize,
    /// Where per-job checkpoints live; `None` disables persistence.
    pub checkpoint_dir: Option<PathBuf>,
    /// Write a checkpoint every N completed epochs (0 = only when
    /// interrupted). Requires `checkpoint_dir`.
    pub checkpoint_every: usize,
    /// How many checkpoint generations each job retains on disk (newest
    /// first: `jobNNN.ckpt`, `.prev`, `.prev2`, …). Every save rotates
    /// within this bound and prunes anything older, so long-running
    /// services never grow their checkpoint directory; quarantined
    /// `*.corrupt` evidence is never pruned. Values below 1 are treated
    /// as 1. Default: 2 (current + previous).
    pub checkpoint_keep: usize,
    /// Total epochs the whole sweep may run before in-flight jobs are
    /// interrupted (simulated kill / preemption slot). `None` = unlimited.
    pub epoch_budget: Option<usize>,
    /// How many times a crashed or diverged job is retried (resuming from
    /// its newest loadable checkpoint) before it reports
    /// [`JobStatus::Failed`]. Default: 2.
    pub max_retries: usize,
    /// Base delay of the deterministic exponential backoff between retries
    /// (doubles per attempt, no jitter). Default: 25 ms.
    pub retry_backoff: Duration,
    /// What a [`SearchStepper`](lightnas::SearchStepper) does when a search
    /// quantity turns non-finite. Deliberately *not* part of the job
    /// identity ([`SearchJob`] / checkpoint format): it never alters a
    /// healthy trajectory. Default: [`DivergencePolicy::Abort`].
    pub divergence: DivergencePolicy,
    /// Threads the tensor kernels may use *inside* each job
    /// ([`lightnas_tensor::kernels::set_num_threads`]); composes with
    /// `workers` (total ≈ `workers × kernel_threads`). `0` leaves the
    /// process-wide setting untouched. Like `divergence`, deliberately not
    /// part of the job identity: the kernels are bit-identical at every
    /// thread count, so this only changes throughput. Default: 0.
    pub kernel_threads: usize,
    /// Device name stamped on every telemetry line of this sweep (fleet
    /// runs attribute their `results/runs/` JSONL per target device).
    /// `None` (the default) omits the field entirely, so single-device
    /// telemetry stays byte-identical to earlier releases. Purely
    /// observational: never part of the job identity or checkpoint format.
    pub device: Option<String>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            workers: 0,
            checkpoint_dir: None,
            checkpoint_every: 0,
            checkpoint_keep: 2,
            epoch_budget: None,
            max_retries: 2,
            retry_backoff: Duration::from_millis(25),
            divergence: DivergencePolicy::default(),
            kernel_threads: 0,
            device: None,
        }
    }
}

impl SweepOptions {
    /// Serial, unlimited, no persistence.
    pub fn serial() -> Self {
        Self::default()
    }

    /// `workers` threads, unlimited, no persistence.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            ..Self::default()
        }
    }
}

/// A finished job's result.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Position in the submitted job list.
    pub index: usize,
    /// The job that ran.
    pub job: SearchJob,
    /// The search outcome (architecture, trace, λ).
    pub outcome: SearchOutcome,
    /// `Some(epoch)` when the job continued from a checkpoint.
    pub resumed_from: Option<usize>,
    /// Wall-clock spent in this invocation (excludes pre-checkpoint time).
    pub wall: Duration,
}

/// What happened to one job in one [`run_sweep`] invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// The job ran (or resumed) to completion.
    Completed(JobResult),
    /// The epoch budget ran out first.
    Interrupted {
        /// Position in the submitted job list.
        index: usize,
        /// Epochs completed so far.
        epoch: usize,
        /// Where the state was persisted (`None` without a checkpoint dir —
        /// the progress of this invocation is then lost).
        checkpoint: Option<PathBuf>,
    },
    /// The job kept crashing or diverging until its retries ran out. The
    /// rest of the sweep is unaffected.
    Failed {
        /// Position in the submitted job list.
        index: usize,
        /// Attempts consumed (1 + retries).
        attempts: usize,
        /// The last attempt's failure, human-readable.
        error: String,
    },
}

impl JobStatus {
    /// The result, when completed.
    pub fn completed(&self) -> Option<&JobResult> {
        match self {
            JobStatus::Completed(r) => Some(r),
            JobStatus::Interrupted { .. } | JobStatus::Failed { .. } => None,
        }
    }

    /// `(attempts, error)`, when failed.
    pub fn failed(&self) -> Option<(usize, &str)> {
        match self {
            JobStatus::Failed {
                attempts, error, ..
            } => Some((*attempts, error.as_str())),
            _ => None,
        }
    }
}

/// The outcome of one [`run_sweep`] invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Per-job statuses, in submission order.
    pub statuses: Vec<JobStatus>,
    /// Merged hit/miss counters of the sweep-wide predictor cache.
    pub cache: CacheStats,
    /// Wall-clock of the whole invocation.
    pub wall: Duration,
}

impl SweepReport {
    /// The completed results, in submission order.
    pub fn completed(&self) -> Vec<&JobResult> {
        self.statuses
            .iter()
            .filter_map(JobStatus::completed)
            .collect()
    }

    /// The failed statuses, in submission order.
    pub fn failed(&self) -> Vec<&JobStatus> {
        self.statuses
            .iter()
            .filter(|s| s.failed().is_some())
            .collect()
    }

    /// `true` when no job was interrupted or failed.
    pub fn all_completed(&self) -> bool {
        self.statuses.iter().all(|s| s.completed().is_some())
    }
}

pub(crate) fn checkpoint_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("job{index:03}.ckpt"))
}

/// Runs every job and returns the per-job statuses in submission order.
///
/// All jobs share one [`CachedPredictor`] over `predictor` — memoization
/// never changes a value, so results are byte-identical to uncached serial
/// runs; neighbouring jobs (same target, different seed, or adjacent
/// targets) re-visit overlapping architectures and compound the hit rate.
///
/// Every job is supervised: a panic or divergence inside one job never
/// takes down the sweep, corrupt checkpoints are quarantined with fallback
/// to the previous generation, and exhausted retries report
/// [`JobStatus::Failed`] in that job's slot.
pub fn run_sweep<P: Predictor + Sync>(
    oracle: &AccuracyOracle,
    predictor: &P,
    jobs: &[SearchJob],
    opts: &SweepOptions,
    telemetry: Option<&Telemetry>,
) -> SweepReport {
    run_sweep_with_faults(oracle, predictor, jobs, opts, telemetry, &FaultPlan::none())
}

/// [`run_sweep`] with a deterministic [`FaultPlan`] threaded through every
/// job: scheduled panics fire at epoch boundaries, checkpoint corruptions
/// right after saves, predictor NaNs on exact query indices. With
/// [`FaultPlan::none`] this *is* [`run_sweep`].
///
/// The supervised recovery machinery only ever replays epochs from
/// bit-exact snapshots, so a faulted sweep whose jobs all complete returns
/// results byte-identical to the fault-free run — the property the
/// `fault_sweep` exhibit and the fault-injection test suite pin down.
pub fn run_sweep_with_faults<P: Predictor + Sync>(
    oracle: &AccuracyOracle,
    predictor: &P,
    jobs: &[SearchJob],
    opts: &SweepOptions,
    telemetry: Option<&Telemetry>,
    faults: &FaultPlan,
) -> SweepReport {
    let cached = CachedPredictor::new(predictor);
    run_sweep_shared(oracle, &cached, jobs, opts, telemetry, faults)
}

/// [`run_sweep_with_faults`] over a caller-owned [`CachedPredictor`]: the
/// cache outlives the sweep, so successive (or concurrent) sweeps sharing
/// one predictor compound their hit rates instead of re-warming from cold.
/// This is the execution path of `lightnas-serve`'s multi-tenant
/// [`SearchService`](../lightnas_serve), where every tenant's sweeps share
/// one sharded cache.
///
/// Sharing never changes a result — memoized values are the predictor's own
/// deterministic outputs, and single-flight waiters receive exactly the
/// leader's answer — so [`SweepReport::statuses`] stays byte-identical to a
/// cold-cache or uncached run of the same jobs. The reported
/// [`SweepReport::cache`] counters are **this sweep's traffic only** (the
/// delta over the cache's counters at entry), preserving the
/// [`run_sweep`] meaning even though the cache is shared; traffic on other
/// threads during the sweep is attributed to whichever report observes it.
pub fn run_sweep_shared<P: Predictor + Sync>(
    oracle: &AccuracyOracle,
    cached: &CachedPredictor<'_, P>,
    jobs: &[SearchJob],
    opts: &SweepOptions,
    telemetry: Option<&Telemetry>,
    faults: &FaultPlan,
) -> SweepReport {
    let started = Instant::now();
    if opts.kernel_threads > 0 {
        lightnas_tensor::set_num_threads(opts.kernel_threads);
    }
    let scheduler = JobScheduler::new(opts.workers);
    let cache_before = cached.stats();
    // A signed counter so concurrent over-draining (several workers passing
    // zero at once) saturates harmlessly instead of wrapping.
    let budget = opts.epoch_budget.map(|n| AtomicI64::new(n as i64));
    let take_epoch = || match &budget {
        Some(b) => b.fetch_sub(1, Ordering::Relaxed) > 0,
        None => true,
    };
    if let Some(t) = telemetry {
        let mut fields = vec![
            ("jobs", Field::U(jobs.len() as u64)),
            ("workers", Field::U(scheduler.workers() as u64)),
            (
                "epoch_budget",
                opts.epoch_budget
                    .map_or(Field::B(false), |n| Field::U(n as u64)),
            ),
            ("max_retries", Field::U(opts.max_retries as u64)),
            ("kernel_threads", Field::U(opts.kernel_threads as u64)),
            ("planned_faults", Field::U(faults.faults().len() as u64)),
        ];
        if let Some(device) = &opts.device {
            fields.push(("device", Field::S(device.clone())));
        }
        t.emit(events::RUN_START, &fields);
    }

    let statuses: Vec<JobStatus> = scheduler
        .run_catching(jobs.len(), |index| {
            let ctx = JobContext {
                oracle,
                cached,
                index,
                job: jobs[index],
                opts,
                telemetry,
                faults,
            };
            supervise_job(&ctx, &take_epoch)
        })
        .into_iter()
        .map(|r| {
            // The supervisor already catches per-attempt panics; anything
            // escaping it is an infrastructure failure — still isolated to
            // its own slot rather than aborting the sweep.
            r.unwrap_or_else(|p| {
                if let Some(t) = telemetry {
                    t.emit(
                        events::JOB_FAILED,
                        &[
                            ("job", Field::U(p.index as u64)),
                            ("error", Field::S(p.message.clone())),
                            ("escaped_supervision", Field::B(true)),
                        ],
                    );
                }
                JobStatus::Failed {
                    index: p.index,
                    attempts: 0,
                    error: format!("escaped supervision: {}", p.message),
                }
            })
        })
        .collect();

    let cache = cached.stats().since(cache_before);
    let wall = started.elapsed();
    if let Some(t) = telemetry {
        let done = statuses.iter().filter(|s| s.completed().is_some()).count();
        let failed = statuses.iter().filter(|s| s.failed().is_some()).count();
        let mut fields = vec![
            ("completed", Field::U(done as u64)),
            (
                "interrupted",
                Field::U((statuses.len() - done - failed) as u64),
            ),
            ("failed", Field::U(failed as u64)),
            ("faults_fired", Field::U(faults.fired() as u64)),
            ("wall_ms", Field::F(wall.as_secs_f64() * 1e3)),
            ("cache_hits", Field::U(cache.hits)),
            ("cache_misses", Field::U(cache.misses)),
            ("cache_hit_rate", Field::F(cache.hit_rate())),
            ("telemetry_dropped", Field::U(t.dropped_events())),
        ];
        if let Some(device) = &opts.device {
            fields.push(("device", Field::S(device.clone())));
        }
        t.emit(events::RUN_END, &fields);
    }
    SweepReport {
        statuses,
        cache,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_expands_row_major() {
        let jobs = SearchJob::grid(&[20.0, 24.0], &[0, 1, 2], SearchConfig::fast());
        assert_eq!(jobs.len(), 6);
        assert_eq!((jobs[0].target, jobs[0].seed), (20.0, 0));
        assert_eq!((jobs[2].target, jobs[2].seed), (20.0, 2));
        assert_eq!((jobs[3].target, jobs[3].seed), (24.0, 0));
        assert_eq!(jobs[5].config, SearchConfig::fast());
    }

    #[test]
    fn checkpoint_paths_are_stable_and_ordered() {
        let dir = Path::new("/tmp/x");
        assert_eq!(checkpoint_path(dir, 0), dir.join("job000.ckpt"));
        assert_eq!(checkpoint_path(dir, 42), dir.join("job042.ckpt"));
    }

    #[test]
    fn report_filters_completed() {
        let r = JobResult {
            index: 0,
            job: SearchJob::new(20.0, 0, SearchConfig::fast()),
            outcome: SearchOutcome {
                architecture: lightnas_space::Architecture::homogeneous(
                    lightnas_space::Operator::SkipConnect,
                ),
                trace: lightnas::SearchTrace::new(),
                lambda: 0.0,
            },
            resumed_from: None,
            wall: Duration::ZERO,
        };
        let report = SweepReport {
            statuses: vec![
                JobStatus::Completed(r),
                JobStatus::Interrupted {
                    index: 1,
                    epoch: 3,
                    checkpoint: None,
                },
                JobStatus::Failed {
                    index: 2,
                    attempts: 3,
                    error: "diverged: non-finite loss".into(),
                },
            ],
            cache: CacheStats::default(),
            wall: Duration::ZERO,
        };
        assert_eq!(report.completed().len(), 1);
        assert_eq!(report.failed().len(), 1);
        assert_eq!(
            report.statuses[2].failed(),
            Some((3, "diverged: non-finite loss"))
        );
        assert!(!report.all_completed());
    }

    #[test]
    fn default_options_supervise_with_bounded_retries() {
        let opts = SweepOptions::default();
        assert_eq!(opts.max_retries, 2);
        assert!(!opts.retry_backoff.is_zero());
        assert_eq!(opts.divergence, lightnas::DivergencePolicy::Abort);
    }
}
