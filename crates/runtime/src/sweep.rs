//! The sweep runner: search jobs × worker pool × shared predictor cache ×
//! checkpoint/resume × telemetry, composed.
//!
//! [`run_sweep`] is the runtime's front door. It takes a list of
//! [`SearchJob`]s, executes them on a [`JobScheduler`] pool behind one
//! shared [`CachedPredictor`], optionally persists a [`Checkpoint`] per job
//! under a directory, and optionally narrates everything to a [`Telemetry`]
//! sink. The returned [`SweepReport`] carries per-job statuses in job order
//! — deterministic under any worker count — plus the merged cache counters
//! and the wall-clock.
//!
//! An `epoch_budget` turns the runner into a resumable batch system: when
//! the budget runs out mid-sweep (a simulated kill, a cluster preemption
//! slot, a CI time box), in-flight jobs checkpoint and report
//! [`JobStatus::Interrupted`]; calling [`run_sweep`] again with the same
//! jobs and checkpoint directory resumes each exactly where it stopped and
//! — because [`SearchState`](lightnas::SearchState) snapshots are
//! bit-exact — lands on results byte-identical to a never-interrupted run.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::{Duration, Instant};

use lightnas::{SearchConfig, SearchOutcome, SearchStepper};
use lightnas_eval::AccuracyOracle;
use lightnas_predictor::{CacheStats, CachedPredictor, Predictor};

use crate::checkpoint::Checkpoint;
use crate::scheduler::JobScheduler;
use crate::telemetry::{Field, Telemetry};

/// One unit of schedulable search work: "find the best architecture at
/// `target` with `seed` under `config`". A job is a pure function of this
/// triple, which is what makes sweeps deterministic under concurrency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchJob {
    /// The constraint target `T` (ms for latency, mJ for energy).
    pub target: f64,
    /// RNG seed of the search.
    pub seed: u64,
    /// The schedule to run.
    pub config: SearchConfig,
}

impl SearchJob {
    /// Convenience constructor.
    pub fn new(target: f64, seed: u64, config: SearchConfig) -> Self {
        Self {
            target,
            seed,
            config,
        }
    }

    /// The grid of jobs a target × seed sweep expands to (row-major:
    /// all seeds of the first target, then the next target).
    pub fn grid(targets: &[f64], seeds: &[u64], config: SearchConfig) -> Vec<SearchJob> {
        targets
            .iter()
            .flat_map(|&target| {
                seeds
                    .iter()
                    .map(move |&seed| Self::new(target, seed, config))
            })
            .collect()
    }
}

/// Knobs of one [`run_sweep`] invocation.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads (0 or 1 = serial).
    pub workers: usize,
    /// Where per-job checkpoints live; `None` disables persistence.
    pub checkpoint_dir: Option<PathBuf>,
    /// Write a checkpoint every N completed epochs (0 = only when
    /// interrupted). Requires `checkpoint_dir`.
    pub checkpoint_every: usize,
    /// Total epochs the whole sweep may run before in-flight jobs are
    /// interrupted (simulated kill / preemption slot). `None` = unlimited.
    pub epoch_budget: Option<usize>,
}

impl SweepOptions {
    /// Serial, unlimited, no persistence.
    pub fn serial() -> Self {
        Self::default()
    }

    /// `workers` threads, unlimited, no persistence.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            ..Self::default()
        }
    }
}

/// A finished job's result.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Position in the submitted job list.
    pub index: usize,
    /// The job that ran.
    pub job: SearchJob,
    /// The search outcome (architecture, trace, λ).
    pub outcome: SearchOutcome,
    /// `Some(epoch)` when the job continued from a checkpoint.
    pub resumed_from: Option<usize>,
    /// Wall-clock spent in this invocation (excludes pre-checkpoint time).
    pub wall: Duration,
}

/// What happened to one job in one [`run_sweep`] invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// The job ran (or resumed) to completion.
    Completed(JobResult),
    /// The epoch budget ran out first.
    Interrupted {
        /// Position in the submitted job list.
        index: usize,
        /// Epochs completed so far.
        epoch: usize,
        /// Where the state was persisted (`None` without a checkpoint dir —
        /// the progress of this invocation is then lost).
        checkpoint: Option<PathBuf>,
    },
}

impl JobStatus {
    /// The result, when completed.
    pub fn completed(&self) -> Option<&JobResult> {
        match self {
            JobStatus::Completed(r) => Some(r),
            JobStatus::Interrupted { .. } => None,
        }
    }
}

/// The outcome of one [`run_sweep`] invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Per-job statuses, in submission order.
    pub statuses: Vec<JobStatus>,
    /// Merged hit/miss counters of the sweep-wide predictor cache.
    pub cache: CacheStats,
    /// Wall-clock of the whole invocation.
    pub wall: Duration,
}

impl SweepReport {
    /// The completed results, in submission order.
    pub fn completed(&self) -> Vec<&JobResult> {
        self.statuses
            .iter()
            .filter_map(JobStatus::completed)
            .collect()
    }

    /// `true` when no job was interrupted.
    pub fn all_completed(&self) -> bool {
        self.statuses.iter().all(|s| s.completed().is_some())
    }
}

fn checkpoint_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("job{index:03}.ckpt"))
}

/// Runs every job and returns the per-job statuses in submission order.
///
/// All jobs share one [`CachedPredictor`] over `predictor` — memoization
/// never changes a value, so results are byte-identical to uncached serial
/// runs; neighbouring jobs (same target, different seed, or adjacent
/// targets) re-visit overlapping architectures and compound the hit rate.
///
/// # Panics
///
/// Panics if a checkpoint on disk fails to parse or belongs to a different
/// job than the one it is named for — silently discarding or overwriting
/// someone's search state would be worse than stopping.
pub fn run_sweep<P: Predictor + Sync>(
    oracle: &AccuracyOracle,
    predictor: &P,
    jobs: &[SearchJob],
    opts: &SweepOptions,
    telemetry: Option<&Telemetry>,
) -> SweepReport {
    let started = Instant::now();
    let scheduler = JobScheduler::new(opts.workers);
    let cached = CachedPredictor::new(predictor);
    // A signed counter so concurrent over-draining (several workers passing
    // zero at once) saturates harmlessly instead of wrapping.
    let budget = opts.epoch_budget.map(|n| AtomicI64::new(n as i64));
    let take_epoch = || match &budget {
        Some(b) => b.fetch_sub(1, Ordering::Relaxed) > 0,
        None => true,
    };
    if let Some(t) = telemetry {
        t.emit(
            "run_start",
            &[
                ("jobs", Field::U(jobs.len() as u64)),
                ("workers", Field::U(scheduler.workers() as u64)),
                (
                    "epoch_budget",
                    opts.epoch_budget
                        .map_or(Field::B(false), |n| Field::U(n as u64)),
                ),
            ],
        );
    }

    let statuses = scheduler.run(jobs.len(), |index| {
        let job = jobs[index];
        let job_started = Instant::now();
        let ckpt_path = opts
            .checkpoint_dir
            .as_deref()
            .map(|d| checkpoint_path(d, index));
        let mut resumed_from = None;
        let mut stepper = match ckpt_path.as_deref().filter(|p| p.exists()) {
            Some(path) => {
                let ck = Checkpoint::load(path)
                    .unwrap_or_else(|e| panic!("cannot load {}: {e}", path.display()));
                ck.verify_matches(job.target, job.seed, &job.config)
                    .unwrap_or_else(|e| panic!("refusing {}: {e}", path.display()));
                resumed_from = Some(ck.state.epoch);
                SearchStepper::from_state(oracle, &cached, job.config, job.target, ck.state)
            }
            None => SearchStepper::new(oracle, &cached, job.config, job.target, job.seed),
        };
        if let Some(t) = telemetry {
            t.emit(
                "job_start",
                &[
                    ("job", Field::U(index as u64)),
                    ("target", Field::F(job.target)),
                    ("seed", Field::U(job.seed)),
                    ("from_epoch", Field::U(stepper.epoch() as u64)),
                    ("resumed", Field::B(resumed_from.is_some())),
                ],
            );
        }
        let save = |stepper: &SearchStepper<'_, _>, path: &Path| {
            Checkpoint::new(job.target, job.seed, job.config, stepper.state())
                .save(path)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        };
        while !stepper.is_complete() {
            if !take_epoch() {
                let epoch = stepper.epoch();
                if let Some(path) = ckpt_path.as_deref() {
                    save(&stepper, path);
                }
                if let Some(t) = telemetry {
                    t.emit(
                        "job_interrupted",
                        &[
                            ("job", Field::U(index as u64)),
                            ("epoch", Field::U(epoch as u64)),
                            (
                                "checkpoint",
                                ckpt_path
                                    .as_deref()
                                    .map_or(Field::B(false), |p| Field::S(p.display().to_string())),
                            ),
                        ],
                    );
                }
                return JobStatus::Interrupted {
                    index,
                    epoch,
                    checkpoint: ckpt_path,
                };
            }
            let record = stepper
                .step_epoch()
                .expect("not complete, so an epoch must run");
            if let Some(t) = telemetry {
                t.emit(
                    "epoch",
                    &[
                        ("job", Field::U(index as u64)),
                        ("epoch", Field::U(record.epoch as u64)),
                        ("argmax_metric", Field::F(record.argmax_metric)),
                        ("lambda", Field::F(record.lambda)),
                        ("tau", Field::F(record.tau)),
                    ],
                );
            }
            if let Some(path) = ckpt_path.as_deref() {
                let every = opts.checkpoint_every;
                if every > 0 && stepper.epoch() % every == 0 && !stepper.is_complete() {
                    save(&stepper, path);
                    if let Some(t) = telemetry {
                        t.emit(
                            "checkpoint",
                            &[
                                ("job", Field::U(index as u64)),
                                ("epoch", Field::U(stepper.epoch() as u64)),
                                ("path", Field::S(path.display().to_string())),
                            ],
                        );
                    }
                }
            }
        }
        let outcome = stepper.outcome();
        // A finished job's checkpoint is spent; removing it lets the next
        // invocation of the same sweep start fresh instead of replaying a
        // completed state.
        if let Some(path) = ckpt_path.as_deref() {
            let _ = std::fs::remove_file(path);
        }
        if let Some(t) = telemetry {
            t.emit(
                "job_done",
                &[
                    ("job", Field::U(index as u64)),
                    ("epochs", Field::U(job.config.epochs as u64)),
                    ("arch", Field::S(outcome.architecture.to_spec())),
                    ("lambda", Field::F(outcome.lambda)),
                    ("predicted", Field::F(cached.predict(&outcome.architecture))),
                    (
                        "wall_ms",
                        Field::F(job_started.elapsed().as_secs_f64() * 1e3),
                    ),
                    ("resumed", Field::B(resumed_from.is_some())),
                ],
            );
        }
        JobStatus::Completed(JobResult {
            index,
            job,
            outcome,
            resumed_from,
            wall: job_started.elapsed(),
        })
    });

    let cache = cached.stats();
    let wall = started.elapsed();
    if let Some(t) = telemetry {
        let done = statuses.iter().filter(|s| s.completed().is_some()).count();
        t.emit(
            "run_end",
            &[
                ("completed", Field::U(done as u64)),
                ("interrupted", Field::U((statuses.len() - done) as u64)),
                ("wall_ms", Field::F(wall.as_secs_f64() * 1e3)),
                ("cache_hits", Field::U(cache.hits)),
                ("cache_misses", Field::U(cache.misses)),
                ("cache_hit_rate", Field::F(cache.hit_rate())),
            ],
        );
    }
    SweepReport {
        statuses,
        cache,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_expands_row_major() {
        let jobs = SearchJob::grid(&[20.0, 24.0], &[0, 1, 2], SearchConfig::fast());
        assert_eq!(jobs.len(), 6);
        assert_eq!((jobs[0].target, jobs[0].seed), (20.0, 0));
        assert_eq!((jobs[2].target, jobs[2].seed), (20.0, 2));
        assert_eq!((jobs[3].target, jobs[3].seed), (24.0, 0));
        assert_eq!(jobs[5].config, SearchConfig::fast());
    }

    #[test]
    fn checkpoint_paths_are_stable_and_ordered() {
        let dir = Path::new("/tmp/x");
        assert_eq!(checkpoint_path(dir, 0), dir.join("job000.ckpt"));
        assert_eq!(checkpoint_path(dir, 42), dir.join("job042.ckpt"));
    }

    #[test]
    fn report_filters_completed() {
        let r = JobResult {
            index: 0,
            job: SearchJob::new(20.0, 0, SearchConfig::fast()),
            outcome: SearchOutcome {
                architecture: lightnas_space::Architecture::homogeneous(
                    lightnas_space::Operator::SkipConnect,
                ),
                trace: lightnas::SearchTrace::new(),
                lambda: 0.0,
            },
            resumed_from: None,
            wall: Duration::ZERO,
        };
        let report = SweepReport {
            statuses: vec![
                JobStatus::Completed(r),
                JobStatus::Interrupted {
                    index: 1,
                    epoch: 3,
                    checkpoint: None,
                },
            ],
            cache: CacheStats::default(),
            wall: Duration::ZERO,
        };
        assert_eq!(report.completed().len(), 1);
        assert!(!report.all_completed());
    }
}
