//! Per-job supervision: checkpoint generations with quarantine, guarded
//! predictors, and the bounded-retry loop around one search attempt.
//!
//! The supervisor owns everything between "the scheduler hands a job to a
//! worker" and "the job reports a [`JobStatus`]":
//!
//! * [`CheckpointStore`] keeps a **bounded set of generations** of a job's
//!   checkpoint (default two: current + previous) and falls back across
//!   them on load failure, renaming any unreadable file to `<name>.corrupt`
//!   instead of deleting the evidence; [`CheckpointStore::prune`] keeps the
//!   directory from growing when the retention is lowered.
//! * [`GuardedPredictor`] sits between the stepper and the sweep-shared
//!   predictor cache: injected (or genuine) non-finite answers are retried
//!   against the cache once and counted, so a transient NaN degrades a
//!   single query instead of the whole job — and never enters the cache.
//! * [`supervise_job`] retries a crashed or diverged attempt up to
//!   `max_retries` times with deterministic exponential backoff, resuming
//!   from the newest loadable checkpoint each time.
//!
//! Determinism under faults: recovery only ever (a) re-runs epochs from a
//! bit-exact snapshot, (b) falls back to an *older* bit-exact snapshot, or
//! (c) restarts from epoch 0 — and a search epoch is a pure function of the
//! resumed state, so a supervised job that eventually completes produces
//! byte-for-byte the same outcome as an unfaulted run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use lightnas::SearchStepper;
use lightnas_eval::AccuracyOracle;
use lightnas_predictor::{CachedPredictor, Predictor};
use lightnas_space::Architecture;

use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::fault::{apply_corruption, FaultPlan};
use crate::scheduler::panic_message;
use crate::sweep::{checkpoint_path, JobResult, JobStatus, SearchJob, SweepOptions};
use crate::telemetry::{events, Field, Telemetry};

/// Bounded generations of one job's on-disk checkpoint, with quarantine.
///
/// Every save rotates the existing generations one slot older (`<name>` →
/// `<name>.prev` → `<name>.prev2` → …, up to [`keep`](Self::keep) files)
/// before writing, so a save that lands corrupted (torn storage, bit rot)
/// still leaves older loadable snapshots behind. [`recover`](Self::recover)
/// walks the generations newest-first and *quarantines* — renames to
/// `<generation>.corrupt` — anything that fails to load or belongs to a
/// different job, keeping the evidence for post-mortems instead of
/// overwriting it.
///
/// Rotation is bounded: the oldest retained generation is overwritten in
/// place, so a long-running service never grows its checkpoint directory —
/// and [`prune`](Self::prune) removes generations left behind by an earlier
/// run with a larger `keep`, while **never** touching quarantined
/// `*.corrupt` evidence.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    /// Generation paths, newest first (`generations[0]` is current).
    generations: Vec<PathBuf>,
}

fn quarantined(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".corrupt");
    PathBuf::from(os)
}

/// The on-disk suffix of generation `k` (empty for the current file).
fn generation_suffix(k: usize) -> String {
    match k {
        0 => String::new(),
        1 => ".prev".to_string(),
        k => format!(".prev{k}"),
    }
}

/// The generation index a file-name suffix denotes, if it is one.
/// `""` → 0, `".prev"` → 1, `".prevN"` → N; anything else — including the
/// `".corrupt"`-suffixed quarantine names — is not a generation.
fn suffix_generation(suffix: &str) -> Option<usize> {
    if suffix.is_empty() {
        return Some(0);
    }
    let rest = suffix.strip_prefix(".prev")?;
    if rest.is_empty() {
        Some(1)
    } else if rest.bytes().all(|b| b.is_ascii_digit()) {
        rest.parse().ok().filter(|&k| k >= 2)
    } else {
        None
    }
}

impl CheckpointStore {
    /// The store for job `index` under `dir`, keeping the default two
    /// generations (current + previous).
    pub fn new(dir: &Path, index: usize) -> Self {
        Self::with_keep(dir, index, 2)
    }

    /// The store for job `index` under `dir`, keeping `keep` generations.
    ///
    /// # Panics
    ///
    /// Panics if `keep == 0` — a store that retains nothing cannot recover.
    pub fn with_keep(dir: &Path, index: usize, keep: usize) -> Self {
        assert!(keep >= 1, "a checkpoint store must keep >= 1 generation");
        let base = checkpoint_path(dir, index);
        let generations = (0..keep)
            .map(|k| {
                let mut os = base.as_os_str().to_os_string();
                os.push(generation_suffix(k));
                PathBuf::from(os)
            })
            .collect();
        Self { generations }
    }

    /// How many generations this store retains.
    pub fn keep(&self) -> usize {
        self.generations.len()
    }

    /// The newest-generation path (what [`save`](Self::save) writes).
    pub fn current(&self) -> &Path {
        &self.generations[0]
    }

    /// The previous-generation path.
    ///
    /// # Panics
    ///
    /// Panics if the store keeps only one generation.
    pub fn previous(&self) -> &Path {
        &self.generations[1]
    }

    /// Rotates every generation one slot older (the oldest retained one is
    /// overwritten) and writes `ck` as the new current.
    ///
    /// # Errors
    ///
    /// Propagates [`Checkpoint::save`] failures.
    pub fn save(&self, ck: &Checkpoint) -> Result<(), CheckpointError> {
        for k in (0..self.generations.len() - 1).rev() {
            if self.generations[k].exists() {
                std::fs::rename(&self.generations[k], &self.generations[k + 1])?;
            }
        }
        ck.save(self.current())
    }

    /// Loads the newest checkpoint that parses *and* belongs to the job
    /// `(target, seed, config)`. Generations that fail either test are
    /// quarantined (renamed `<name>.corrupt`) and reported through
    /// `on_quarantine`; `None` means no generation survived and the job
    /// must start from scratch.
    pub fn recover(
        &self,
        target: f64,
        seed: u64,
        config: &lightnas::SearchConfig,
        mut on_quarantine: impl FnMut(&Path, &CheckpointError),
    ) -> Option<Checkpoint> {
        for path in &self.generations {
            if !path.exists() {
                continue;
            }
            let loaded = Checkpoint::load(path).and_then(|ck| {
                ck.verify_matches(target, seed, config)?;
                Ok(ck)
            });
            match loaded {
                Ok(ck) => return Some(ck),
                Err(e) => {
                    let jail = quarantined(path);
                    let _ = std::fs::rename(path, &jail);
                    on_quarantine(&jail, &e);
                }
            }
        }
        None
    }

    /// Removes every on-disk generation of this job whose index is
    /// `>= keep_last`, returning how many files were deleted. The scan is
    /// directory-based, so generations written by an earlier run with a
    /// *larger* retention than this store's are found too. Quarantined
    /// `*.corrupt` files are never touched — they are evidence, not
    /// inventory.
    pub fn prune(&self, keep_last: usize) -> usize {
        let base = self.current();
        let (Some(dir), Some(base_name)) = (base.parent(), base.file_name()) else {
            return 0;
        };
        let Some(base_name) = base_name.to_str() else {
            return 0;
        };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return 0;
        };
        let mut removed = 0;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(suffix) = name.strip_prefix(base_name) else {
                continue;
            };
            match suffix_generation(suffix) {
                Some(k) if k >= keep_last.max(1) && std::fs::remove_file(entry.path()).is_ok() => {
                    removed += 1;
                }
                _ => {}
            }
        }
        removed
    }

    /// Removes every retained generation (a completed job's snapshots are
    /// spent). Quarantined files are deliberately left behind.
    pub fn clear(&self) {
        for path in &self.generations {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A [`Predictor`] wrapper between one job's stepper and the sweep-shared
/// cache: applies scheduled [`FaultKind::PredictorNan`](crate::FaultKind)
/// injections *above* the cache (poison never gets memoized), and answers
/// any non-finite result — injected or genuine — by re-querying the inner
/// predictor once, counting and narrating the degradation.
///
/// For a transient fault the retry returns the inner predictor's (cached,
/// deterministic) value, so the search trajectory is unchanged; a
/// persistently broken predictor keeps returning NaN and is then the
/// stepper's divergence guard's problem.
pub(crate) struct GuardedPredictor<'a, P: Predictor> {
    inner: &'a P,
    job: usize,
    faults: &'a FaultPlan,
    telemetry: Option<&'a Telemetry>,
    calls: AtomicU64,
    degraded: AtomicU64,
}

impl<'a, P: Predictor> GuardedPredictor<'a, P> {
    pub(crate) fn new(
        inner: &'a P,
        job: usize,
        faults: &'a FaultPlan,
        telemetry: Option<&'a Telemetry>,
    ) -> Self {
        Self {
            inner,
            job,
            faults,
            telemetry,
            calls: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
        }
    }

    pub(crate) fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    fn next_call(&self) -> usize {
        self.calls.fetch_add(1, Ordering::Relaxed) as usize
    }

    fn note_degraded(&self, call: usize, recovered: bool) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = self.telemetry {
            t.emit(
                events::PREDICTOR_DEGRADED,
                &[
                    ("job", Field::U(self.job as u64)),
                    ("call", Field::U(call as u64)),
                    ("recovered", Field::B(recovered)),
                ],
            );
        }
    }
}

impl<P: Predictor> Predictor for GuardedPredictor<'_, P> {
    fn predict_encoding(&self, encoding: &[f32]) -> f64 {
        let call = self.next_call();
        let mut v = self.inner.predict_encoding(encoding);
        if self.faults.take_predictor_nan(self.job, call).is_some() {
            v = f64::NAN;
        }
        if v.is_finite() {
            return v;
        }
        let retried = self.inner.predict_encoding(encoding);
        self.note_degraded(call, retried.is_finite());
        retried
    }

    fn predict(&self, arch: &Architecture) -> f64 {
        let call = self.next_call();
        let mut v = self.inner.predict(arch);
        if self.faults.take_predictor_nan(self.job, call).is_some() {
            v = f64::NAN;
        }
        if v.is_finite() {
            return v;
        }
        let retried = self.inner.predict(arch);
        self.note_degraded(call, retried.is_finite());
        retried
    }

    fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
        let call = self.next_call();
        let mut g = self.inner.gradient(encoding);
        if self.faults.take_predictor_nan(self.job, call).is_some() {
            g = vec![f32::NAN; g.len()];
        }
        if g.iter().all(|v| v.is_finite()) {
            return g;
        }
        let retried = self.inner.gradient(encoding);
        self.note_degraded(call, retried.iter().all(|v| v.is_finite()));
        retried
    }
}

/// Everything one supervised job needs from its sweep.
pub(crate) struct JobContext<'a, P: Predictor> {
    pub(crate) oracle: &'a AccuracyOracle,
    pub(crate) cached: &'a CachedPredictor<'a, P>,
    pub(crate) index: usize,
    pub(crate) job: SearchJob,
    pub(crate) opts: &'a SweepOptions,
    pub(crate) telemetry: Option<&'a Telemetry>,
    pub(crate) faults: &'a FaultPlan,
}

impl<P: Predictor> JobContext<'_, P> {
    fn emit(&self, event: &str, fields: &[(&str, Field)]) {
        if let Some(t) = self.telemetry {
            let mut all = vec![("job", Field::U(self.index as u64))];
            // Attribute every job-lifecycle line to its target device in
            // fleet sweeps; defaulted (None) sweeps stay byte-identical.
            if let Some(device) = &self.opts.device {
                all.push(("device", Field::S(device.clone())));
            }
            all.extend_from_slice(fields);
            t.emit(event, &all);
        }
    }
}

/// How one attempt of a job ended.
enum AttemptOutcome {
    /// Terminal for the supervisor: completed or (budget-)interrupted.
    Finished(JobStatus),
    /// The search hit a non-finite guard; retryable.
    Diverged(lightnas::SearchError),
}

/// Runs one job under full supervision: panic isolation, bounded retry
/// with deterministic exponential backoff, checkpoint recovery with
/// quarantine, and guarded prediction. Never panics for job-level causes —
/// a job that exhausts its retries reports [`JobStatus::Failed`].
pub(crate) fn supervise_job<P, F>(ctx: &JobContext<'_, P>, take_epoch: &F) -> JobStatus
where
    P: Predictor,
    F: Fn() -> bool,
{
    let mut attempt = 0usize;
    loop {
        let error = match catch_unwind(AssertUnwindSafe(|| run_attempt(ctx, take_epoch, attempt))) {
            Ok(AttemptOutcome::Finished(status)) => return status,
            Ok(AttemptOutcome::Diverged(e)) => format!("diverged: {e}"),
            Err(payload) => format!("panicked: {}", panic_message(payload.as_ref())),
        };
        ctx.emit(
            events::JOB_FAILED,
            &[
                ("attempt", Field::U(attempt as u64)),
                ("error", Field::S(error.clone())),
            ],
        );
        if attempt >= ctx.opts.max_retries {
            return JobStatus::Failed {
                index: ctx.index,
                attempts: attempt + 1,
                error,
            };
        }
        // Deterministic (jitter-free) exponential backoff: the schedule is
        // part of the reproducible run, not a source of noise.
        let backoff = ctx
            .opts
            .retry_backoff
            .saturating_mul(1u32 << attempt.min(16));
        ctx.emit(
            events::JOB_RETRIED,
            &[
                ("attempt", Field::U(attempt as u64 + 1)),
                ("backoff_ms", Field::F(backoff.as_secs_f64() * 1e3)),
            ],
        );
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        attempt += 1;
    }
}

fn run_attempt<P, F>(ctx: &JobContext<'_, P>, take_epoch: &F, attempt: usize) -> AttemptOutcome
where
    P: Predictor,
    F: Fn() -> bool,
{
    let job = ctx.job;
    let index = ctx.index;
    let started = Instant::now();
    let store = ctx
        .opts
        .checkpoint_dir
        .as_deref()
        .map(|dir| CheckpointStore::with_keep(dir, index, ctx.opts.checkpoint_keep.max(1)));
    let recovered = store.as_ref().and_then(|s| {
        s.recover(job.target, job.seed, &job.config, |path, error| {
            ctx.emit(
                events::CHECKPOINT_QUARANTINED,
                &[
                    ("path", Field::S(path.display().to_string())),
                    ("error", Field::S(error.to_string())),
                ],
            );
        })
    });
    let guarded = GuardedPredictor::new(ctx.cached, index, ctx.faults, ctx.telemetry);
    let mut resumed_from = None;
    let mut stepper = match recovered {
        Some(ck) => {
            resumed_from = Some(ck.state.epoch);
            SearchStepper::from_state(ctx.oracle, &guarded, job.config, job.target, ck.state)
        }
        None => SearchStepper::new(ctx.oracle, &guarded, job.config, job.target, job.seed),
    }
    .with_divergence_policy(ctx.opts.divergence);
    ctx.emit(
        events::JOB_START,
        &[
            ("target", Field::F(job.target)),
            ("seed", Field::U(job.seed)),
            ("from_epoch", Field::U(stepper.epoch() as u64)),
            ("resumed", Field::B(resumed_from.is_some())),
            ("attempt", Field::U(attempt as u64)),
        ],
    );
    let save = |stepper: &SearchStepper<'_, _>, store: &CheckpointStore| {
        let ck = Checkpoint::new(job.target, job.seed, job.config, stepper.state());
        store
            .save(&ck)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", store.current().display()));
        store.prune(store.keep());
    };
    while !stepper.is_complete() {
        if let Some(fault) = ctx.faults.take_panic(index, stepper.epoch()) {
            panic!("injected fault: {}", fault.kind);
        }
        if !take_epoch() {
            let epoch = stepper.epoch();
            if let Some(store) = store.as_ref() {
                save(&stepper, store);
            }
            ctx.emit(
                events::JOB_INTERRUPTED,
                &[
                    ("epoch", Field::U(epoch as u64)),
                    (
                        "checkpoint",
                        store.as_ref().map_or(Field::B(false), |s| {
                            Field::S(s.current().display().to_string())
                        }),
                    ),
                ],
            );
            return AttemptOutcome::Finished(JobStatus::Interrupted {
                index,
                epoch,
                checkpoint: store.as_ref().map(|s| s.current().to_path_buf()),
            });
        }
        let record = match stepper.try_step_epoch() {
            Ok(r) => r.expect("not complete, so an epoch must run"),
            Err(e) => return AttemptOutcome::Diverged(e),
        };
        ctx.emit(
            events::EPOCH,
            &[
                ("epoch", Field::U(record.epoch as u64)),
                ("argmax_metric", Field::F(record.argmax_metric)),
                ("lambda", Field::F(record.lambda)),
                ("tau", Field::F(record.tau)),
            ],
        );
        if let Some(store) = store.as_ref() {
            let every = ctx.opts.checkpoint_every;
            if every > 0 && stepper.epoch() % every == 0 && !stepper.is_complete() {
                save(&stepper, store);
                ctx.emit(
                    events::CHECKPOINT,
                    &[
                        ("epoch", Field::U(stepper.epoch() as u64)),
                        ("path", Field::S(store.current().display().to_string())),
                    ],
                );
                if let Some((_, mode)) = ctx.faults.take_corruption(index, stepper.epoch()) {
                    apply_corruption(store.current(), mode);
                }
            }
        }
    }
    let outcome = stepper.outcome();
    if let Some(store) = store.as_ref() {
        store.clear();
    }
    ctx.emit(
        events::JOB_DONE,
        &[
            ("epochs", Field::U(job.config.epochs as u64)),
            ("arch", Field::S(outcome.architecture.to_spec())),
            ("lambda", Field::F(outcome.lambda)),
            // Predicted via the shared cache, not the guard: the report
            // value must never consume a fault slot or count as a call.
            (
                "predicted",
                Field::F(ctx.cached.predict(&outcome.architecture)),
            ),
            ("wall_ms", Field::F(started.elapsed().as_secs_f64() * 1e3)),
            ("resumed", Field::B(resumed_from.is_some())),
            ("attempt", Field::U(attempt as u64)),
            ("lambda_resets", Field::U(stepper.recoveries())),
            ("degraded_calls", Field::U(guarded.degraded())),
        ],
    );
    AttemptOutcome::Finished(JobStatus::Completed(JobResult {
        index,
        job,
        outcome,
        resumed_from,
        wall: started.elapsed(),
    }))
}
