//! Versioned on-disk snapshots of a search job.
//!
//! A checkpoint is the serialized form of a
//! [`SearchState`](lightnas::SearchState) plus the immutable run parameters
//! (`target`, `seed`, [`SearchConfig`]) it belongs to, so a resumed runtime
//! can both rebuild the stepper and *refuse* a checkpoint that was written
//! by a different job.
//!
//! # Format (`lightnas-checkpoint v2`)
//!
//! A line-oriented text format, one `key value...` record per line, closed
//! by a `checksum` line and an `end` line. The `end` terminator guards
//! against truncated writes (on top of the atomic temp-file + rename
//! protocol used by [`Checkpoint::save`]); the mandatory `checksum` line —
//! FNV-1a 64 over every record line between the version line and the
//! checksum itself, each including its trailing newline — catches *silent*
//! corruption: a flipped bit inside a hex word still parses as a valid
//! `f64`, so without the checksum it would resurrect a subtly wrong state
//! and break bit-identical resume undetectably.
//! Every `f64` is serialized as the 16-hex-digit form of its IEEE-754 bits
//! (`f64::to_bits`), **not** as a decimal — resume must be bit-identical,
//! and decimal round-trips are where bit-identity goes to die.
//!
//! ```text
//! lightnas-checkpoint v2
//! target 4038000000000000
//! seed 7
//! config 30 30 3 3f68db8bac710cb3 3f50624dd2f1a9fc 3f70624dd2f1a9fc 4014000000000000 3fb999999999999a
//! epoch 7
//! global_step 210
//! lambda bfb32af5bcc91d11
//! rng 9a3298211f1c5f2d ... (4 words)
//! adam_t 120
//! alpha 0 3fb32af5bcc91d11 ... (7 words; 21 rows)
//! adam_m 0 ... / adam_v 0 ...
//! trace 0 <sampled> <argmax> <lambda> <tau> <valid_loss>
//! checksum 41bd4327cbd19d51
//! end
//! ```

use std::fmt;
use std::io::Write;
use std::path::Path;

use lightnas::{AdamState, EpochRecord, SearchConfig, SearchState, SearchTrace};
use lightnas_space::{NUM_OPS, SEARCHABLE_LAYERS};

/// The format identifier written as the first line of every checkpoint.
pub const CHECKPOINT_VERSION: &str = "lightnas-checkpoint v2";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a 64 hash.
fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// Checksum of the record body: every line (with its trailing newline)
/// between the version line and the `checksum` line.
fn body_checksum<'a>(lines: impl IntoIterator<Item = &'a str>) -> u64 {
    lines.into_iter().fold(FNV_OFFSET, |h, line| {
        fnv1a(fnv1a(h, line.as_bytes()), b"\n")
    })
}

/// Why a checkpoint could not be saved, loaded, or used.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The first line did not name a supported format version.
    UnsupportedVersion(String),
    /// A record line was missing, duplicated, or unparsable.
    Malformed {
        /// 1-based line number (0 when the problem is file-global).
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The body hash does not match the stamped `checksum` line — the file
    /// was silently corrupted after it was written.
    ChecksumMismatch {
        /// The checksum stamped in the file.
        stamped: u64,
        /// The checksum computed over the body as read.
        computed: u64,
    },
    /// The checkpoint belongs to a different job (target/seed/config).
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v:?} (expected {CHECKPOINT_VERSION:?})"
                )
            }
            CheckpointError::Malformed { line, reason } => {
                write!(f, "malformed checkpoint at line {line}: {reason}")
            }
            CheckpointError::ChecksumMismatch { stamped, computed } => {
                write!(
                    f,
                    "checkpoint checksum mismatch: file says {stamped:016x}, body hashes to {computed:016x}"
                )
            }
            CheckpointError::Mismatch(what) => {
                write!(f, "checkpoint belongs to a different job: {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A serializable snapshot of one search job between epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The constraint target `T` the job searches for.
    pub target: f64,
    /// The job's RNG seed.
    pub seed: u64,
    /// The schedule the job runs.
    pub config: SearchConfig,
    /// The complete mutable search state.
    pub state: SearchState,
}

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Parses a full 16-hex-digit `u64` word. The length check is load-bearing:
/// `from_str_radix` happily accepts `"3f"` (a *truncated* `lambda`/`rng`
/// record would silently resurrect a garbage value), so anything shorter or
/// longer than the canonical `{:016x}` form is typed corruption, not data.
fn parse_hex_u64(tok: &str) -> Result<u64, String> {
    if tok.len() != 16 {
        return Err(format!(
            "bad hex word {tok:?}: want exactly 16 hex digits, got {} (truncated record?)",
            tok.len()
        ));
    }
    u64::from_str_radix(tok, 16).map_err(|_| format!("bad hex word {tok:?}"))
}

fn parse_hex_f64(tok: &str) -> Result<f64, String> {
    parse_hex_u64(tok).map(f64::from_bits)
}

fn parse_int<T: std::str::FromStr>(tok: &str, what: &str) -> Result<T, String> {
    tok.parse().map_err(|_| format!("bad {what} {tok:?}"))
}

/// Parses `row` + `NUM_OPS` hex words into `rows[row]`.
fn parse_row(rest: &[&str], rows: &mut [[f64; NUM_OPS]], what: &str) -> Result<(), String> {
    if rest.len() != 1 + NUM_OPS {
        return Err(format!("{what} row needs an index and {NUM_OPS} values"));
    }
    let idx: usize = parse_int(rest[0], "row index")?;
    if idx >= rows.len() {
        return Err(format!("{what} row {idx} out of range"));
    }
    for (k, tok) in rest[1..].iter().enumerate() {
        rows[idx][k] = parse_hex_f64(tok)?;
    }
    Ok(())
}

impl Checkpoint {
    /// Bundles a job's identity with a state snapshot.
    pub fn new(target: f64, seed: u64, config: SearchConfig, state: SearchState) -> Self {
        Self {
            target,
            seed,
            config,
            state,
        }
    }

    /// `Ok` iff this checkpoint was written by the job described by
    /// `(target, seed, config)` — bit-exact on the target, exact on the
    /// seed and every config field.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Mismatch`] naming the differing field.
    pub fn verify_matches(
        &self,
        target: f64,
        seed: u64,
        config: &SearchConfig,
    ) -> Result<(), CheckpointError> {
        if self.target.to_bits() != target.to_bits() {
            return Err(CheckpointError::Mismatch(format!(
                "target {} vs {}",
                self.target, target
            )));
        }
        if self.seed != seed {
            return Err(CheckpointError::Mismatch(format!(
                "seed {} vs {}",
                self.seed, seed
            )));
        }
        if self.config != *config {
            return Err(CheckpointError::Mismatch("config differs".into()));
        }
        Ok(())
    }

    /// The checkpoint in its on-disk text form.
    pub fn render(&self) -> String {
        let c = &self.config;
        let s = &self.state;
        let mut out = String::with_capacity(8 * 1024);
        out.push_str(&format!("target {}\n", hex(self.target)));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!(
            "config {} {} {} {} {} {} {} {}\n",
            c.epochs,
            c.steps_per_epoch,
            c.warmup_epochs,
            hex(c.alpha_lr),
            hex(c.alpha_weight_decay),
            hex(c.lambda_lr),
            hex(c.tau_start),
            hex(c.tau_end),
        ));
        out.push_str(&format!("epoch {}\n", s.epoch));
        out.push_str(&format!("global_step {}\n", s.global_step));
        out.push_str(&format!("lambda {}\n", hex(s.lambda)));
        out.push_str(&format!(
            "rng {:016x} {:016x} {:016x} {:016x}\n",
            s.rng[0], s.rng[1], s.rng[2], s.rng[3]
        ));
        out.push_str(&format!("adam_t {}\n", s.adam.t));
        let row = |name: &str, i: usize, r: &[f64; NUM_OPS]| {
            let words: Vec<String> = r.iter().map(|&v| hex(v)).collect();
            format!("{name} {i} {}\n", words.join(" "))
        };
        for (i, r) in s.alpha.iter().enumerate() {
            out.push_str(&row("alpha", i, r));
        }
        for (i, r) in s.adam.m.iter().enumerate() {
            out.push_str(&row("adam_m", i, r));
        }
        for (i, r) in s.adam.v.iter().enumerate() {
            out.push_str(&row("adam_v", i, r));
        }
        for r in s.trace.records() {
            out.push_str(&format!(
                "trace {} {} {} {} {} {}\n",
                r.epoch,
                hex(r.sampled_metric),
                hex(r.argmax_metric),
                hex(r.lambda),
                hex(r.tau),
                hex(r.valid_loss),
            ));
        }
        // `out` so far is exactly the hashed body: stamp it, then prepend
        // the version line and close with `end`.
        let stamp = body_checksum(out.lines());
        format!("{CHECKPOINT_VERSION}\n{out}checksum {stamp:016x}\nend\n")
    }

    /// Parses the text form produced by [`render`](Self::render).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::UnsupportedVersion`] for a foreign first
    /// line, [`CheckpointError::ChecksumMismatch`] when the body does not
    /// hash to the stamped checksum, or [`CheckpointError::Malformed`] for
    /// missing/duplicated/unparsable records or a missing `checksum` /
    /// `end` terminator.
    pub fn parse(text: &str) -> Result<Self, CheckpointError> {
        let bad = |line: usize, reason: String| CheckpointError::Malformed { line, reason };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, v)) if v == CHECKPOINT_VERSION => {}
            Some((_, v)) => return Err(CheckpointError::UnsupportedVersion(v.to_string())),
            None => return Err(CheckpointError::UnsupportedVersion(String::new())),
        }
        let mut target = None;
        let mut seed = None;
        let mut config = None;
        let mut epoch = None;
        let mut global_step = None;
        let mut lambda = None;
        let mut rng = None;
        let mut adam_t = None;
        let mut alpha = vec![[0.0f64; NUM_OPS]; SEARCHABLE_LAYERS];
        let mut adam_m = vec![[0.0f64; NUM_OPS]; SEARCHABLE_LAYERS];
        let mut adam_v = vec![[0.0f64; NUM_OPS]; SEARCHABLE_LAYERS];
        let mut rows_seen = [0usize; 3];
        let mut trace = SearchTrace::new();
        let mut terminated = false;
        let mut stamped = None;
        let mut running = FNV_OFFSET;
        for (i, line) in lines {
            let ln = i + 1;
            let toks: Vec<&str> = line.split_whitespace().collect();
            let (&key, rest) = match toks.split_first() {
                Some(split) => split,
                None => continue,
            };
            if key != "checksum" && key != "end" {
                running = fnv1a(fnv1a(running, line.as_bytes()), b"\n");
            }
            let one = |rest: &[&str]| -> Result<String, CheckpointError> {
                match rest {
                    [tok] => Ok(tok.to_string()),
                    _ => Err(bad(ln, format!("{key} needs exactly one value"))),
                }
            };
            match key {
                "target" => target = Some(parse_hex_f64(&one(rest)?).map_err(|r| bad(ln, r))?),
                "seed" => seed = Some(parse_int(&one(rest)?, "seed").map_err(|r| bad(ln, r))?),
                "config" => {
                    if rest.len() != 8 {
                        return Err(bad(ln, "config needs 8 fields".into()));
                    }
                    config = Some(SearchConfig {
                        epochs: parse_int(rest[0], "epochs").map_err(|r| bad(ln, r))?,
                        steps_per_epoch: parse_int(rest[1], "steps_per_epoch")
                            .map_err(|r| bad(ln, r))?,
                        warmup_epochs: parse_int(rest[2], "warmup_epochs")
                            .map_err(|r| bad(ln, r))?,
                        alpha_lr: parse_hex_f64(rest[3]).map_err(|r| bad(ln, r))?,
                        alpha_weight_decay: parse_hex_f64(rest[4]).map_err(|r| bad(ln, r))?,
                        lambda_lr: parse_hex_f64(rest[5]).map_err(|r| bad(ln, r))?,
                        tau_start: parse_hex_f64(rest[6]).map_err(|r| bad(ln, r))?,
                        tau_end: parse_hex_f64(rest[7]).map_err(|r| bad(ln, r))?,
                    });
                }
                "epoch" => epoch = Some(parse_int(&one(rest)?, "epoch").map_err(|r| bad(ln, r))?),
                "global_step" => {
                    global_step =
                        Some(parse_int(&one(rest)?, "global_step").map_err(|r| bad(ln, r))?)
                }
                "lambda" => lambda = Some(parse_hex_f64(&one(rest)?).map_err(|r| bad(ln, r))?),
                "rng" => {
                    if rest.len() != 4 {
                        return Err(bad(ln, "rng needs 4 words".into()));
                    }
                    let mut words = [0u64; 4];
                    for (w, tok) in words.iter_mut().zip(rest) {
                        *w = parse_hex_u64(tok)
                            .map_err(|r| bad(ln, format!("bad rng word: {r}")))?;
                    }
                    rng = Some(words);
                }
                "adam_t" => {
                    adam_t = Some(parse_int(&one(rest)?, "adam_t").map_err(|r| bad(ln, r))?)
                }
                "alpha" => {
                    parse_row(rest, &mut alpha, "alpha").map_err(|r| bad(ln, r))?;
                    rows_seen[0] += 1;
                }
                "adam_m" => {
                    parse_row(rest, &mut adam_m, "adam_m").map_err(|r| bad(ln, r))?;
                    rows_seen[1] += 1;
                }
                "adam_v" => {
                    parse_row(rest, &mut adam_v, "adam_v").map_err(|r| bad(ln, r))?;
                    rows_seen[2] += 1;
                }
                "trace" => {
                    if rest.len() != 6 {
                        return Err(bad(ln, "trace needs 6 fields".into()));
                    }
                    trace.push(EpochRecord {
                        epoch: parse_int(rest[0], "trace epoch").map_err(|r| bad(ln, r))?,
                        sampled_metric: parse_hex_f64(rest[1]).map_err(|r| bad(ln, r))?,
                        argmax_metric: parse_hex_f64(rest[2]).map_err(|r| bad(ln, r))?,
                        lambda: parse_hex_f64(rest[3]).map_err(|r| bad(ln, r))?,
                        tau: parse_hex_f64(rest[4]).map_err(|r| bad(ln, r))?,
                        valid_loss: parse_hex_f64(rest[5]).map_err(|r| bad(ln, r))?,
                    });
                }
                "checksum" => {
                    let tok = one(rest)?;
                    stamped = Some(
                        parse_hex_u64(&tok).map_err(|r| bad(ln, format!("bad checksum: {r}")))?,
                    );
                }
                "end" => {
                    terminated = true;
                    break;
                }
                other => return Err(bad(ln, format!("unknown record {other:?}"))),
            }
        }
        if !terminated {
            return Err(bad(0, "missing `end` terminator (truncated file?)".into()));
        }
        match stamped {
            None => return Err(bad(0, "missing checksum record".into())),
            Some(stamped) if stamped != running => {
                return Err(CheckpointError::ChecksumMismatch {
                    stamped,
                    computed: running,
                })
            }
            Some(_) => {}
        }
        for (name, &n) in ["alpha", "adam_m", "adam_v"].iter().zip(&rows_seen) {
            if n != SEARCHABLE_LAYERS {
                return Err(bad(
                    0,
                    format!("{name} has {n} rows, expected {SEARCHABLE_LAYERS}"),
                ));
            }
        }
        let missing = |what: &str| bad(0, format!("missing {what} record"));
        Ok(Self {
            target: target.ok_or_else(|| missing("target"))?,
            seed: seed.ok_or_else(|| missing("seed"))?,
            config: config.ok_or_else(|| missing("config"))?,
            state: SearchState {
                epoch: epoch.ok_or_else(|| missing("epoch"))?,
                global_step: global_step.ok_or_else(|| missing("global_step"))?,
                alpha,
                lambda: lambda.ok_or_else(|| missing("lambda"))?,
                adam: AdamState {
                    t: adam_t.ok_or_else(|| missing("adam_t"))?,
                    m: adam_m,
                    v: adam_v,
                },
                rng: rng.ok_or_else(|| missing("rng"))?,
                trace,
            },
        })
    }

    /// Writes the checkpoint atomically and durably: the text goes to
    /// `<path>.tmp`, is fsynced, and is then renamed over `path`, so a
    /// crash mid-write leaves either the previous checkpoint or none —
    /// never a torn one. After the rename the parent directory is fsynced
    /// (best-effort) so the *rename itself* survives a power cut; without
    /// it, the directory entry can still point at the old inode after a
    /// crash even though the data blocks were durable.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.render().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            // Best-effort: some filesystems reject directory fsync, and a
            // missed one only weakens crash durability, not correctness.
            let _ = std::fs::File::open(dir).and_then(|d| d.sync_all());
        }
        Ok(())
    }

    /// Reads and parses a checkpoint file.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors and [`parse`](Self::parse) failures.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        Self::parse(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut state = SearchState::fresh(42);
        state.epoch = 2;
        state.global_step = 60;
        state.lambda = -0.062_5;
        state.alpha[3][5] = 1.5e-3;
        state.adam.t = 60;
        state.adam.m[0][1] = -3.25e-7;
        state.adam.v[20][6] = 9.0e-9;
        for epoch in 0..2 {
            state.trace.push(EpochRecord {
                epoch,
                sampled_metric: 21.75 + epoch as f64,
                argmax_metric: 22.5,
                lambda: 0.031_25,
                tau: 4.5,
                valid_loss: 2.125,
            });
        }
        Checkpoint::new(24.0, 42, SearchConfig::fast(), state)
    }

    #[test]
    fn render_parse_round_trip_is_exact() {
        let ck = sample();
        let back = Checkpoint::parse(&ck.render()).expect("round trip");
        assert_eq!(back, ck);
        assert_eq!(back.state.lambda.to_bits(), ck.state.lambda.to_bits());
        assert_eq!(back.state.rng, ck.state.rng);
    }

    #[test]
    fn round_trip_survives_awkward_floats() {
        let mut ck = sample();
        ck.state.lambda = f64::from_bits(0x3ff0_0000_0000_0001); // 1 + ulp
        ck.state.alpha[0][0] = -0.0;
        ck.state.alpha[0][1] = f64::MIN_POSITIVE / 2.0; // subnormal
        let back = Checkpoint::parse(&ck.render()).expect("round trip");
        assert_eq!(back.state.lambda.to_bits(), ck.state.lambda.to_bits());
        assert_eq!(back.state.alpha[0][0].to_bits(), (-0.0f64).to_bits());
        assert_eq!(
            back.state.alpha[0][1].to_bits(),
            ck.state.alpha[0][1].to_bits()
        );
    }

    #[test]
    fn save_load_round_trip_and_no_tmp_left_behind() {
        let dir = std::env::temp_dir().join(format!("lightnas-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("job0.ckpt");
        let ck = sample();
        ck.save(&path).expect("save");
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file must be renamed away"
        );
        assert_eq!(Checkpoint::load(&path).expect("load"), ck);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_version_is_rejected() {
        let err = Checkpoint::parse("lightnas-checkpoint v99\nend\n").unwrap_err();
        assert!(
            matches!(err, CheckpointError::UnsupportedVersion(_)),
            "{err}"
        );
    }

    #[test]
    fn truncated_file_is_rejected() {
        let full = sample().render();
        let cut = &full[..full.len() - 5]; // chop the `end` line
        let err = Checkpoint::parse(cut).unwrap_err();
        assert!(err.to_string().contains("end"), "{err}");
    }

    /// Rewrites the `checksum` line to match a (tampered) body, so tests
    /// can reach the record-level validation behind the checksum gate.
    fn restamp(text: &str) -> String {
        let body: Vec<&str> = text
            .lines()
            .skip(1)
            .filter(|l| !l.starts_with("checksum") && *l != "end")
            .collect();
        let stamp = body_checksum(body.iter().copied());
        let mut out = format!("{CHECKPOINT_VERSION}\n");
        for line in &body {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(&format!("checksum {stamp:016x}\nend\n"));
        out
    }

    /// Regression: a `lambda` record whose hex word was cut short (torn
    /// write, interrupted copy) must surface as the *typed* corrupt-
    /// checkpoint error — never panic, and never silently parse the prefix
    /// as a tiny subnormal (which `from_str_radix` would happily do).
    #[test]
    fn truncated_lambda_value_is_typed_corruption_not_a_panic() {
        let text = sample().render();
        let lambda_line = text
            .lines()
            .find(|l| l.starts_with("lambda "))
            .expect("lambda record");
        let value = lambda_line
            .strip_prefix("lambda ")
            .expect("prefix just matched");
        for keep in [0, 1, 8, 15] {
            let truncated_line = format!("lambda {}", &value[..keep]).trim_end().to_string();
            // Restamped so the checksum gate passes and the record-level
            // validation is what actually rejects the truncation.
            let tampered = restamp(&text.replace(lambda_line, &truncated_line));
            let err = Checkpoint::parse(&tampered).unwrap_err();
            match err {
                CheckpointError::Malformed { line, ref reason } => {
                    assert!(line > 0, "truncation points at its line: {err}");
                    assert!(
                        reason.contains("16 hex digits") || reason.contains("exactly one value"),
                        "reason must name the truncation: {reason}"
                    );
                }
                other => panic!("want Malformed, got {other}"),
            }
        }
        // Without restamping it is still typed: the single-pass parser
        // rejects the record before ever reaching the (now stale) checksum.
        let half = format!("lambda {}", &value[..8]);
        let err = Checkpoint::parse(&text.replace(lambda_line, &half)).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed { .. }), "{err}");
    }

    #[test]
    fn truncated_rng_word_is_typed_corruption() {
        let text = sample().render();
        let rng_line = text
            .lines()
            .find(|l| l.starts_with("rng "))
            .expect("rng record");
        let cut = rng_line[..rng_line.len() - 6].to_string();
        let err = Checkpoint::parse(&restamp(&text.replace(rng_line, &cut))).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Malformed { .. }),
            "truncated rng word must be typed: {err}"
        );
    }

    #[test]
    fn missing_and_malformed_records_are_rejected() {
        let no_seed = restamp(
            &sample()
                .render()
                .lines()
                .filter(|l| !l.starts_with("seed"))
                .collect::<Vec<_>>()
                .join("\n"),
        );
        assert!(Checkpoint::parse(&no_seed)
            .unwrap_err()
            .to_string()
            .contains("seed"));
        let garbled = restamp(&sample().render().replace("lambda ", "lambda zz"));
        assert!(Checkpoint::parse(&garbled).is_err());
    }

    #[test]
    fn restamped_identity_round_trips() {
        let ck = sample();
        let text = ck.render();
        assert_eq!(
            restamp(&text),
            text,
            "restamp of an untouched file is a no-op"
        );
    }

    #[test]
    fn flipped_bit_inside_a_valid_hex_word_is_caught() {
        let text = sample().render();
        // Flip one hex digit of the lambda value: still perfectly parsable
        // as an f64 bit pattern, so only the checksum can catch it.
        let lambda_line = text
            .lines()
            .find(|l| l.starts_with("lambda "))
            .expect("lambda record");
        let value = lambda_line
            .strip_prefix("lambda ")
            .expect("prefix just matched");
        let flipped_digit = if value.starts_with('b') { 'a' } else { 'b' };
        let tampered_line = format!("lambda {flipped_digit}{}", &value[1..]);
        let tampered = text.replace(lambda_line, &tampered_line);
        assert!(
            Checkpoint::parse(&restamp(&tampered)).is_ok(),
            "the tampered body must still parse once restamped — otherwise \
             this test is not exercising the checksum"
        );
        let err = Checkpoint::parse(&tampered).unwrap_err();
        assert!(
            matches!(err, CheckpointError::ChecksumMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn missing_checksum_line_is_rejected() {
        let stripped: String = sample()
            .render()
            .lines()
            .filter(|l| !l.starts_with("checksum"))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = Checkpoint::parse(&stripped).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn verify_matches_pins_target_seed_and_config() {
        let ck = sample();
        assert!(ck.verify_matches(24.0, 42, &SearchConfig::fast()).is_ok());
        assert!(ck
            .verify_matches(24.000001, 42, &SearchConfig::fast())
            .is_err());
        assert!(ck.verify_matches(24.0, 43, &SearchConfig::fast()).is_err());
        assert!(ck.verify_matches(24.0, 42, &SearchConfig::paper()).is_err());
    }
}
