//! End-to-end properties of the runtime: worker-count-independent
//! determinism, cache transparency, and kill/resume bit-identity.

use std::path::PathBuf;
use std::sync::OnceLock;

use lightnas::{LightNas, SearchConfig};
use lightnas_eval::AccuracyOracle;
use lightnas_hw::Xavier;
use lightnas_predictor::{Metric, MetricDataset, MlpPredictor, TrainConfig};
use lightnas_runtime::{run_sweep, JobStatus, SearchJob, SweepOptions, Telemetry};
use lightnas_space::SearchSpace;

struct Fixture {
    space: SearchSpace,
    oracle: AccuracyOracle,
    predictor: MlpPredictor,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let space = SearchSpace::standard();
        let device = Xavier::maxn();
        let oracle = AccuracyOracle::imagenet();
        let data = MetricDataset::sample_diverse(&device, &space, Metric::LatencyMs, 1200, 7);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 128,
            lr: 2e-3,
            seed: 0,
        };
        let predictor = MlpPredictor::train(&data, &cfg);
        Fixture {
            space,
            oracle,
            predictor,
        }
    })
}

/// A schedule small enough for CI but long enough to interrupt mid-way.
fn tiny_config() -> SearchConfig {
    SearchConfig {
        epochs: 10,
        steps_per_epoch: 12,
        warmup_epochs: 2,
        ..SearchConfig::fast()
    }
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lightnas-runtime-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `(architecture spec, λ bits)` per job — the byte-level fingerprint two
/// sweeps must share to count as identical.
fn fingerprints(report: &lightnas_runtime::SweepReport) -> Vec<(String, u64)> {
    report
        .statuses
        .iter()
        .map(|s| {
            let r = s.completed().expect("sweep must complete");
            (r.outcome.architecture.to_spec(), r.outcome.lambda.to_bits())
        })
        .collect()
}

#[test]
fn sweep_matches_serial_engine_under_any_worker_count() {
    let f = fixture();
    let config = tiny_config();
    let jobs = SearchJob::grid(&[19.0, 25.0], &[0, 3], config);

    // Ground truth: the plain engine, no scheduler, no cache.
    let engine = LightNas::new(&f.space, &f.oracle, &f.predictor, config);
    let expected: Vec<(String, u64)> = jobs
        .iter()
        .map(|j| {
            let o = engine.search(j.target, j.seed);
            (o.architecture.to_spec(), o.lambda.to_bits())
        })
        .collect();

    for workers in [1, 4] {
        let report = run_sweep(
            &f.oracle,
            &f.predictor,
            &jobs,
            &SweepOptions::with_workers(workers),
            None,
        );
        assert!(report.all_completed());
        assert_eq!(
            fingerprints(&report),
            expected,
            "{workers}-worker sweep must be byte-identical to serial searches"
        );
        // The shared cache must actually absorb repeat queries: every epoch
        // re-predicts the argmax architecture, which rarely changes.
        let stats = report.cache;
        assert!(stats.hits > stats.misses, "cache barely hit: {stats:?}");
    }
}

#[test]
fn sweep_with_kernel_threads_is_byte_identical_to_serial() {
    // The in-job tensor-kernel parallelism knob must change throughput only:
    // a sweep at 4 kernel threads lands on the same architectures and the
    // same λ bits as the plain serial engine.
    let f = fixture();
    let config = tiny_config();
    let jobs = SearchJob::grid(&[19.0, 25.0], &[0, 3], config);

    let engine = LightNas::new(&f.space, &f.oracle, &f.predictor, config);
    let expected: Vec<(String, u64)> = jobs
        .iter()
        .map(|j| {
            let o = engine.search(j.target, j.seed);
            (o.architecture.to_spec(), o.lambda.to_bits())
        })
        .collect();

    let before = lightnas_tensor::kernels::num_threads();
    let report = run_sweep(
        &f.oracle,
        &f.predictor,
        &jobs,
        &SweepOptions {
            workers: 2,
            kernel_threads: 4,
            ..SweepOptions::default()
        },
        None,
    );
    assert_eq!(lightnas_tensor::kernels::num_threads(), 4);
    lightnas_tensor::set_num_threads(before);
    assert!(report.all_completed());
    assert_eq!(
        fingerprints(&report),
        expected,
        "kernel-parallel sweep must be byte-identical to serial searches"
    );
}

#[test]
fn killed_sweep_resumes_to_identical_results() {
    let f = fixture();
    let config = tiny_config();
    let jobs = SearchJob::grid(&[21.0], &[1, 4, 8], config);
    let total_epochs: usize = jobs.len() * config.epochs;

    let uninterrupted = run_sweep(
        &f.oracle,
        &f.predictor,
        &jobs,
        &SweepOptions::serial(),
        None,
    );
    let expected = fingerprints(&uninterrupted);

    let dir = test_dir("resume");
    let killed = SweepOptions {
        workers: 2,
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 0,
        epoch_budget: Some(total_epochs / 2),
        ..SweepOptions::default()
    };
    let first = run_sweep(&f.oracle, &f.predictor, &jobs, &killed, None);
    assert!(
        !first.all_completed(),
        "the budget must interrupt the sweep"
    );
    let mut saw_checkpoint = false;
    for s in &first.statuses {
        if let JobStatus::Interrupted {
            epoch, checkpoint, ..
        } = s
        {
            assert!(*epoch < config.epochs);
            let path = checkpoint.as_ref().expect("dir configured, so a path");
            assert!(
                path.exists(),
                "interrupted job must leave {}",
                path.display()
            );
            saw_checkpoint = true;
        }
    }
    assert!(saw_checkpoint);

    // Same invocation again, unlimited: resumes the survivors.
    let second = run_sweep(
        &f.oracle,
        &f.predictor,
        &jobs,
        &SweepOptions {
            epoch_budget: None,
            ..killed
        },
        None,
    );
    assert!(second.all_completed());
    assert_eq!(
        fingerprints(&second),
        expected,
        "resumed results must be byte-identical to the uninterrupted run"
    );
    let resumed = second
        .statuses
        .iter()
        .filter(|s| s.completed().is_some_and(|r| r.resumed_from.is_some()))
        .count();
    assert!(
        resumed > 0,
        "at least one job must have come back from a checkpoint"
    );
    // Completed jobs clean up after themselves.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .map(|rd| rd.filter_map(Result::ok).map(|e| e.path()).collect())
        .unwrap_or_default();
    assert!(
        leftovers.is_empty(),
        "spent checkpoints must be removed: {leftovers:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn periodic_checkpoints_appear_while_running() {
    let f = fixture();
    let config = tiny_config();
    let jobs = vec![SearchJob::new(23.0, 2, config)];
    let dir = test_dir("periodic");
    // Budget stops the job right after several periodic checkpoints.
    let opts = SweepOptions {
        workers: 1,
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 2,
        epoch_budget: Some(7),
        ..SweepOptions::default()
    };
    let report = run_sweep(&f.oracle, &f.predictor, &jobs, &opts, None);
    assert!(!report.all_completed());
    let ck = lightnas_runtime::Checkpoint::load(&dir.join("job000.ckpt")).expect("checkpoint");
    assert_eq!(ck.seed, 2);
    assert_eq!(
        ck.state.epoch, 7,
        "budget of 7 epochs leaves a 7-epoch state"
    );
    assert_eq!(ck.state.trace.records().len(), 7);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn telemetry_narrates_a_sweep_as_valid_jsonl() {
    let f = fixture();
    let config = tiny_config();
    let jobs = SearchJob::grid(&[20.0], &[0, 1], config);
    let dir = test_dir("telemetry");
    let telemetry = Telemetry::create(&dir, "itest").expect("sink");
    let report = run_sweep(
        &f.oracle,
        &f.predictor,
        &jobs,
        &SweepOptions::with_workers(2),
        Some(&telemetry),
    );
    assert!(report.all_completed());
    let text = std::fs::read_to_string(telemetry.path()).expect("jsonl");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() >= 2 + 2 * (2 + config.epochs),
        "events missing:\n{text}"
    );
    for line in &lines {
        assert!(
            line.starts_with("{\"event\":\"") && line.ends_with('}'),
            "bad line {line}"
        );
        assert!(line.contains("\"run\":\"itest\""));
    }
    let count = |ev: &str| {
        lines
            .iter()
            .filter(|l| l.contains(&format!("\"event\":\"{ev}\"")))
            .count()
    };
    assert_eq!(count("run_start"), 1);
    assert_eq!(count("job_start"), 2);
    assert_eq!(count("epoch"), 2 * config.epochs);
    assert_eq!(count("job_done"), 2);
    assert_eq!(count("run_end"), 1);
    // The job_done events carry parseable architecture specs.
    for line in lines
        .iter()
        .filter(|l| l.contains("\"event\":\"job_done\""))
    {
        let spec = line
            .split("\"arch\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("arch field");
        assert!(
            lightnas_space::Architecture::from_spec(spec).is_ok(),
            "bad spec {spec}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The optional `device` tag must appear on every run- and job-lifecycle
/// line when set, and be purely additive: stripping it from a tagged run's
/// telemetry must reproduce the untagged run's lines exactly (compared as a
/// sorted multiset with wall-clock fields masked, since worker interleaving
/// and timings are not deterministic across runs).
#[test]
fn device_tag_is_present_when_set_and_purely_additive() {
    let f = fixture();
    let jobs = SearchJob::grid(&[20.0], &[0, 1], tiny_config());
    let run = |device: Option<&str>, dir_name: &str| {
        let dir = test_dir(dir_name);
        let telemetry = Telemetry::create(&dir, "dev").expect("sink");
        let opts = SweepOptions {
            device: device.map(str::to_string),
            ..SweepOptions::with_workers(2)
        };
        let report = run_sweep(&f.oracle, &f.predictor, &jobs, &opts, Some(&telemetry));
        assert!(report.all_completed());
        let text = std::fs::read_to_string(telemetry.path()).expect("jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        text
    };
    // Masks the wall-clock-dependent fields so two runs compare equal.
    fn mask_timing(line: &str) -> String {
        let mut out = String::with_capacity(line.len());
        for part in line.split(',') {
            if !out.is_empty() {
                out.push(',');
            }
            match part.split_once(':') {
                Some((key, _)) if key.contains("wall_ms") => {
                    out.push_str(key);
                    out.push_str(":#");
                    if part.ends_with('}') {
                        out.push('}');
                    }
                }
                _ => out.push_str(part),
            }
        }
        out
    }
    let plain = run(None, "device-tag-none");
    let tagged = run(Some("edge-tpu"), "device-tag-some");
    assert!(
        !plain.contains("\"device\""),
        "defaulted sweep must not emit a device field"
    );
    for line in tagged.lines() {
        assert!(
            line.contains("\"device\":\"edge-tpu\""),
            "untagged line in device sweep: {line}"
        );
    }
    let normalize = |text: &str, strip_device: bool| -> Vec<String> {
        let mut lines: Vec<String> = text
            .lines()
            .map(|l| {
                let l = if strip_device {
                    l.replace(",\"device\":\"edge-tpu\"", "")
                } else {
                    l.to_string()
                };
                mask_timing(&l)
            })
            .collect();
        lines.sort();
        lines
    };
    assert_eq!(
        normalize(&tagged, true),
        normalize(&plain, false),
        "device tag must be additive: stripping it must restore the untagged lines"
    );
}

/// Serving-style coalescing against the sweep predictor: a batch with
/// repeated architectures must hit the shared cache for every repeat, go
/// downstream once per distinct key, and stay bit-identical to the scalar
/// query path.
#[test]
fn cached_batch_path_coalesces_and_matches_scalar_queries() {
    use lightnas_predictor::{BatchPredictor, CachedPredictor, Predictor};
    let f = fixture();
    let cached = CachedPredictor::new(&f.predictor);
    // 16 rows over 6 distinct architectures (rows 6.. repeat the first six).
    let uniques: Vec<Vec<f32>> = (0..6)
        .map(|s| lightnas_space::Architecture::random(&f.space, 100 + s).encode())
        .collect();
    let batch: Vec<Vec<f32>> = (0..16).map(|i| uniques[i % 6].clone()).collect();
    let got = cached.predict_encodings(&batch);
    for (enc, got) in batch.iter().zip(&got) {
        assert_eq!(
            got.to_bits(),
            f.predictor.predict_encoding(enc).to_bits(),
            "cached batch diverged from the scalar path"
        );
    }
    let stats = cached.stats();
    assert_eq!(stats.misses, 6, "one downstream call per distinct key");
    assert_eq!(stats.hits, 10, "in-batch repeats served from the cache");
    // A follow-up batch is answered without touching the inner predictor,
    // and scalar queries agree with what the batch cached.
    let again = cached.predict_encodings(&batch);
    assert_eq!(again, got);
    assert_eq!(cached.stats().misses, 6);
    assert_eq!(cached.stats().hits, 26);
    for (enc, want) in batch.iter().zip(&got) {
        assert_eq!(cached.predict_encoding(enc).to_bits(), want.to_bits());
    }
    let total = cached.stats();
    assert!(
        total.hit_rate() > 0.85,
        "hit rate regressed: {:.3}",
        total.hit_rate()
    );
}

// ---------------------------------------------------------------------------
// Kernel-determinism goldens.
//
// The two fixtures under `tests/golden/` were generated by
// `regenerate_kernel_goldens` (below) against the *reference* compute
// kernels, before the blocked/parallel rewrite of `lightnas-tensor`
// landed. They pin the exact bits a search trajectory produces, so any
// future kernel change that reorders floating-point accumulation — and
// would therefore silently break bit-identical checkpoint resume — fails
// here instead of in a weeks-old sweep.
// ---------------------------------------------------------------------------

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// The run the stepper golden captures: the shared MLP predictor (matmul
/// training + per-step gradient queries) driving a full tiny schedule.
fn golden_stepper_checkpoint() -> lightnas_runtime::Checkpoint {
    let f = fixture();
    let config = tiny_config();
    let mut stepper = lightnas::SearchStepper::new(&f.oracle, &f.predictor, config, 22.0, 11);
    stepper.run();
    lightnas_runtime::Checkpoint::new(22.0, 11, config, stepper.state())
}

/// FNV-1a 64 fingerprint of a real conv-kernel training trajectory: the
/// micro supernet (im2col conv + depthwise conv + GEMM head, SGD) searched
/// end-to-end on the shapes dataset.
fn golden_micro_fingerprint() -> String {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let fold = |h: u64, bytes: &[u8]| {
        bytes
            .iter()
            .fold(h, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
    };
    let out = lightnas::micro::bilevel_search(2, 8, 8, 0);
    let mut h = FNV_OFFSET;
    for row in &out.alpha {
        for v in row {
            h = fold(h, &v.to_bits().to_le_bytes());
        }
    }
    for &c in &out.chosen {
        h = fold(h, &(c as u64).to_le_bytes());
    }
    h = fold(h, &out.valid_accuracy.to_bits().to_le_bytes());
    for v in &out.valid_losses {
        h = fold(h, &v.to_bits().to_le_bytes());
    }
    format!("{h:016x}")
}

#[test]
fn stepper_over_current_kernels_matches_golden_checkpoint() {
    let golden = std::fs::read_to_string(golden_path("stepper.ckpt"))
        .expect("golden stepper checkpoint (run `regenerate_kernel_goldens` if missing)");
    let current = golden_stepper_checkpoint().render();
    assert_eq!(
        current, golden,
        "SearchStepper trajectory drifted from the pre-change golden \
         checkpoint: the tensor kernels are no longer bit-identical"
    );
}

#[test]
fn micro_supernet_training_matches_golden_fingerprint() {
    let golden = std::fs::read_to_string(golden_path("micro.fnv"))
        .expect("golden micro fingerprint (run `regenerate_kernel_goldens` if missing)");
    let current = golden_micro_fingerprint();
    assert_eq!(
        current,
        golden.trim(),
        "micro-supernet (conv kernel) trajectory drifted from the golden fingerprint"
    );
}

#[test]
#[ignore = "rewrites the golden kernel fixtures; only run when a kernel-bit change is intended"]
fn regenerate_kernel_goldens() {
    let dir = golden_path("");
    std::fs::create_dir_all(&dir).expect("golden dir");
    std::fs::write(
        golden_path("stepper.ckpt"),
        golden_stepper_checkpoint().render(),
    )
    .expect("write stepper golden");
    std::fs::write(
        golden_path("micro.fnv"),
        format!("{}\n", golden_micro_fingerprint()),
    )
    .expect("write micro golden");
}
