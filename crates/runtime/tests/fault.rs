//! Fault-injection integration tests: the supervised sweep must turn
//! injected panics, checkpoint corruption, and predictor poison into
//! telemetry + retries — and still produce results byte-identical to a
//! fault-free run.

use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

use lightnas::SearchConfig;
use lightnas_eval::AccuracyOracle;
use lightnas_hw::Xavier;
use lightnas_predictor::{Metric, MetricDataset, MlpPredictor, TrainConfig};
use lightnas_runtime::{
    apply_corruption, run_sweep, run_sweep_with_faults, Checkpoint, CheckpointError,
    CheckpointStore, CorruptionMode, Fault, FaultKind, FaultPlan, JobStatus, SearchJob,
    SweepOptions, Telemetry,
};
use lightnas_space::SearchSpace;

struct Fixture {
    oracle: AccuracyOracle,
    predictor: MlpPredictor,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let space = SearchSpace::standard();
        let device = Xavier::maxn();
        let oracle = AccuracyOracle::imagenet();
        let data = MetricDataset::sample_diverse(&device, &space, Metric::LatencyMs, 1200, 7);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 128,
            lr: 2e-3,
            seed: 0,
        };
        let predictor = MlpPredictor::train(&data, &cfg);
        Fixture { oracle, predictor }
    })
}

fn tiny_config() -> SearchConfig {
    SearchConfig {
        epochs: 10,
        steps_per_epoch: 12,
        warmup_epochs: 2,
        ..SearchConfig::fast()
    }
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lightnas-fault-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fingerprints(report: &lightnas_runtime::SweepReport) -> Vec<(String, u64)> {
    report
        .statuses
        .iter()
        .map(|s| {
            let r = s.completed().expect("sweep must complete");
            (r.outcome.architecture.to_spec(), r.outcome.lambda.to_bits())
        })
        .collect()
}

/// Fast-retry options with checkpointing, for fault runs.
fn supervised_opts(dir: PathBuf) -> SweepOptions {
    SweepOptions {
        workers: 2,
        checkpoint_dir: Some(dir),
        checkpoint_every: 1,
        retry_backoff: Duration::from_millis(1),
        ..SweepOptions::default()
    }
}

fn event_count(text: &str, event: &str) -> usize {
    text.lines()
        .filter(|l| l.contains(&format!("\"event\":\"{event}\"")))
        .count()
}

#[test]
fn panicking_job_is_retried_to_byte_identical_results() {
    let f = fixture();
    let jobs = SearchJob::grid(&[20.0, 26.0], &[0, 5], tiny_config());
    let expected = fingerprints(&run_sweep(
        &f.oracle,
        &f.predictor,
        &jobs,
        &SweepOptions::serial(),
        None,
    ));

    let dir = test_dir("panic-retry");
    let telem_dir = test_dir("panic-retry-telemetry");
    let telemetry = Telemetry::create(&telem_dir, "panic").expect("sink");
    let faults = FaultPlan::new(vec![
        Fault {
            job: 1,
            kind: FaultKind::Panic { epoch: 4 },
        },
        Fault {
            job: 2,
            kind: FaultKind::Panic { epoch: 7 },
        },
    ]);
    let report = run_sweep_with_faults(
        &f.oracle,
        &f.predictor,
        &jobs,
        &supervised_opts(dir.clone()),
        Some(&telemetry),
        &faults,
    );
    assert!(
        report.all_completed(),
        "panics must be recovered, not fatal"
    );
    assert_eq!(
        fingerprints(&report),
        expected,
        "recovered sweep must be byte-identical to the fault-free run"
    );
    assert_eq!(faults.fired(), 2, "both scheduled panics must fire");
    // Retried jobs resume from the epoch-boundary checkpoint, never from
    // 0 — the panic at epoch N fires after the save at N, so nothing from
    // before the crash is re-run.
    let resumed: Vec<usize> = report
        .statuses
        .iter()
        .filter_map(|s| s.completed().and_then(|r| r.resumed_from))
        .collect();
    assert_eq!(resumed, vec![4, 7], "resume from the last good epoch");
    let text = std::fs::read_to_string(telemetry.path()).expect("jsonl");
    assert_eq!(event_count(&text, "job_failed"), 2);
    assert_eq!(event_count(&text, "job_retried"), 2);
    assert!(text.contains("injected fault: panic at epoch 4"));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&telem_dir);
}

#[test]
fn corrupted_checkpoint_is_quarantined_with_fallback_to_previous_generation() {
    let f = fixture();
    let jobs = vec![SearchJob::new(22.0, 3, tiny_config())];
    let expected = fingerprints(&run_sweep(
        &f.oracle,
        &f.predictor,
        &jobs,
        &SweepOptions::serial(),
        None,
    ));

    let dir = test_dir("quarantine");
    let telem_dir = test_dir("quarantine-telemetry");
    let telemetry = Telemetry::create(&telem_dir, "quarantine").expect("sink");
    // Corrupt the save at epoch 5, crash at the next panic check: recovery
    // must quarantine the torn file and fall back to the epoch-4 snapshot.
    let faults = FaultPlan::new(vec![
        Fault {
            job: 0,
            kind: FaultKind::CorruptCheckpoint {
                after_epoch: 5,
                mode: CorruptionMode::Truncate,
            },
        },
        Fault {
            job: 0,
            kind: FaultKind::Panic { epoch: 5 },
        },
    ]);
    let report = run_sweep_with_faults(
        &f.oracle,
        &f.predictor,
        &jobs,
        &supervised_opts(dir.clone()),
        Some(&telemetry),
        &faults,
    );
    assert!(report.all_completed());
    assert_eq!(fingerprints(&report), expected);
    assert_eq!(
        report.statuses[0].completed().unwrap().resumed_from,
        Some(4),
        "must fall back one generation, not restart from scratch"
    );
    let corrupt = dir.join("job000.ckpt.corrupt");
    assert!(
        corrupt.exists(),
        "the damaged file must be kept as evidence at {}",
        corrupt.display()
    );
    let text = std::fs::read_to_string(telemetry.path()).expect("jsonl");
    assert_eq!(event_count(&text, "checkpoint_quarantined"), 1);
    assert!(text.contains("job000.ckpt.corrupt"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&telem_dir);
}

#[test]
fn injected_predictor_nan_degrades_one_call_and_changes_nothing() {
    let f = fixture();
    let jobs = SearchJob::grid(&[24.0], &[1, 6], tiny_config());
    let expected = fingerprints(&run_sweep(
        &f.oracle,
        &f.predictor,
        &jobs,
        &SweepOptions::serial(),
        None,
    ));

    let telem_dir = test_dir("nan-telemetry");
    let telemetry = Telemetry::create(&telem_dir, "nan").expect("sink");
    let faults = FaultPlan::new(vec![
        Fault {
            job: 0,
            kind: FaultKind::PredictorNan { call: 3 },
        },
        Fault {
            job: 1,
            kind: FaultKind::PredictorNan { call: 40 },
        },
    ]);
    let report = run_sweep_with_faults(
        &f.oracle,
        &f.predictor,
        &jobs,
        &SweepOptions::with_workers(2),
        Some(&telemetry),
        &faults,
    );
    assert!(report.all_completed());
    assert_eq!(
        fingerprints(&report),
        expected,
        "a degraded-then-recovered query must not perturb the trajectory"
    );
    assert_eq!(faults.fired(), 2);
    let text = std::fs::read_to_string(telemetry.path()).expect("jsonl");
    assert_eq!(event_count(&text, "predictor_degraded"), 2);
    assert!(text.contains("\"recovered\":true"), "{text}");
    assert_eq!(
        event_count(&text, "job_failed"),
        0,
        "a recovered NaN is not a job failure"
    );
    let _ = std::fs::remove_dir_all(&telem_dir);
}

#[test]
fn a_job_that_keeps_crashing_fails_alone() {
    let f = fixture();
    let jobs = SearchJob::grid(&[21.0], &[0, 2, 9], tiny_config());
    // Job 1 panics on every attempt (initial + 2 retries = 3 one-shot
    // faults at successive panic checks, one per attempt).
    let faults = FaultPlan::new(vec![
        Fault {
            job: 1,
            kind: FaultKind::Panic { epoch: 2 },
        },
        Fault {
            job: 1,
            kind: FaultKind::Panic { epoch: 2 },
        },
        Fault {
            job: 1,
            kind: FaultKind::Panic { epoch: 2 },
        },
    ]);
    let telem_dir = test_dir("exhausted-telemetry");
    let telemetry = Telemetry::create(&telem_dir, "exhausted").expect("sink");
    let opts = SweepOptions {
        workers: 2,
        retry_backoff: Duration::from_millis(1),
        ..SweepOptions::default()
    };
    let report = run_sweep_with_faults(
        &f.oracle,
        &f.predictor,
        &jobs,
        &opts,
        Some(&telemetry),
        &faults,
    );
    assert!(!report.all_completed());
    match &report.statuses[1] {
        JobStatus::Failed {
            index,
            attempts,
            error,
        } => {
            assert_eq!(*index, 1);
            assert_eq!(*attempts, 3, "initial attempt + max_retries");
            assert!(error.contains("injected fault"), "{error}");
        }
        other => panic!("job 1 should have failed, got {other:?}"),
    }
    for i in [0, 2] {
        assert!(
            report.statuses[i].completed().is_some(),
            "job {i} must be unaffected by its neighbour's crash loop"
        );
    }
    let text = std::fs::read_to_string(telemetry.path()).expect("jsonl");
    assert_eq!(event_count(&text, "job_failed"), 3, "one per attempt");
    assert_eq!(event_count(&text, "job_retried"), 2, "max_retries");
    assert!(text.contains("\"failed\":1"), "run_end counts the failure");
    let _ = std::fs::remove_dir_all(&telem_dir);
}

/// Satellite 4: every corruption mode maps to the right `CheckpointError`
/// variant and is quarantined (not deleted) by recovery.
#[test]
fn corruption_matrix_yields_typed_errors_and_quarantine() {
    let f = fixture();
    // Materialize a real mid-search checkpoint to corrupt.
    let dir = test_dir("matrix");
    let job = SearchJob::new(23.0, 2, tiny_config());
    let opts = SweepOptions {
        workers: 1,
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 2,
        epoch_budget: Some(5),
        ..SweepOptions::default()
    };
    let report = run_sweep(&f.oracle, &f.predictor, &[job], &opts, None);
    assert!(!report.all_completed(), "budget must leave a checkpoint");
    let pristine = std::fs::read_to_string(dir.join("job000.ckpt")).expect("checkpoint text");

    type ErrMatcher = fn(&CheckpointError) -> bool;
    let cases: [(CorruptionMode, ErrMatcher); 3] = [
        (CorruptionMode::Truncate, |e| {
            matches!(e, CheckpointError::Malformed { .. })
        }),
        (CorruptionMode::FlipBits, |e| {
            matches!(e, CheckpointError::ChecksumMismatch { .. })
        }),
        (CorruptionMode::WrongVersion, |e| {
            matches!(e, CheckpointError::UnsupportedVersion(_))
        }),
    ];
    for (mode, matches_expected) in cases {
        let case_dir = test_dir(&format!("matrix-{mode:?}"));
        std::fs::create_dir_all(&case_dir).expect("case dir");
        let path = case_dir.join("job000.ckpt");
        std::fs::write(&path, &pristine).expect("seed checkpoint");
        apply_corruption(&path, mode);
        let err = Checkpoint::load(&path).expect_err("corruption must be detected");
        assert!(
            matches_expected(&err),
            "{mode:?} should map to its own variant, got: {err}"
        );
        // Recovery quarantines rather than deletes, and reports the error.
        let store = CheckpointStore::new(&case_dir, 0);
        let mut seen = Vec::new();
        let recovered = store.recover(job.target, job.seed, &job.config, |jail, e| {
            seen.push((jail.to_path_buf(), e.to_string()));
        });
        assert!(recovered.is_none(), "{mode:?}: nothing valid to recover");
        assert_eq!(seen.len(), 1);
        assert!(seen[0].0.ends_with("job000.ckpt.corrupt"));
        assert!(seen[0].0.exists(), "quarantined file must survive");
        assert!(!path.exists(), "the bad file must be moved out of the way");
        let _ = std::fs::remove_dir_all(&case_dir);
    }

    // Identity mismatch: a checkpoint from a *different job* under this
    // job's name is refused and quarantined the same way — both the
    // current and the previous generation.
    let store = CheckpointStore::new(&dir, 0);
    let mut seen = Vec::new();
    let recovered = store.recover(job.target, 999, &job.config, |_, e| {
        seen.push(e.to_string());
    });
    assert!(recovered.is_none());
    assert_eq!(seen.len(), 2, "current and previous generation");
    for e in &seen {
        assert!(e.contains("different job"), "{e}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Retention is bounded — saves rotate within `keep` generations — and
/// `prune` removes stale generations while **never** touching quarantined
/// `*.corrupt` evidence.
#[test]
fn prune_bounds_generations_and_never_touches_quarantine() {
    let f = fixture();
    let dir = test_dir("prune");
    let job = SearchJob::new(22.0, 3, tiny_config());
    let opts = SweepOptions {
        workers: 1,
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 2,
        checkpoint_keep: 3,
        epoch_budget: Some(5),
        ..SweepOptions::default()
    };
    let report = run_sweep(&f.oracle, &f.predictor, &[job], &opts, None);
    assert!(!report.all_completed(), "budget must leave checkpoints");
    let ck = Checkpoint::load(&dir.join("job000.ckpt")).expect("loadable checkpoint");

    // Drive the store well past its retention: generations stay bounded.
    let store = CheckpointStore::with_keep(&dir, 0, 3);
    for _ in 0..6 {
        store.save(&ck).expect("save");
    }
    for suffix in ["", ".prev", ".prev2"] {
        assert!(
            dir.join(format!("job000.ckpt{suffix}")).exists(),
            "generation {suffix:?} must exist"
        );
    }
    assert!(
        !dir.join("job000.ckpt.prev3").exists(),
        "rotation must stay within keep=3"
    );

    // Corrupt the current generation: recovery quarantines it and falls
    // back to `.prev`.
    apply_corruption(store.current(), CorruptionMode::Truncate);
    let mut jails = Vec::new();
    let recovered = store.recover(job.target, job.seed, &job.config, |jail, _| {
        jails.push(jail.to_path_buf());
    });
    assert!(recovered.is_some(), "previous generation is still healthy");
    assert_eq!(jails.len(), 1);
    assert!(jails[0].ends_with("job000.ckpt.corrupt"));

    // prune(1) sweeps every older generation — but quarantined evidence
    // is never inventory.
    let removed = store.prune(1);
    assert_eq!(removed, 2, ".prev and .prev2 go; .corrupt stays");
    assert!(!store.previous().exists());
    assert!(!dir.join("job000.ckpt.prev2").exists());
    assert!(
        jails[0].exists(),
        "pruning must never delete quarantined evidence"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_plan_drives_a_full_recovery_story() {
    let f = fixture();
    let config = tiny_config();
    let jobs = SearchJob::grid(&[19.0, 24.0, 29.0], &[0, 1, 2], config);
    let expected = fingerprints(&run_sweep(
        &f.oracle,
        &f.predictor,
        &jobs,
        &SweepOptions::serial(),
        None,
    ));
    let dir = test_dir("seeded");
    let faults = FaultPlan::seeded(42, jobs.len(), config.epochs);
    let report = run_sweep_with_faults(
        &f.oracle,
        &f.predictor,
        &jobs,
        &supervised_opts(dir.clone()),
        None,
        &faults,
    );
    assert!(report.all_completed());
    assert_eq!(fingerprints(&report), expected);
    assert_eq!(
        faults.fired(),
        faults.faults().len(),
        "every scheduled fault must actually fire"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
