//! Property-based invariants of the circuit breaker (proptest).
//!
//! The three contract clauses a serving layer leans on, hammered with
//! arbitrary operation sequences on arbitrary (monotone) timelines:
//!
//! * the breaker API never deadlocks or panics, in any state;
//! * an Open breaker *never* grants the primary before its cool-down;
//! * after `open_for` elapses, the very next acquire always re-probes.

use std::time::Duration;

use proptest::prelude::*;

use lightnas_serve::{BreakerConfig, BreakerState, CircuitBreaker};

fn cfg() -> BreakerConfig {
    BreakerConfig {
        trip_after: 3,
        open_for: Duration::from_millis(40),
        trial_successes: 2,
    }
}

/// Drives `ops` (0 = try_acquire, 1 = success, 2 = failure, 3 = state read)
/// over a monotone clock built from `dts`, checking the open-means-no-
/// primary invariant before every step.
fn drive(breaker: &CircuitBreaker, ops: &[u8], dts: &[u64]) -> Result<Duration, TestCaseError> {
    let mut now = Duration::ZERO;
    for (op, dt) in ops.iter().zip(dts) {
        now += Duration::from_millis(*dt);
        if breaker.state(now) == BreakerState::Open {
            // `state` just settled any due lazy transition, so Open here
            // means the cool-down is genuinely unexpired.
            prop_assert!(
                !breaker.try_acquire(now),
                "an Open breaker must never grant the primary"
            );
        }
        match op % 4 {
            0 => {
                breaker.try_acquire(now);
            }
            1 => breaker.record_success(now),
            2 => breaker.record_failure(now),
            _ => {
                breaker.state(now);
            }
        }
    }
    Ok(now)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn never_deadlocks_and_never_serves_from_open(
        ops in proptest::collection::vec(0u8..4, 64),
        dts in proptest::collection::vec(0u64..25, 64),
    ) {
        let breaker = CircuitBreaker::new(cfg());
        // Returning at all is the no-deadlock claim; the open-means-no-
        // primary invariant is checked at every step inside.
        drive(&breaker, &ops, &dts)?;
        breaker.take_transitions();
    }

    #[test]
    fn always_reprobes_after_open_for(
        ops in proptest::collection::vec(0u8..4, 48),
        dts in proptest::collection::vec(0u64..25, 48),
        extra in 0u64..100,
    ) {
        let breaker = CircuitBreaker::new(cfg());
        let now = drive(&breaker, &ops, &dts)?;
        // Force a trip from wherever the sequence left the breaker, then
        // assert the cool-down boundary exactly.
        for _ in 0..cfg().trip_after {
            breaker.record_failure(now);
        }
        // (If the sequence left it HalfOpen, one failure already reopens;
        // Closed needs the full streak; Open ignores extras. All paths end
        // Open with `opened_at <= now`.)
        prop_assert_eq!(breaker.state(now), BreakerState::Open);
        let reopened_at = breaker
            .take_transitions()
            .iter()
            .rev()
            .find(|t| t.to == BreakerState::Open)
            .map(|t| t.at)
            .unwrap_or(now);
        let due = reopened_at + cfg().open_for;
        prop_assert!(
            !breaker.try_acquire(due - Duration::from_millis(1)),
            "one tick early must still refuse"
        );
        prop_assert!(
            breaker.try_acquire(due + Duration::from_millis(extra)),
            "at/after the cool-down, the next acquire must re-probe"
        );
        prop_assert_eq!(
            breaker.state(due + Duration::from_millis(extra)),
            BreakerState::HalfOpen
        );
    }

    #[test]
    fn trial_grants_are_exclusive_in_half_open(
        dt in 0u64..50,
    ) {
        let breaker = CircuitBreaker::new(cfg());
        let t0 = Duration::from_millis(dt);
        for _ in 0..cfg().trip_after {
            breaker.record_failure(t0);
        }
        let probe_at = t0 + cfg().open_for;
        prop_assert!(breaker.try_acquire(probe_at), "first probe granted");
        for k in 0..5u64 {
            prop_assert!(
                !breaker.try_acquire(probe_at + Duration::from_millis(k)),
                "no second trial while one is in flight"
            );
        }
        breaker.record_success(probe_at);
        prop_assert!(breaker.try_acquire(probe_at), "next trial after a result");
    }
}
