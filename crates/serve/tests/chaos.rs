//! The chaos soak: thousands of requests against a misbehaving primary
//! under genuine overload, on a virtual clock — asserting the three
//! headline guarantees of the serving layer:
//!
//! 1. **Nothing escapes, nothing is lost.** Injected primary panics never
//!    cross the service boundary; every admitted request is answered
//!    exactly once (value or typed deadline expiry); every submission is
//!    accounted for in exactly one bucket.
//! 2. **All refusals are typed.** Under overload and fault bursts, the only
//!    errors a client ever sees are `Overloaded` / `Deadline` (and
//!    `Draining` after shutdown begins).
//! 3. **The run is reproducible to the byte.** Two soaks with the same seed
//!    produce byte-identical telemetry files.

use std::path::PathBuf;
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

use lightnas_hw::Xavier;
use lightnas_predictor::{LutPredictor, Metric, MetricDataset, MlpPredictor, TrainConfig};
use lightnas_runtime::{splitmix64, Telemetry};
use lightnas_serve::{
    AdmissionPolicy, BreakerConfig, ChaosPlan, ChaosPredictor, DrainReport, PredictorService,
    Priority, Request, ServeError, ServiceConfig, SystemClock, VirtualClock,
};
use lightnas_space::SearchSpace;

/// Requests the soak pushes through the service (acceptance floor: 5,000).
const SOAK_REQUESTS: usize = 5_500;

struct Fixture {
    encodings: Vec<Vec<f32>>,
    mlp: MlpPredictor,
    lut: LutPredictor,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let space = SearchSpace::standard();
        let device = Xavier::maxn();
        let data = MetricDataset::sample(&device, &space, Metric::LatencyMs, 400, 3);
        let mlp = MlpPredictor::train(
            &data,
            &TrainConfig {
                epochs: 5,
                batch_size: 128,
                lr: 2e-3,
                seed: 0,
            },
        );
        let lut = LutPredictor::build(&device, &space);
        Fixture {
            encodings: data.encodings().to_vec(),
            mlp,
            lut,
        }
    })
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lightnas-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Silences the default panic hook around `f` (injected primary panics are
/// *expected* here); serialized so parallel tests don't race on the global
/// hook.
fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    static GATE: Mutex<()> = Mutex::new(());
    let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(hook);
    out
}

fn soak_config() -> ServiceConfig {
    ServiceConfig {
        admission: AdmissionPolicy {
            capacity: 32,
            normal_mark: 24,
            low_mark: 16,
        },
        breaker: BreakerConfig {
            trip_after: 3,
            open_for: Duration::from_millis(8),
            trial_successes: 2,
        },
        max_batch: 8,
        retry_budget: 1,
        default_deadline: Some(Duration::from_millis(12)),
    }
}

/// One full deterministic soak: returns the telemetry bytes and the final
/// accounting.
fn run_soak(seed: u64, tag: &str) -> (Vec<u8>, DrainReport) {
    let f = fixture();
    let clock = VirtualClock::new();
    let plan = ChaosPlan::seeded(seed, 8_000);
    let chaos = ChaosPredictor::new(&f.mlp, &plan, &clock);
    let dir = test_dir(tag);
    let telemetry = Telemetry::create(&dir, "soak").expect("telemetry sink");
    let svc =
        PredictorService::new(&chaos, &f.lut, &clock, soak_config()).with_telemetry(&telemetry);

    let mut s = seed ^ 0x5eed_50ab_a5a5_1dea;
    let mut admitted = Vec::new();
    for i in 0..SOAK_REQUESTS {
        let enc = f.encodings[(splitmix64(&mut s) as usize) % f.encodings.len()].clone();
        let priority = match splitmix64(&mut s) % 3 {
            0 => Priority::Low,
            1 => Priority::Normal,
            _ => Priority::High,
        };
        match svc.submit(Request::new(enc).with_priority(priority)) {
            Ok(id) => admitted.push(id),
            Err(e) => assert!(
                matches!(
                    e,
                    ServeError::Overloaded { .. } | ServeError::Deadline { .. }
                ),
                "pre-drain rejections must be typed overload/deadline, got {e}"
            ),
        }
        // Submit faster than we serve (overload), tick time forward, and
        // stall hard every ~300 requests so queued deadlines genuinely
        // expire.
        if i % 12 == 11 {
            svc.pump();
        }
        if i % 5 == 0 {
            clock.advance(Duration::from_millis(1));
        }
        if i % 301 == 300 {
            clock.advance(Duration::from_millis(15));
        }
    }
    let report = svc.drain();

    // Exactly-once answering: every admitted id, no extras, no dupes.
    let responses = svc.take_responses();
    assert_eq!(
        responses.len(),
        admitted.len(),
        "every admitted request is answered exactly once"
    );
    let mut answered: Vec<u64> = responses.iter().map(|r| r.id).collect();
    answered.sort_unstable();
    let mut expected = admitted.clone();
    expected.sort_unstable();
    assert_eq!(answered, expected);
    for r in &responses {
        if let Err(e) = &r.outcome {
            assert!(
                matches!(e, ServeError::Deadline { .. }),
                "post-admission failure must be a typed deadline, got {e}"
            );
        }
    }

    assert!(report.fully_accounted(), "lost requests: {report:?}");
    assert!(report.submitted >= 5_000, "soak floor: {report:?}");
    assert!(report.rejected_overloaded > 0, "soak never overloaded");
    assert!(report.deadline_expired > 0, "soak never missed a deadline");
    assert!(report.degraded > 0, "chaos never degraded a request");
    assert!(plan.fired() > 0, "no scheduled fault fired");
    assert_eq!(
        report.degraded,
        svc.fallback().degraded(),
        "telemetry degraded count must equal the fallback's own counters"
    );

    let bytes = std::fs::read(telemetry.path()).expect("read telemetry");
    let _ = std::fs::remove_dir_all(&dir);
    // Visible with --nocapture; the numbers quoted in EXPERIMENTS.md.
    eprintln!(
        "[soak seed {seed}] {report:?} | faults fired {} | telemetry {} bytes",
        plan.fired(),
        bytes.len()
    );
    (bytes, report)
}

#[test]
fn chaos_soak_is_byte_reproducible_and_loses_nothing() {
    quiet_panics(|| {
        let (a_bytes, a_report) = run_soak(7, "soak-a");
        let (b_bytes, b_report) = run_soak(7, "soak-b");
        assert_eq!(a_report, b_report, "same seed, same accounting");
        assert!(
            a_bytes == b_bytes,
            "same-seed soaks must produce byte-identical telemetry \
             ({} vs {} bytes)",
            a_bytes.len(),
            b_bytes.len()
        );
        let (c_bytes, _) = run_soak(8, "soak-c");
        assert!(a_bytes != c_bytes, "different seed, different history");
    });
}

#[test]
fn threaded_chaos_drain_contains_panics_and_loses_nothing() {
    let f = fixture();
    quiet_panics(|| {
        let clock = SystemClock::new();
        let plan = ChaosPlan::seeded(3, 2_000);
        let chaos = ChaosPredictor::new(&f.mlp, &plan, &clock);
        let config = ServiceConfig {
            admission: AdmissionPolicy {
                capacity: 4096,
                normal_mark: 4096,
                low_mark: 4096,
            },
            default_deadline: None,
            ..soak_config()
        };
        let svc = PredictorService::new(&chaos, &f.lut, &clock, config);
        let (admitted, report) = svc.run_threaded(4, |svc| {
            std::thread::scope(|scope| {
                let producers: Vec<_> = (0..4)
                    .map(|p| {
                        scope.spawn(move || {
                            (0..250)
                                .filter(|k| {
                                    let enc =
                                        f.encodings[(p * 250 + k) % f.encodings.len()].clone();
                                    svc.submit(Request::new(enc)).is_ok()
                                })
                                .count() as u64
                        })
                    })
                    .collect();
                producers
                    .into_iter()
                    .map(|h| h.join().expect("producer thread"))
                    .sum::<u64>()
            })
        });
        assert_eq!(admitted, 1000, "queue was sized to admit everything");
        assert_eq!(report.served, 1000, "zero dropped in flight across drain");
        assert!(report.fully_accounted(), "{report:?}");
        assert_eq!(svc.take_responses().len(), 1000);
        assert!(plan.fired() > 0, "chaos actually exercised the pool");
    });
}
