//! Property-based invariants of the adaptation layer (proptest).
//!
//! Three contract clauses the drift soak leans on, hammered over arbitrary
//! signal scales, noise shapes, drift rates, and fault placements:
//!
//! * a stationary stream — honest model, bounded noise — **never** flags
//!   staleness;
//! * a monotone multiplicative drift ramp **always** flags, within a
//!   window-scaled sample budget;
//! * the promote/rollback state machine never serves an unvalidated
//!   shadow: the deployment generation moves only through audited
//!   promotions (each behind a passing verdict) and rollbacks, no matter
//!   where chaos bias or a bad deploy lands.

use proptest::prelude::*;

use lightnas_predictor::{BatchPredictor, Predictor};
use lightnas_serve::{
    audit_is_well_formed, AdaptConfig, AdaptEvent, AdaptationController, DriftMonitor, ModelSlot,
    VirtualClock,
};

/// Deterministic per-index value in [1, 2) — the "architecture" signal.
fn lane(i: u64) -> f64 {
    1.0 + (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40) as f64 / 16_777_216.0
}

/// Smooth bounded noise with a stable RMS — adversarial amplitudes are
/// allowed, adversarial *windows* (quiet calibration, loud afterwards) are
/// not what "stationary" means.
fn noise(i: u64, amplitude: f64, phase: f64) -> f64 {
    amplitude * (0.7 * i as f64 + phase).sin()
}

fn config() -> AdaptConfig {
    AdaptConfig {
        window: 32,
        min_samples: 16,
        ..AdaptConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stationary stream, honest model, noise up to 5% of signal: the
    /// detector must stay quiet forever (well, for 600 samples).
    #[test]
    fn stationary_stream_never_flags(
        scale in 5.0f64..40.0,
        noise_frac in 0.0f64..0.05,
        phase in 0.0f64..std::f64::consts::TAU,
    ) {
        let cfg = config();
        let mut monitor = DriftMonitor::new(cfg.window);
        for i in 0..600u64 {
            let truth = scale * lane(i);
            let observed = truth + noise(i, noise_frac * scale, phase);
            monitor.push(truth, observed);
            prop_assert!(
                monitor.check(&cfg).is_none(),
                "stationary stream flagged at sample {} (scale {scale}, frac {noise_frac})",
                i
            );
        }
    }

    /// A monotone multiplicative ramp must flag within a window-scaled
    /// budget — the detector is allowed latency, not blindness.
    #[test]
    fn monotone_ramp_always_flags_within_budget(
        scale in 5.0f64..40.0,
        ramp in 0.002f64..0.02,
        noise_frac in 0.0f64..0.05,
        phase in 0.0f64..std::f64::consts::TAU,
    ) {
        let cfg = config();
        let mut monitor = DriftMonitor::new(cfg.window);
        let budget = 1000u64;
        let mut flagged = None;
        for i in 0..budget {
            let truth = scale * lane(i);
            let drifted = truth * (1.0 + ramp * i as f64);
            let observed = drifted + noise(i, noise_frac * scale, phase);
            monitor.push(truth, observed);
            if monitor.check(&cfg).is_some() {
                flagged = Some(i);
                break;
            }
        }
        prop_assert!(
            flagged.is_some(),
            "ramp {ramp}/sample never flagged within {budget} samples"
        );
    }
}

/// A linear fake model and a least-squares refit trainer — instant,
/// deterministic, and good enough for the state machine to exercise every
/// transition.
#[derive(Debug, Clone)]
struct LinearModel {
    scale: f64,
}
impl Predictor for LinearModel {
    fn predict_encoding(&self, e: &[f32]) -> f64 {
        self.scale * f64::from(e[0])
    }
    fn gradient(&self, e: &[f32]) -> Vec<f32> {
        vec![0.0; e.len()]
    }
}
impl BatchPredictor for LinearModel {}

fn refit(_m: &LinearModel, encs: &[Vec<f32>], obs: &[f64]) -> LinearModel {
    let (mut num, mut den) = (0.0, 0.0);
    for (e, o) in encs.iter().zip(obs) {
        let x = f64::from(e[0]);
        num += x * o;
        den += x * x;
    }
    LinearModel { scale: num / den }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drive the full controller through arbitrary regime changes with a
    /// stale-bias fault and a bad deploy landing at arbitrary points. At
    /// every single sample: the audit trail stays well-formed (promotions
    /// only behind passing verdicts) and the serving generation equals
    /// exactly the audited deployments — an unvalidated shadow has no path
    /// into the slot.
    #[test]
    fn generation_moves_only_through_audited_deployments(
        seg_lens in proptest::collection::vec(20usize..60, 4),
        seg_scales in proptest::collection::vec(5.0f64..30.0, 4),
        bias_at in 0usize..150,
        bias_ms in 1.0f64..30.0,
        bias_n in 1u64..40,
        bad_deploy_at in 0usize..150,
        bad_bias in 20.0f64..80.0,
    ) {
        let regimes: Vec<(usize, f64)> =
            seg_lens.iter().copied().zip(seg_scales.iter().copied()).collect();
        let clock = VirtualClock::new();
        let slot = ModelSlot::new(LinearModel { scale: regimes[0].1 });
        let mut ctl = AdaptationController::new(
            &slot,
            &clock,
            AdaptConfig {
                window: 16,
                min_samples: 8,
                validation_pairs: 8,
                probation: 8,
                cooldown: 8,
                ..AdaptConfig::default()
            },
            refit,
        );
        let mut i = 0u64;
        for &(len, scale) in &regimes {
            for _ in 0..len {
                if i as usize == bias_at {
                    slot.inject_bias(bias_ms, bias_n);
                }
                if i as usize == bad_deploy_at {
                    ctl.arm_bad_deploy(bad_bias);
                }
                let e = vec![lane(i) as f32, 0.0];
                ctl.ingest(&e, scale * lane(i));
                let audit = ctl.audit();
                prop_assert!(audit_is_well_formed(audit), "{audit:?}");
                let promotions = audit
                    .iter()
                    .filter(|e| matches!(e, AdaptEvent::Promoted { .. }))
                    .count() as u64;
                let rollbacks = audit
                    .iter()
                    .filter(|e| matches!(e, AdaptEvent::RolledBack { .. }))
                    .count() as u64;
                prop_assert_eq!(
                    slot.generation(),
                    promotions + rollbacks,
                    "generation moved outside the audited promote/rollback path"
                );
                i += 1;
            }
        }
    }
}
