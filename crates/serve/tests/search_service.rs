//! End-to-end properties of the multi-tenant search service: byte-identity
//! of shared-cache execution against private serial runs, structural
//! fairness of the per-tenant quotas, and a deterministic chaos-style
//! admission storm with full audit accounting.

use std::sync::OnceLock;

use lightnas::SearchConfig;
use lightnas_eval::AccuracyOracle;
use lightnas_hw::Xavier;
use lightnas_predictor::{Metric, MetricDataset, MlpPredictor, TrainConfig};
use lightnas_runtime::{run_sweep, JobStatus, SearchJob, SweepOptions};
use lightnas_serve::{
    search_audit_is_well_formed, AdmissionPolicy, Priority, SearchEvent, SearchServeError,
    SearchService, SearchServiceConfig, TenantQuota,
};
use lightnas_space::SearchSpace;

struct Fixture {
    oracle: AccuracyOracle,
    predictor: MlpPredictor,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let space = SearchSpace::standard();
        let device = Xavier::maxn();
        let data = MetricDataset::sample_diverse(&device, &space, Metric::LatencyMs, 1200, 7);
        let predictor = MlpPredictor::train(
            &data,
            &TrainConfig {
                epochs: 30,
                batch_size: 128,
                lr: 2e-3,
                seed: 0,
            },
        );
        Fixture {
            oracle: AccuracyOracle::imagenet(),
            predictor,
        }
    })
}

/// Small enough for CI, long enough to exercise real search trajectories.
fn tiny_config() -> SearchConfig {
    SearchConfig {
        epochs: 6,
        steps_per_epoch: 8,
        warmup_epochs: 2,
        ..SearchConfig::fast()
    }
}

/// `(architecture spec, λ bits)` per job — the byte-level fingerprint.
fn fingerprints(statuses: &[JobStatus]) -> Vec<(String, u64)> {
    statuses
        .iter()
        .map(|s| {
            let r = s.completed().expect("job must complete");
            (r.outcome.architecture.to_spec(), r.outcome.lambda.to_bits())
        })
        .collect()
}

#[test]
fn multi_tenant_results_are_byte_identical_to_private_serial_runs() {
    let f = fixture();
    let config = tiny_config();
    // Three tenants, overlapping targets — the regime where the shared
    // cache pays (tenant B hits tenant A's misses).
    let sweeps: Vec<(&str, Vec<SearchJob>)> = vec![
        ("acme", SearchJob::grid(&[19.0, 25.0], &[0], config)),
        ("globex", SearchJob::grid(&[19.0], &[0, 3], config)),
        ("initech", SearchJob::grid(&[25.0, 21.0], &[3], config)),
    ];

    let service = SearchService::new(
        &f.oracle,
        &f.predictor,
        SearchServiceConfig {
            sweep: SweepOptions::with_workers(4),
            ..SearchServiceConfig::default()
        },
        None,
    );
    let mut tickets = Vec::new();
    for (tenant, jobs) in &sweeps {
        tickets.push(
            service
                .submit_sweep(tenant, Priority::Normal, jobs.clone())
                .expect("admitted"),
        );
    }
    assert_eq!(service.queued_jobs(), 6);
    let reports = service.run_queued();
    assert_eq!(reports.len(), 3);
    assert_eq!(service.queued_jobs(), 0, "queue drained by execution");

    for ((tenant, jobs), (report, ticket)) in sweeps.iter().zip(reports.iter().zip(&tickets)) {
        assert_eq!(report.tenant, *tenant);
        assert_eq!(report.sweep, ticket.sweep);
        assert!(report.all_completed(), "{tenant}: {:?}", report.statuses);
        // Ground truth: a private, serial, cold-cache run of the same jobs.
        let private = run_sweep(&f.oracle, &f.predictor, jobs, &SweepOptions::serial(), None);
        assert_eq!(
            fingerprints(&report.statuses),
            fingerprints(&private.statuses),
            "tenant {tenant}: shared-cache results diverged from a private serial run"
        );
        // Statuses are re-indexed to the sweep's own job list.
        for (i, s) in report.statuses.iter().enumerate() {
            assert_eq!(s.completed().expect("completed").index, i);
        }
    }

    // The shared cache actually coalesced across tenants: overlapping
    // targets mean real hits, and every shard invariant holds.
    let snap = service.cache_snapshot();
    assert!(
        snap.stats.hits > 0,
        "no cross-tenant cache traffic: {snap:?}"
    );
    assert_eq!(
        snap.stats.misses as usize,
        snap.predictions + snap.gradients
    );
    let audit = service.audit();
    search_audit_is_well_formed(&audit, true).expect("audit well-formed");

    // Health carries the shared-cache block: counters plus per-shard
    // occupancy, consistent with the snapshot.
    let health = service.health();
    assert_eq!(health.cache_hits, snap.stats.hits);
    assert_eq!(health.cache_misses, snap.stats.misses);
    assert_eq!(health.cache_shards.len(), snap.shards.len());
    assert_eq!(
        health.cache_shards.iter().sum::<u64>() as usize,
        snap.predictions + snap.gradients
    );
    assert!(health.to_json().contains("\"cache_hits\""));
}

#[test]
fn a_flooding_tenant_hits_its_quota_before_the_shared_watermark() {
    let f = fixture();
    let config = tiny_config();
    let service = SearchService::new(
        &f.oracle,
        &f.predictor,
        SearchServiceConfig::default(),
        None,
    );
    let quota = service.config().default_quota.max_queued_jobs;
    let normal_mark = service.config().admission.normal_mark;
    assert!(
        quota < normal_mark,
        "structural fairness requires quota ({quota}) < normal watermark ({normal_mark})"
    );

    // Tenant "flood" submits 4-job sweeps until its quota turns it away.
    let jobs4 = || SearchJob::grid(&[20.0], &[0, 1, 2, 3], config);
    let mut admitted = 0;
    let rejection = loop {
        match service.submit_sweep("flood", Priority::Normal, jobs4()) {
            Ok(_) => admitted += 4,
            Err(e) => break e,
        }
        assert!(admitted <= quota, "admitted past the quota");
    };
    match &rejection {
        SearchServeError::QuotaExceeded {
            tenant,
            queued,
            submitted,
            limit,
        } => {
            assert_eq!(tenant, "flood");
            assert_eq!(*queued, admitted);
            assert_eq!(*submitted, 4);
            assert_eq!(*limit, quota);
            assert!(queued + submitted > *limit);
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    assert_eq!(rejection.tag(), "quota");

    // The flood never reached the shared watermark, so another tenant's
    // admission headroom is untouched: "patient" gets its full quota in.
    assert!(service.queued_jobs() < normal_mark);
    for _ in 0..quota / 4 {
        service
            .submit_sweep("patient", Priority::Normal, jobs4())
            .expect("an unrelated tenant must not be starved by the flood");
    }
    assert_eq!(service.queued_jobs_for("patient"), quota / 4 * 4);

    // The rejection is audited with the same typed error the caller got.
    let audit = service.audit();
    let rejected: Vec<_> = audit
        .iter()
        .filter_map(|e| match e {
            SearchEvent::SweepRejected { tenant, error, .. } => Some((tenant.clone(), error)),
            _ => None,
        })
        .collect();
    assert_eq!(rejected.len(), 1);
    assert_eq!(rejected[0].0, "flood");
    assert_eq!(rejected[0].1, &rejection);
}

#[test]
fn draining_and_empty_sweeps_are_typed_rejections() {
    let f = fixture();
    let service = SearchService::new(
        &f.oracle,
        &f.predictor,
        SearchServiceConfig::default(),
        None,
    );
    assert_eq!(
        service.submit_sweep("t", Priority::Normal, Vec::new()),
        Err(SearchServeError::EmptySweep)
    );
    service.drain();
    assert_eq!(
        service
            .submit_sweep(
                "t",
                Priority::High,
                SearchJob::grid(&[20.0], &[0], tiny_config())
            )
            .unwrap_err(),
        SearchServeError::Draining
    );
    let health = service.health();
    assert!(health.draining);
    assert!(!health.ready);
    assert_eq!(health.rejected_draining, 1);
}

/// Deterministic chaos: a seeded storm of submissions from five tenants —
/// bursty sizes, mixed priorities, a greedy tenant with a raised quota,
/// interleaved partial drains — must (a) never admit past any quota or
/// watermark, (b) type every rejection, (c) keep the audit well-formed,
/// and (d) account for every submission exactly once.
#[test]
fn chaos_storm_of_tenant_submissions_is_fair_typed_and_fully_accounted() {
    let f = fixture();
    let config = tiny_config();
    let mut quotas = std::collections::HashMap::new();
    quotas.insert(
        "greedy".to_string(),
        TenantQuota {
            max_queued_jobs: 12,
        },
    );
    let service = SearchService::new(
        &f.oracle,
        &f.predictor,
        SearchServiceConfig {
            admission: AdmissionPolicy {
                capacity: 24,
                normal_mark: 18,
                low_mark: 12,
            },
            default_quota: TenantQuota { max_queued_jobs: 6 },
            quotas,
            cache_shards: 8,
            sweep: SweepOptions::with_workers(2),
        },
        None,
    );
    let tenants = ["greedy", "a", "b", "c", "d"];
    let quota_of = |t: &str| service.config().quota_for(t).max_queued_jobs;

    // Seeded LCG — the whole storm is a pure function of this state.
    let mut rng_state = 0x5eed_cafe_u64;
    let mut rng = move |bound: u64| {
        rng_state = rng_state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (rng_state >> 33) % bound
    };

    let mut executed_jobs = 0usize;
    let mut admissions = 0u64;
    let mut rejections = 0u64;
    for round in 0..60 {
        let tenant = tenants[rng(tenants.len() as u64) as usize];
        let priority = match rng(3) {
            0 => Priority::Low,
            1 => Priority::Normal,
            _ => Priority::High,
        };
        let n_jobs = 1 + rng(6) as usize;
        let seeds: Vec<u64> = (0..n_jobs as u64).map(|k| rng(50) + k).collect();
        let jobs = SearchJob::grid(&[18.0 + rng(12) as f64], &seeds, config);

        let tenant_before = service.queued_jobs_for(tenant);
        let depth_before = service.queued_jobs();
        match service.submit_sweep(tenant, priority, jobs) {
            Ok(_) => {
                admissions += 1;
                let quota = quota_of(tenant);
                assert!(
                    service.queued_jobs_for(tenant) <= quota,
                    "round {round}: {tenant} admitted past quota {quota}"
                );
                assert!(
                    service.queued_jobs() <= service.config().admission.limit(priority),
                    "round {round}: depth past the {priority:?} watermark"
                );
            }
            Err(SearchServeError::QuotaExceeded {
                tenant: t,
                queued,
                submitted,
                limit,
            }) => {
                rejections += 1;
                assert_eq!(t, tenant);
                assert_eq!(queued, tenant_before, "round {round}");
                assert_eq!(limit, quota_of(tenant));
                assert!(
                    queued + submitted > limit,
                    "round {round}: spurious quota rejection"
                );
            }
            Err(SearchServeError::Overloaded { depth, limit }) => {
                rejections += 1;
                assert_eq!(depth, depth_before, "round {round}");
                assert_eq!(limit, service.config().admission.limit(priority));
                assert!(depth + n_jobs > limit, "round {round}: spurious overload");
            }
            Err(e) => panic!("round {round}: unexpected rejection {e:?}"),
        }

        // Periodically drain the queue through real execution so the storm
        // exercises refill, not just a full queue rejecting everything.
        if round % 20 == 19 {
            for report in service.run_queued() {
                assert!(report.all_completed(), "{:?}", report.statuses);
                executed_jobs += report.statuses.len();
            }
        }
    }
    for report in service.run_queued() {
        assert!(report.all_completed());
        executed_jobs += report.statuses.len();
    }

    // Exact accounting: every submission is admitted or typed-rejected,
    // every admitted sweep executed, and the health counters agree.
    assert!(
        admissions > 0 && rejections > 0,
        "storm must exercise both paths"
    );
    let audit = service.audit();
    search_audit_is_well_formed(&audit, true).expect("audit well-formed");
    let (mut adm, mut rej, mut done, mut audited_jobs) = (0u64, 0u64, 0u64, 0usize);
    for e in &audit {
        match e {
            SearchEvent::SweepAdmitted { jobs, .. } => {
                adm += 1;
                audited_jobs += jobs;
            }
            SearchEvent::SweepRejected { .. } => rej += 1,
            SearchEvent::SweepDone { .. } => done += 1,
        }
    }
    assert_eq!(adm, admissions);
    assert_eq!(rej, rejections);
    assert_eq!(done, admissions, "every admitted sweep must execute");
    assert_eq!(audited_jobs, executed_jobs, "every admitted job must run");
    let health = service.health();
    assert_eq!(health.submitted, admissions + rejections);
    assert_eq!(health.served, admissions);
    assert!(health.fully_accounted(), "{health:?}");
    assert_eq!(health.cache_shards.len(), 8);
    assert!(
        health.cache_hits > 0,
        "a 60-round storm must produce cache hits"
    );
}
