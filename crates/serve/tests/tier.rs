//! Serving-tier contracts end to end through the service: the strict tier
//! is bit-identical to direct prediction, the fast tiers stay within the
//! predictor-depth tolerance bound, and tier selection defaults to strict.
//!
//! Tests here flip the process-wide kernel mode, so they serialize through
//! a mutex and always restore the strict default.

use std::sync::{Mutex, MutexGuard, OnceLock};

use lightnas_hw::Xavier;
use lightnas_predictor::{
    BatchPredictor, LutPredictor, Metric, MetricDataset, MlpPredictor, TrainConfig,
};
use lightnas_serve::{PredictorService, Request, ServiceConfig, ServingTier, VirtualClock};
use lightnas_space::SearchSpace;
use lightnas_tensor::{set_kernel_mode, tolerance::ReductionBound, KernelMode};

fn knob_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Restores the strict default even when an assertion unwinds.
struct StrictOnDrop;
impl Drop for StrictOnDrop {
    fn drop(&mut self) {
        set_kernel_mode(KernelMode::Strict);
    }
}

fn fixtures() -> (MlpPredictor, LutPredictor, Vec<Vec<f32>>) {
    let space = SearchSpace::standard();
    let device = Xavier::maxn();
    let data = MetricDataset::sample(&device, &space, Metric::LatencyMs, 400, 29);
    let mlp = MlpPredictor::train(
        &data,
        &TrainConfig {
            epochs: 15,
            batch_size: 128,
            lr: 2e-3,
            seed: 5,
        },
    );
    let lut = LutPredictor::build(&device, &space);
    let encs = data.encodings()[..64].to_vec();
    (mlp, lut, encs)
}

/// Serves every encoding through a fresh service under `tier` and returns
/// the answers in submission order.
fn serve_under(
    tier: ServingTier,
    trained: &MlpPredictor,
    lut: &LutPredictor,
    encs: &[Vec<f32>],
) -> Vec<f64> {
    let deployed = tier.prepare(trained);
    tier.activate();
    let clock = VirtualClock::new();
    let service = PredictorService::new(&deployed, lut, &clock, ServiceConfig::default());
    // Stay under the default admission watermark: submit in waves, pumping
    // the queue empty between them.
    let mut ids = Vec::with_capacity(encs.len());
    for wave in encs.chunks(32) {
        for e in wave {
            ids.push(service.submit(Request::new(e.clone())).expect("admission"));
        }
        while service.pump() > 0 {}
    }
    let mut served = service.take_responses();
    served.sort_by_key(|s| s.id);
    set_kernel_mode(KernelMode::Strict);
    assert_eq!(served.len(), ids.len(), "every request must be answered");
    served
        .into_iter()
        .map(|s| {
            let r = s.outcome.expect("no deadline set, must serve a value");
            assert!(!r.degraded, "primary must answer, not the fallback");
            r.value
        })
        .collect()
}

#[test]
fn strict_tier_serves_bit_identical_to_direct_prediction() {
    let _guard = knob_lock();
    let _restore = StrictOnDrop;
    let (mlp, lut, encs) = fixtures();
    let direct = mlp.predict_encodings(&encs);
    let served = serve_under(ServingTier::Strict, &mlp, &lut, &encs);
    for (s, d) in served.iter().zip(&direct) {
        assert_eq!(
            s.to_bits(),
            d.to_bits(),
            "strict serving must be bit-identical to direct prediction"
        );
    }
}

#[test]
fn fast_tier_serves_within_the_predictor_depth_bound() {
    let _guard = knob_lock();
    let _restore = StrictOnDrop;
    let (mlp, lut, encs) = fixtures();
    let strict: Vec<f32> = mlp
        .predict_encodings(&encs)
        .iter()
        .map(|&v| v as f32)
        .collect();
    // The widest reduction in the 154→128→64→1 predictor is the input
    // layer; its depth bounds every fast-kernel rearrangement. Predictions
    // are destandardized, so the honest scale is |prediction| plus one
    // target-std (the mean shift's magnitude floor).
    let bound = ReductionBound::matmul(154 + 128 + 64);
    for tier in [ServingTier::Fast, ServingTier::FastF16] {
        let served: Vec<f32> = serve_under(tier, &mlp, &lut, &encs)
            .iter()
            .map(|&v| v as f32)
            .collect();
        let scale: Vec<f32> = strict.iter().map(|p| p.abs() + 1.0).collect();
        if tier == ServingTier::Fast {
            if let Err(v) = bound.check(&served, &strict, &scale) {
                panic!("fast tier broke the tolerance bound: {v}");
            }
        } else {
            // f16 weight storage adds the 2⁻¹¹-per-weight quantization on
            // top of kernel reordering; the checkpoint tests pin 2⁻⁸ of
            // the target scale, mirrored here against the same strict oracle.
            for (i, (s, d)) in served.iter().zip(&strict).enumerate() {
                assert!(
                    (s - d).abs() <= 2.0f32.powi(-8) * scale[i],
                    "f16 tier answer {i} drifted: {s} vs {d}"
                );
            }
        }
    }
}

#[test]
fn tier_prepare_only_quantizes_the_f16_tier() {
    let _guard = knob_lock();
    let _restore = StrictOnDrop;
    let (mlp, _, encs) = fixtures();
    let strict = ServingTier::Strict.prepare(&mlp);
    let fast = ServingTier::Fast.prepare(&mlp);
    let f16 = ServingTier::FastF16.prepare(&mlp);
    let want = mlp.predict_encodings(&encs);
    assert_eq!(strict.predict_encodings(&encs), want);
    assert_eq!(fast.predict_encodings(&encs), want);
    let quantized = f16.predict_encodings(&encs);
    assert!(
        quantized
            .iter()
            .zip(&want)
            .any(|(a, b)| a.to_bits() != b.to_bits()),
        "f16 preparation must actually quantize the weights"
    );
}

#[test]
fn tier_from_env_parses_the_two_knobs() {
    let _guard = knob_lock();
    let _restore = StrictOnDrop;
    std::env::remove_var(lightnas_tensor::MODE_ENV);
    std::env::remove_var(lightnas_serve::WEIGHTS_ENV);
    assert_eq!(ServingTier::from_env(), ServingTier::Strict);
    // f16 without fast kernels is not a tier: strict serving promises
    // bit-identity with the searched checkpoint.
    std::env::set_var(lightnas_serve::WEIGHTS_ENV, "f16");
    assert_eq!(ServingTier::from_env(), ServingTier::Strict);
    std::env::set_var(lightnas_tensor::MODE_ENV, "fast");
    assert_eq!(ServingTier::from_env(), ServingTier::FastF16);
    std::env::set_var(lightnas_serve::WEIGHTS_ENV, "f32");
    assert_eq!(ServingTier::from_env(), ServingTier::Fast);
    std::env::remove_var(lightnas_tensor::MODE_ENV);
    std::env::remove_var(lightnas_serve::WEIGHTS_ENV);
}
