//! Bounded admission with per-priority watermarks.
//!
//! The queue is the service's only buffer, and it is *bounded*: past a
//! priority's watermark, a request is rejected **at the door** with a typed
//! [`ServeError::Overloaded`] instead of being accepted and later timed out.
//! Rejecting cheap and early is the whole point of admission control — a
//! request that cannot be served in time should cost the service (and tell
//! the client) as little as possible.
//!
//! Watermarks are nested — low-priority traffic is turned away first, high
//! priority last — but *serving* is strictly FIFO: priorities shape who gets
//! in, not who jumps the line, so admitted latency stays predictable.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

use crate::error::ServeError;

/// How urgent a request is — to *admission control only*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Best-effort traffic; first to be shed under load.
    Low,
    /// The default.
    Normal,
    /// Shed only when the queue is at full capacity.
    High,
}

impl Priority {
    /// Telemetry tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// Nested per-priority admission watermarks over one bounded queue.
#[derive(Debug, Clone)]
pub struct AdmissionPolicy {
    /// Hard queue bound; [`Priority::High`] is admitted up to here.
    pub capacity: usize,
    /// [`Priority::Normal`] is admitted while depth is below this.
    pub normal_mark: usize,
    /// [`Priority::Low`] is admitted while depth is below this.
    pub low_mark: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self {
            capacity: 64,
            normal_mark: 48,
            low_mark: 32,
        }
    }
}

impl AdmissionPolicy {
    /// The depth limit `priority` is admitted under.
    pub fn limit(&self, priority: Priority) -> usize {
        match priority {
            Priority::High => self.capacity,
            Priority::Normal => self.normal_mark.min(self.capacity),
            Priority::Low => self.low_mark.min(self.capacity),
        }
    }
}

#[derive(Debug)]
struct Inner<T> {
    queue: VecDeque<T>,
    draining: bool,
}

/// The bounded FIFO behind the service, safe for many producers and many
/// consumers. Blocking is confined to [`wait_batch`](Self::wait_batch);
/// everything else returns immediately.
#[derive(Debug)]
pub struct AdmissionQueue<T> {
    policy: AdmissionPolicy,
    inner: Mutex<Inner<T>>,
    wakeup: Condvar,
}

impl<T> AdmissionQueue<T> {
    /// An empty queue under `policy`.
    pub fn new(policy: AdmissionPolicy) -> Self {
        Self {
            policy,
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                draining: false,
            }),
            wakeup: Condvar::new(),
        }
    }

    /// The admission policy.
    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits one item built by `make`, called **under the queue lock** so
    /// whatever it captures (e.g. a request id counter) is ordered exactly
    /// like the queue itself. Returns the depth after insertion.
    ///
    /// # Errors
    ///
    /// [`ServeError::Draining`] once [`drain`](Self::drain) has been called;
    /// [`ServeError::Overloaded`] when the priority's watermark is reached.
    pub fn admit_with(
        &self,
        priority: Priority,
        make: impl FnOnce() -> T,
    ) -> Result<usize, ServeError> {
        let mut inner = self.lock();
        if inner.draining {
            return Err(ServeError::Draining);
        }
        let depth = inner.queue.len();
        let limit = self.policy.limit(priority);
        if depth >= limit {
            return Err(ServeError::Overloaded { depth, limit });
        }
        let item = make();
        inner.queue.push_back(item);
        let depth = inner.queue.len();
        drop(inner);
        self.wakeup.notify_one();
        Ok(depth)
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.lock().queue.len()
    }

    /// Whether [`drain`](Self::drain) has been called.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Stops admission (everything already queued stays servable) and wakes
    /// all waiting consumers so they can run the queue dry and exit.
    pub fn drain(&self) {
        self.lock().draining = true;
        self.wakeup.notify_all();
    }

    /// Pops up to `max` items FIFO without blocking; empty vec if idle.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let mut inner = self.lock();
        let n = inner.queue.len().min(max);
        inner.queue.drain(..n).collect()
    }

    /// Blocks until items are available (returning up to `max` of them) or
    /// the queue is draining *and* empty (returning `None` — the consumer
    /// should exit). Admitted items are therefore never lost to a drain.
    pub fn wait_batch(&self, max: usize) -> Option<Vec<T>> {
        let mut inner = self.lock();
        loop {
            if !inner.queue.is_empty() {
                let n = inner.queue.len().min(max);
                return Some(inner.queue.drain(..n).collect());
            }
            if inner.draining {
                return None;
            }
            inner = self
                .wakeup
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermarks_shed_low_priority_first() {
        let q = AdmissionQueue::new(AdmissionPolicy {
            capacity: 4,
            normal_mark: 3,
            low_mark: 2,
        });
        for k in 0..2 {
            q.admit_with(Priority::Low, || k).expect("below low mark");
        }
        assert!(matches!(
            q.admit_with(Priority::Low, || 9),
            Err(ServeError::Overloaded { depth: 2, limit: 2 })
        ));
        q.admit_with(Priority::Normal, || 2)
            .expect("normal still in");
        assert!(matches!(
            q.admit_with(Priority::Normal, || 9),
            Err(ServeError::Overloaded { depth: 3, limit: 3 })
        ));
        q.admit_with(Priority::High, || 3)
            .expect("high up to capacity");
        assert!(matches!(
            q.admit_with(Priority::High, || 9),
            Err(ServeError::Overloaded { depth: 4, limit: 4 })
        ));
        // Serving stays FIFO regardless of priority.
        assert_eq!(q.pop_batch(8), vec![0, 1, 2, 3]);
    }

    #[test]
    fn drain_rejects_new_but_serves_queued() {
        let q = AdmissionQueue::new(AdmissionPolicy::default());
        q.admit_with(Priority::Normal, || "queued")
            .expect("admitted");
        q.drain();
        assert!(matches!(
            q.admit_with(Priority::High, || "late"),
            Err(ServeError::Draining)
        ));
        assert_eq!(q.wait_batch(4), Some(vec!["queued"]));
        assert_eq!(q.wait_batch(4), None, "drained and empty means exit");
    }

    #[test]
    fn wait_batch_wakes_on_admission_across_threads() {
        let q = AdmissionQueue::new(AdmissionPolicy::default());
        std::thread::scope(|s| {
            let consumer = s.spawn(|| q.wait_batch(4));
            s.spawn(|| {
                q.admit_with(Priority::Normal, || 41).expect("admitted");
            });
            assert_eq!(consumer.join().expect("no panic"), Some(vec![41]));
        });
    }
}
