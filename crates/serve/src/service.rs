//! The service: admission → bounded queue → coalesced batches → breaker-
//! guarded primary → typed responses, with graceful drain.
//!
//! [`PredictorService`] is the front door a search driver (or anything else
//! that wants latency estimates) talks to under load. The life of a request:
//!
//! 1. **Admission** ([`submit`](PredictorService::submit)): past-due
//!    deadlines and over-watermark queues are rejected *at the door* with a
//!    typed [`ServeError`] — never silently dropped.
//! 2. **Coalescing**: a worker pulls up to `max_batch` queued requests and
//!    answers them in one [`BatchPredictor`] pass (bit-identical to the
//!    scalar path, so batching changes throughput, never values).
//! 3. **Guarding**: the [`CircuitBreaker`] decides whether the batch may
//!    touch the primary at all. Failed rows get a scalar retry budget, then
//!    degrade to the fallback via
//!    [`FallbackPredictor::degrade_encoding`] — which is what makes the
//!    service's degraded-count and the fallback's own counters agree by
//!    construction.
//! 4. **Drain** ([`drain`](PredictorService::drain) /
//!    [`run_threaded`](PredictorService::run_threaded)): admission closes,
//!    every already-admitted request is still answered, and the final
//!    telemetry line carries the full accounting.
//!
//! Two execution modes share all of that logic: the single-threaded
//! [`pump`](PredictorService::pump) loop (deterministic — the chaos soak
//! byte-compares its telemetry across runs) and a scoped worker pool
//! ([`run_threaded`](PredictorService::run_threaded)) for wall-clock
//! throughput.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use lightnas_predictor::{BatchPredictor, DegradeCause, FallbackPredictor, Predictor};
use lightnas_runtime::{events, Field, Telemetry};

use crate::adapt::AdaptStatus;
use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::clock::Clock;
use crate::error::ServeError;
use crate::health::HealthSnapshot;
use crate::queue::{AdmissionPolicy, AdmissionQueue, Priority};

/// Knobs of one [`PredictorService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Queue bound and per-priority watermarks.
    pub admission: AdmissionPolicy,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Most requests coalesced into one predictor pass. Default: 8.
    pub max_batch: usize,
    /// Scalar primary retries a failed row gets before degrading to the
    /// fallback. Default: 1.
    pub retry_budget: usize,
    /// Deadline stamped on requests that carry none (relative to
    /// submission). `None` = such requests never expire. Default: `None`.
    pub default_deadline: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            admission: AdmissionPolicy::default(),
            breaker: BreakerConfig::default(),
            max_batch: 8,
            retry_budget: 1,
            default_deadline: None,
        }
    }
}

/// One latency query.
#[derive(Debug, Clone)]
pub struct Request {
    /// The architecture encoding `ᾱ` to predict for.
    pub encoding: Vec<f32>,
    /// Admission-control priority.
    pub priority: Priority,
    /// Absolute service-clock deadline; `None` falls back to
    /// [`ServiceConfig::default_deadline`].
    pub deadline: Option<Duration>,
}

impl Request {
    /// A normal-priority request with no explicit deadline.
    pub fn new(encoding: Vec<f32>) -> Self {
        Self {
            encoding,
            priority: Priority::Normal,
            deadline: None,
        }
    }

    /// Same request at `priority`.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Same request due at `deadline` (absolute service-clock time).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A served answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The predicted metric.
    pub value: f64,
    /// Whether the fallback answered (any [`DegradeCause`]).
    pub degraded: bool,
    /// Size of the coalesced batch this request rode in.
    pub batch: usize,
    /// Time spent queued before processing began.
    pub queued: Duration,
}

/// The final word on one admitted request.
#[derive(Debug, Clone, PartialEq)]
pub struct Served {
    /// The id [`submit`](PredictorService::submit) returned.
    pub id: u64,
    /// Answer, or a typed failure ([`ServeError::Deadline`] is the only
    /// post-admission failure — admission errors are returned by `submit`).
    pub outcome: Result<Response, ServeError>,
}

/// Final accounting of a drained service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests ever submitted.
    pub submitted: u64,
    /// Requests answered with a value.
    pub served: u64,
    /// Answers that came from the fallback.
    pub degraded: u64,
    /// Deadline expiries (admission + in-queue).
    pub deadline_expired: u64,
    /// Admission-control rejections.
    pub rejected_overloaded: u64,
    /// Rejections after the drain began.
    pub rejected_draining: u64,
}

impl DrainReport {
    /// Nothing silently dropped: every submission is in exactly one bucket.
    pub fn fully_accounted(&self) -> bool {
        self.submitted
            == self.served
                + self.deadline_expired
                + self.rejected_overloaded
                + self.rejected_draining
    }
}

#[derive(Debug)]
struct Ticket {
    id: u64,
    encoding: Vec<f32>,
    deadline: Option<Duration>,
    submitted: Duration,
}

#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    served: AtomicU64,
    degraded: AtomicU64,
    deadline_expired: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_draining: AtomicU64,
    batches: AtomicU64,
}

fn us(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// The overload-safe serving layer over a primary [`BatchPredictor`] and a
/// fallback [`Predictor`] (canonically the trained MLP and the closed-form
/// LUT).
#[derive(Debug)]
pub struct PredictorService<'a, P: Predictor, F: Predictor> {
    fb: FallbackPredictor<'a, P, F>,
    clock: &'a dyn Clock,
    config: ServiceConfig,
    queue: AdmissionQueue<Ticket>,
    breaker: CircuitBreaker,
    telemetry: Option<&'a Telemetry>,
    adapt: Option<&'a AdaptStatus>,
    next_id: AtomicU64,
    responses: Mutex<Vec<Served>>,
    counters: Counters,
}

impl<'a, P: BatchPredictor, F: Predictor> PredictorService<'a, P, F> {
    /// A service over `primary` with `fallback` as the degradation target,
    /// telling time through `clock`.
    pub fn new(
        primary: &'a P,
        fallback: &'a F,
        clock: &'a dyn Clock,
        config: ServiceConfig,
    ) -> Self {
        Self {
            fb: FallbackPredictor::new(primary, fallback),
            clock,
            queue: AdmissionQueue::new(config.admission.clone()),
            breaker: CircuitBreaker::new(config.breaker.clone()),
            config,
            telemetry: None,
            adapt: None,
            next_id: AtomicU64::new(0),
            responses: Mutex::new(Vec::new()),
            counters: Counters::default(),
        }
    }

    /// Narrates every admission, rejection, batch, breaker transition, and
    /// drain to `telemetry` (events from
    /// [`lightnas_runtime::events`]).
    pub fn with_telemetry(mut self, telemetry: &'a Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Surfaces the adaptation layer's generation/staleness counters in
    /// [`health`](Self::health) — share the [`AdaptStatus`] instance with
    /// the `AdaptationController` driving the model slot. Without this,
    /// the snapshot's adaptation fields stay at their (serialization-
    /// invisible) defaults.
    pub fn with_adapt_status(mut self, status: &'a AdaptStatus) -> Self {
        self.adapt = Some(status);
        self
    }

    /// The service's circuit breaker — exposed so the adaptation layer can
    /// force a cool-down (`CircuitBreaker::trip`) when it rolls a
    /// promotion back.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    fn emit(&self, event: &str, fields: &[(&str, Field)]) {
        if let Some(t) = self.telemetry {
            t.emit(event, fields);
        }
    }

    /// The wrapped fallback predictor — its per-cause degradation counters
    /// are the ground truth the service's own telemetry must (and does)
    /// match.
    pub fn fallback(&self) -> &FallbackPredictor<'a, P, F> {
        &self.fb
    }

    /// Offers one request for admission. `Ok(id)` means the service *will*
    /// answer it (value or typed deadline expiry) — admitted requests are
    /// never dropped, even across a drain.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] past the priority's watermark,
    /// [`ServeError::Deadline`] when the request is already past due, and
    /// [`ServeError::Draining`] after [`drain`](Self::drain) began.
    pub fn submit(&self, req: Request) -> Result<u64, ServeError> {
        let now = self.clock.now();
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let deadline = req
            .deadline
            .or_else(|| self.config.default_deadline.map(|d| now + d));
        if let Some(d) = deadline {
            if now > d {
                self.counters
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                self.emit(
                    events::SERVE_REJECTED,
                    &[
                        ("t_us", Field::U(us(now))),
                        ("reason", Field::S("deadline".into())),
                        ("priority", Field::S(req.priority.tag().into())),
                    ],
                );
                return Err(ServeError::Deadline { deadline: d, now });
            }
        }
        let mut id = 0;
        let priority = req.priority;
        let encoding = req.encoding;
        let admitted = self.queue.admit_with(priority, || {
            id = self.next_id.fetch_add(1, Ordering::Relaxed);
            Ticket {
                id,
                encoding,
                deadline,
                submitted: now,
            }
        });
        match admitted {
            Ok(depth) => {
                self.emit(
                    events::SERVE_ADMITTED,
                    &[
                        ("t_us", Field::U(us(now))),
                        ("id", Field::U(id)),
                        ("depth", Field::U(depth as u64)),
                        ("priority", Field::S(priority.tag().into())),
                    ],
                );
                Ok(id)
            }
            Err(e) => {
                match &e {
                    ServeError::Overloaded { .. } => self
                        .counters
                        .rejected_overloaded
                        .fetch_add(1, Ordering::Relaxed),
                    ServeError::Draining => self
                        .counters
                        .rejected_draining
                        .fetch_add(1, Ordering::Relaxed),
                    ServeError::Deadline { .. } => unreachable!("admission never returns Deadline"),
                };
                self.emit(
                    events::SERVE_REJECTED,
                    &[
                        ("t_us", Field::U(us(now))),
                        ("reason", Field::S(e.tag().into())),
                        ("depth", Field::U(self.queue.depth() as u64)),
                        ("priority", Field::S(priority.tag().into())),
                    ],
                );
                Err(e)
            }
        }
    }

    /// Resolves one row given its batch-pass result (`None` = the batch
    /// panicked before producing values): scalar retries against the
    /// primary up to the budget, then a counted degradation.
    fn resolve_row(&self, ticket: &Ticket, first: Option<f64>, now: Duration) -> (f64, bool) {
        let mut cause = match first {
            Some(v) if v.is_finite() => {
                self.breaker.record_success(now);
                return (v, false);
            }
            Some(_) => DegradeCause::NonFinite,
            None => DegradeCause::Panic,
        };
        for _ in 0..self.config.retry_budget {
            let retried = catch_unwind(AssertUnwindSafe(|| {
                self.fb.primary().predict_encoding(&ticket.encoding)
            }));
            match retried {
                Ok(v) if v.is_finite() => {
                    self.breaker.record_success(now);
                    return (v, false);
                }
                Ok(_) => cause = DegradeCause::NonFinite,
                Err(_) => cause = DegradeCause::Panic,
            }
        }
        self.breaker.record_failure(now);
        self.counters.degraded.fetch_add(1, Ordering::Relaxed);
        (self.fb.degrade_encoding(&ticket.encoding, cause), true)
    }

    fn process_batch(&self, tickets: Vec<Ticket>) {
        let now = self.clock.now();
        let mut served = Vec::with_capacity(tickets.len());
        let mut live = Vec::with_capacity(tickets.len());
        for t in tickets {
            match t.deadline {
                Some(d) if now > d => {
                    self.counters
                        .deadline_expired
                        .fetch_add(1, Ordering::Relaxed);
                    self.emit(
                        events::SERVE_DEADLINE,
                        &[
                            ("t_us", Field::U(us(now))),
                            ("id", Field::U(t.id)),
                            ("due_us", Field::U(us(d))),
                        ],
                    );
                    served.push(Served {
                        id: t.id,
                        outcome: Err(ServeError::Deadline { deadline: d, now }),
                    });
                }
                _ => live.push(t),
            }
        }
        if !live.is_empty() {
            let size = live.len();
            let primary_allowed = self.breaker.try_acquire(now);
            let mut degraded_rows = 0u64;
            let rows: Vec<(f64, bool)> = if primary_allowed {
                let encodings: Vec<Vec<f32>> = live.iter().map(|t| t.encoding.clone()).collect();
                let batch_pass = catch_unwind(AssertUnwindSafe(|| {
                    self.fb.primary().predict_encodings(&encodings)
                }))
                .ok();
                live.iter()
                    .enumerate()
                    .map(|(k, t)| self.resolve_row(t, batch_pass.as_ref().map(|vs| vs[k]), now))
                    .collect()
            } else {
                live.iter()
                    .map(|t| {
                        self.counters.degraded.fetch_add(1, Ordering::Relaxed);
                        (
                            self.fb.degrade_encoding(&t.encoding, DegradeCause::Routed),
                            true,
                        )
                    })
                    .collect()
            };
            self.counters.batches.fetch_add(1, Ordering::Relaxed);
            for (t, (value, degraded)) in live.iter().zip(&rows) {
                degraded_rows += u64::from(*degraded);
                self.counters.served.fetch_add(1, Ordering::Relaxed);
                self.emit(
                    events::SERVE_DONE,
                    &[
                        ("t_us", Field::U(us(now))),
                        ("id", Field::U(t.id)),
                        ("value", Field::F(*value)),
                        ("degraded", Field::B(*degraded)),
                        ("batch", Field::U(size as u64)),
                        ("queued_us", Field::U(us(now.saturating_sub(t.submitted)))),
                    ],
                );
                served.push(Served {
                    id: t.id,
                    outcome: Ok(Response {
                        value: *value,
                        degraded: *degraded,
                        batch: size,
                        queued: now.saturating_sub(t.submitted),
                    }),
                });
            }
            self.emit(
                events::SERVE_BATCH,
                &[
                    ("t_us", Field::U(us(now))),
                    ("size", Field::U(size as u64)),
                    ("degraded", Field::U(degraded_rows)),
                    ("primary", Field::B(primary_allowed)),
                ],
            );
        }
        for tr in self.breaker.take_transitions() {
            self.emit(
                events::BREAKER_TRANSITION,
                &[
                    ("t_us", Field::U(us(tr.at))),
                    ("from", Field::S(tr.from.to_string())),
                    ("to", Field::S(tr.to.to_string())),
                    ("reason", Field::S(tr.reason.into())),
                ],
            );
        }
        let mut out = self
            .responses
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        out.extend(served);
    }

    /// Serves one coalesced batch synchronously; returns how many requests
    /// it handled (0 = the queue was empty). A deterministic single-
    /// threaded pump loop is what the chaos soak byte-compares.
    pub fn pump(&self) -> usize {
        let batch = self.queue.pop_batch(self.config.max_batch);
        let n = batch.len();
        if n > 0 {
            self.process_batch(batch);
        }
        n
    }

    /// Completed outcomes accumulated since the last call, in completion
    /// order.
    pub fn take_responses(&self) -> Vec<Served> {
        std::mem::take(
            &mut *self
                .responses
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// Point-in-time health/readiness.
    pub fn health(&self) -> HealthSnapshot {
        let draining = self.queue.is_draining();
        let now = self.clock.now();
        let (model_generation, staleness_samples, staleness_age) = match self.adapt {
            Some(s) => (
                s.generation(),
                s.samples_since_promotion(),
                now.saturating_sub(s.promoted_at()),
            ),
            None => (0, 0, Duration::ZERO),
        };
        HealthSnapshot {
            ready: !draining,
            draining,
            queue_depth: self.queue.depth(),
            breaker: self.breaker.state(now),
            model_generation,
            staleness_samples,
            staleness_age,
            // Single-device service: the fleet rollup is always empty here
            // (FleetAdaptation aggregates its own snapshots).
            fleet: Vec::new(),
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            served: self.counters.served.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
            rejected_overloaded: self.counters.rejected_overloaded.load(Ordering::Relaxed),
            rejected_draining: self.counters.rejected_draining.load(Ordering::Relaxed),
            deadline_expired: self.counters.deadline_expired.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            // The query service answers through the breaker-guarded model
            // slot, not a predictor cache; the cache block stays invisible.
            cache_hits: 0,
            cache_misses: 0,
            cache_shards: Vec::new(),
        }
    }

    fn drain_report(&self) -> DrainReport {
        let report = DrainReport {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            served: self.counters.served.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
            deadline_expired: self.counters.deadline_expired.load(Ordering::Relaxed),
            rejected_overloaded: self.counters.rejected_overloaded.load(Ordering::Relaxed),
            rejected_draining: self.counters.rejected_draining.load(Ordering::Relaxed),
        };
        self.emit(
            events::SERVE_DRAINED,
            &[
                ("t_us", Field::U(us(self.clock.now()))),
                ("submitted", Field::U(report.submitted)),
                ("served", Field::U(report.served)),
                ("degraded", Field::U(report.degraded)),
                ("deadline_expired", Field::U(report.deadline_expired)),
                ("rejected_overloaded", Field::U(report.rejected_overloaded)),
                ("rejected_draining", Field::U(report.rejected_draining)),
            ],
        );
        report
    }

    /// Graceful shutdown in pump mode: closes admission, serves everything
    /// already queued, and returns (and emits) the final accounting.
    pub fn drain(&self) -> DrainReport {
        self.queue.drain();
        while self.pump() > 0 {}
        self.drain_report()
    }

    /// Runs `driver` with a scoped pool of `workers` threads serving the
    /// queue concurrently; when the driver returns, the service drains
    /// (admission closes, queued work finishes), workers exit, and the
    /// final accounting is returned alongside the driver's output.
    ///
    /// # Panics
    ///
    /// Propagates a worker-thread panic. Primary-predictor panics are *not*
    /// worker panics — they are caught, retried, and degraded per row.
    pub fn run_threaded<R>(
        &self,
        workers: usize,
        driver: impl FnOnce(&Self) -> R,
    ) -> (R, DrainReport)
    where
        P: Sync,
        F: Sync,
    {
        let out = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers.max(1))
                .map(|_| {
                    s.spawn(|| {
                        while let Some(batch) = self.queue.wait_batch(self.config.max_batch) {
                            self.process_batch(batch);
                        }
                    })
                })
                .collect();
            let out = driver(self);
            self.queue.drain();
            for h in handles {
                h.join().expect("serve worker must never crash");
            }
            out
        });
        (out, self.drain_report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerState;
    use crate::clock::VirtualClock;

    /// Primary answering 17.25, counting calls; optionally always-NaN.
    struct Probe {
        value: f64,
        calls: AtomicU64,
    }
    impl Probe {
        fn healthy() -> Self {
            Self {
                value: 17.25,
                calls: AtomicU64::new(0),
            }
        }
        fn broken() -> Self {
            Self {
                value: f64::NAN,
                calls: AtomicU64::new(0),
            }
        }
        fn calls(&self) -> u64 {
            self.calls.load(Ordering::Relaxed)
        }
    }
    impl Predictor for Probe {
        fn predict_encoding(&self, _e: &[f32]) -> f64 {
            self.calls.fetch_add(1, Ordering::Relaxed);
            self.value
        }
        fn gradient(&self, e: &[f32]) -> Vec<f32> {
            vec![0.0; e.len()]
        }
    }
    impl BatchPredictor for Probe {}

    struct Lut;
    impl Predictor for Lut {
        fn predict_encoding(&self, _e: &[f32]) -> f64 {
            42.0
        }
        fn gradient(&self, e: &[f32]) -> Vec<f32> {
            vec![0.0; e.len()]
        }
    }

    fn tiny_config() -> ServiceConfig {
        ServiceConfig {
            admission: AdmissionPolicy {
                capacity: 4,
                normal_mark: 3,
                low_mark: 2,
            },
            breaker: BreakerConfig {
                trip_after: 2,
                open_for: Duration::from_millis(10),
                trial_successes: 1,
            },
            max_batch: 4,
            retry_budget: 0,
            default_deadline: None,
        }
    }

    #[test]
    fn healthy_requests_round_trip_batched() {
        let (primary, lut, clock) = (Probe::healthy(), Lut, VirtualClock::new());
        let svc = PredictorService::new(&primary, &lut, &clock, tiny_config());
        for _ in 0..3 {
            svc.submit(Request::new(vec![0.5; 4])).expect("admitted");
        }
        assert_eq!(svc.pump(), 3, "one coalesced batch");
        let responses = svc.take_responses();
        assert_eq!(responses.len(), 3);
        for r in &responses {
            let resp = r.outcome.as_ref().expect("served");
            assert_eq!(resp.value, 17.25);
            assert!(!resp.degraded);
            assert_eq!(resp.batch, 3);
        }
        assert_eq!(svc.fallback().degraded(), 0);
    }

    #[test]
    fn overload_is_rejected_typed_at_the_door() {
        let (primary, lut, clock) = (Probe::healthy(), Lut, VirtualClock::new());
        let svc = PredictorService::new(&primary, &lut, &clock, tiny_config());
        for _ in 0..2 {
            svc.submit(Request::new(vec![0.0]).with_priority(Priority::Low))
                .expect("below low mark");
        }
        let err = svc
            .submit(Request::new(vec![0.0]).with_priority(Priority::Low))
            .expect_err("low mark reached");
        assert!(matches!(err, ServeError::Overloaded { depth: 2, limit: 2 }));
        svc.submit(Request::new(vec![0.0]).with_priority(Priority::High))
            .expect("high still admitted");
        assert_eq!(svc.health().rejected_overloaded, 1);
    }

    #[test]
    fn tripped_breaker_routes_around_the_primary_then_recovers() {
        let (primary, lut, clock) = (Probe::broken(), Lut, VirtualClock::new());
        let svc = PredictorService::new(&primary, &lut, &clock, tiny_config());
        // Two NaN rows trip the breaker (trip_after = 2, no retries).
        for _ in 0..2 {
            svc.submit(Request::new(vec![0.0])).expect("admitted");
        }
        svc.pump();
        assert_eq!(svc.health().breaker, BreakerState::Open);
        let before = primary.calls();
        svc.submit(Request::new(vec![0.0])).expect("admitted");
        svc.pump();
        assert_eq!(
            primary.calls(),
            before,
            "open breaker never touches primary"
        );
        let served = svc.take_responses();
        let last = served.last().expect("served");
        assert_eq!(
            last.outcome.as_ref().expect("value").value,
            42.0,
            "LUT answer"
        );
        assert_eq!(svc.fallback().degraded_routed(), 1);
        // After the cool-down the next batch probes the primary again.
        clock.advance(Duration::from_millis(10));
        svc.submit(Request::new(vec![0.0])).expect("admitted");
        svc.pump();
        assert!(primary.calls() > before, "half-open probe reached primary");
        assert_eq!(
            svc.health().degraded,
            svc.fallback().degraded(),
            "service and fallback counters agree"
        );
    }

    #[test]
    fn queued_deadline_expiry_is_typed_not_dropped() {
        let (primary, lut, clock) = (Probe::healthy(), Lut, VirtualClock::new());
        let svc = PredictorService::new(&primary, &lut, &clock, tiny_config());
        let id = svc
            .submit(Request::new(vec![0.0]).with_deadline(Duration::from_millis(5)))
            .expect("admitted");
        clock.advance(Duration::from_millis(6));
        svc.pump();
        let served = svc.take_responses();
        assert_eq!(served.len(), 1);
        assert_eq!(served[0].id, id);
        assert!(matches!(
            served[0].outcome,
            Err(ServeError::Deadline { .. })
        ));
        // Already-expired submissions are refused at the door.
        let err = svc
            .submit(Request::new(vec![0.0]).with_deadline(Duration::from_millis(1)))
            .expect_err("past due");
        assert!(matches!(err, ServeError::Deadline { .. }));
        assert_eq!(svc.health().deadline_expired, 2);
    }

    #[test]
    fn drain_answers_everything_admitted_then_refuses() {
        let (primary, lut, clock) = (Probe::healthy(), Lut, VirtualClock::new());
        let svc = PredictorService::new(&primary, &lut, &clock, tiny_config());
        for _ in 0..3 {
            svc.submit(Request::new(vec![0.0])).expect("admitted");
        }
        let report = svc.drain();
        assert_eq!(report.served, 3);
        assert!(report.fully_accounted(), "{report:?}");
        assert!(matches!(
            svc.submit(Request::new(vec![0.0])),
            Err(ServeError::Draining)
        ));
        assert!(!svc.health().ready);
    }

    #[test]
    fn threaded_mode_loses_nothing_on_drain() {
        let (primary, lut, clock) = (Probe::healthy(), Lut, VirtualClock::new());
        let mut config = tiny_config();
        config.admission = AdmissionPolicy {
            capacity: 1024,
            normal_mark: 1024,
            low_mark: 1024,
        };
        let svc = PredictorService::new(&primary, &lut, &clock, config);
        let (admitted, report) = svc.run_threaded(3, |svc| {
            let mut admitted = 0u64;
            std::thread::scope(|s| {
                let counts: Vec<_> = (0..4)
                    .map(|_| {
                        s.spawn(|| {
                            (0..100)
                                .filter(|_| svc.submit(Request::new(vec![0.25; 8])).is_ok())
                                .count() as u64
                        })
                    })
                    .collect();
                for c in counts {
                    admitted += c.join().expect("producer");
                }
            });
            admitted
        });
        assert_eq!(admitted, 400, "queue was sized to admit everything");
        assert_eq!(report.served, 400, "zero dropped in flight");
        assert!(report.fully_accounted(), "{report:?}");
        assert_eq!(svc.take_responses().len(), 400);
    }
}
