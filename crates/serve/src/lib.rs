//! Overload-safe serving for the latency predictor (the production face of
//! paper Sec. 3.2's MLP).
//!
//! A trained [`MlpPredictor`](lightnas_predictor::MlpPredictor) answering
//! one caller in a loop is easy; answering *many* callers under bursty
//! load, with the model occasionally misbehaving, without ever dropping a
//! request on the floor — that is a serving problem, and this crate is the
//! serving layer:
//!
//! * [`PredictorService`] — bounded admission queue with per-priority
//!   watermarks ([`AdmissionPolicy`]), deadline awareness, batch
//!   coalescing onto the predictor's one-GEMM batched path, and graceful
//!   drain. Every refusal is a typed [`ServeError`].
//! * [`SearchService`] — the multi-tenant *search* front door: whole
//!   [`SearchJob`](lightnas_runtime::SearchJob) sweeps from named tenants,
//!   per-tenant [`TenantQuota`]s layered on the same admission watermarks
//!   (typed, audited [`SearchServeError`] refusals), executed on the
//!   runtime scheduler over one shared **sharded** predictor cache — every
//!   tenant's results byte-identical to a private serial run (DESIGN.md
//!   §16).
//! * [`CircuitBreaker`] — Closed → Open → HalfOpen guarding of the
//!   primary; while open, requests are answered from the LUT fallback via
//!   [`FallbackPredictor::degrade_encoding`](lightnas_predictor::FallbackPredictor::degrade_encoding),
//!   and deterministic trial scheduling probes for recovery.
//! * [`Clock`] — all time is injected; with a [`VirtualClock`] the whole
//!   service is a pure function of the request sequence, which is how the
//!   chaos soak asserts byte-identical telemetry across same-seed runs.
//! * [`ChaosPlan`] / [`ChaosPredictor`] — seeded, one-shot fault schedules
//!   (NaN bursts, panics, slow responses) in the same idiom as the
//!   runtime's `FaultPlan`; [`AdaptFault`]s additionally script drift
//!   bursts, stale predictors, and bad deploys against the adaptation
//!   layer.
//! * [`ServingTier`] — deploy-time choice of kernel tier and weight
//!   precision: strict bit-reproducible serving (default), opt-in fast
//!   kernels (`LIGHTNAS_KERNEL_MODE=fast`), or fast kernels over
//!   f16-stored weights (`LIGHTNAS_SERVE_WEIGHTS=f16`).
//! * [`AdaptationController`] / [`ModelSlot`] / [`DriftMonitor`] — the
//!   drift-safe adaptation layer: live samples stream in, staleness is
//!   detected from windowed residuals (RMSE ratio + Spearman rank
//!   correlation), a shadow is fine-tuned and validated on paired live
//!   traffic, and promotion/rollback is audited ([`AdaptEvent`]) with the
//!   breaker as the rollback blast door (see DESIGN.md §13).
//!
//! # Example
//!
//! ```no_run
//! use lightnas_hw::Xavier;
//! use lightnas_predictor::{LutPredictor, Metric, MetricDataset, MlpPredictor, TrainConfig};
//! use lightnas_serve::{PredictorService, Request, ServiceConfig, SystemClock};
//! use lightnas_space::SearchSpace;
//!
//! let space = SearchSpace::standard();
//! let device = Xavier::maxn();
//! let data = MetricDataset::sample(&device, &space, Metric::LatencyMs, 1000, 0);
//! let mlp = MlpPredictor::train(&data, &TrainConfig::default());
//! let lut = LutPredictor::build(&device, &space);
//! let clock = SystemClock::new();
//! let service = PredictorService::new(&mlp, &lut, &clock, ServiceConfig::default());
//! let id = service.submit(Request::new(data.encodings()[0].clone())).unwrap();
//! service.pump();
//! println!("{:?}", service.take_responses());
//! # let _ = id;
//! ```

mod adapt;
mod breaker;
mod chaos;
mod clock;
mod error;
mod health;
mod queue;
mod search;
mod service;
mod tier;

pub use adapt::{
    audit_is_well_formed, audit_is_well_formed_with, spearman, AdaptConfig, AdaptEvent,
    AdaptStatus, AdaptationController, AuditCarry, DriftMonitor, ModelSlot, ShadowTrainer,
    StalenessReport, DEFAULT_AUDIT_CAP,
};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, Transition};
pub use chaos::{
    AdaptFault, AdaptFaultKind, ChaosPlan, ChaosPredictor, FleetFault, FleetFaultKind, ServeFault,
    ServeFaultKind,
};
pub use clock::{Clock, SystemClock, VirtualClock};
pub use error::ServeError;
pub use health::{DeviceGeneration, HealthSnapshot};
pub use queue::{AdmissionPolicy, AdmissionQueue, Priority};
pub use search::{
    search_audit_is_well_formed, SearchEvent, SearchServeError, SearchService, SearchServiceConfig,
    SweepTicket, TenantQuota, TenantSweepReport,
};
pub use service::{DrainReport, PredictorService, Request, Response, Served, ServiceConfig};
pub use tier::{ServingTier, WEIGHTS_ENV};
