//! Typed rejection: the service never drops a request silently — every
//! request either gets an answer or one of these errors, and the chaos soak
//! asserts exactly that accounting.

use std::fmt;
use std::time::Duration;

/// Why the service refused (or failed) a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control turned the request away: the queue already held
    /// `depth` requests against this priority's watermark of `limit`.
    /// Back off and retry — nothing about the request itself is wrong.
    Overloaded {
        /// Queue depth observed at admission.
        depth: usize,
        /// The watermark the request's priority is admitted under.
        limit: usize,
    },
    /// The request's deadline expired — at admission (already past due) or
    /// while it waited in the queue.
    Deadline {
        /// The absolute deadline, in service-clock time.
        deadline: Duration,
        /// The service-clock time at which expiry was observed.
        now: Duration,
    },
    /// The service is draining for shutdown and admits nothing new.
    /// Everything admitted *before* the drain began still gets served.
    Draining,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { depth, limit } => {
                write!(f, "overloaded: queue depth {depth} at watermark {limit}")
            }
            ServeError::Deadline { deadline, now } => write!(
                f,
                "deadline expired: due at {:.3}ms, observed at {:.3}ms",
                deadline.as_secs_f64() * 1e3,
                now.as_secs_f64() * 1e3
            ),
            ServeError::Draining => write!(f, "service is draining"),
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    /// Short machine-readable tag for telemetry lines.
    pub fn tag(&self) -> &'static str {
        match self {
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::Deadline { .. } => "deadline",
            ServeError::Draining => "draining",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_evidence() {
        let e = ServeError::Overloaded {
            depth: 64,
            limit: 48,
        };
        assert!(e.to_string().contains("64"));
        assert!(e.to_string().contains("48"));
        assert_eq!(e.tag(), "overloaded");
        let d = ServeError::Deadline {
            deadline: Duration::from_millis(5),
            now: Duration::from_millis(9),
        };
        assert!(d.to_string().contains("5.000ms"), "{d}");
        assert_eq!(ServeError::Draining.tag(), "draining");
    }
}
