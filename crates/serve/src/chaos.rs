//! Deterministic chaos for the serving layer.
//!
//! Same philosophy as the runtime's `FaultPlan` (which this extends in
//! spirit and seeds from the same `splitmix64`): a robustness claim is only
//! testable if the failures are a *reproducible schedule*, not a dice roll
//! per run. A [`ChaosPlan`] maps primary-predictor **call indices** to
//! faults; [`ChaosPredictor`] wraps the real primary and misbehaves exactly
//! on schedule — NaN answers, panics mid-query, slow responses that burn
//! service-clock time — while the service under test stays completely
//! unaware it is being tested.
//!
//! Faults are one-shot per call index (atomically claimed), so retries hit
//! a *healthy* primary on their next call — which is precisely what lets
//! tests distinguish "retry budget works" from "fault never happened".

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use lightnas_predictor::{BatchPredictor, Predictor};
use lightnas_runtime::splitmix64;

use crate::clock::Clock;

/// One way the primary misbehaves on a scheduled call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFaultKind {
    /// The answer comes back NaN (poisoned weights, overflow, bad row).
    Nan,
    /// The primary panics mid-query.
    Panic,
    /// The primary answers correctly but takes `millis` of service-clock
    /// time to do it (stalled allocator, contended accelerator).
    Slow {
        /// Stall length in milliseconds.
        millis: u64,
    },
}

/// A fault bound to one primary call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeFault {
    /// 0-based index of the scalar primary call this fires on.
    pub call: u64,
    /// What happens.
    pub kind: ServeFaultKind,
}

/// One way the *adaptation loop* is attacked on a scheduled sample tick.
///
/// These extend the call-indexed [`ServeFaultKind`]s with the failure modes
/// the drift/promote/rollback machinery exists to survive. They are keyed by
/// **sample index** (the adaptation loop's virtual-clock tick), not primary
/// call index, because the loop observes one live sample per tick regardless
/// of how many predictor calls that tick costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdaptFaultKind {
    /// The device's latency surface steps by `scale` from this tick on
    /// (thermal throttle, power-mode flip) — the drift the monitor must
    /// detect.
    DriftBurst {
        /// Multiplicative latency factor (e.g. 1.35).
        scale: f64,
    },
    /// The *serving* model silently goes stale: its answers gain a constant
    /// `bias_ms` for `samples` ticks (weight corruption, bad cache entry) —
    /// staleness with no device drift at all.
    StalePredictor {
        /// Additive bias on every served prediction, ms.
        bias_ms: f64,
        /// How many sample ticks the corruption lasts.
        samples: u64,
    },
    /// The next promotion deploys a corrupted copy of the validated shadow
    /// (its predictions gain `bias_ms`) — the bad-deploy failure the
    /// rollback path exists for. The *validated* candidate was fine; the
    /// copy that reaches the serving slot is not.
    BadDeploy {
        /// Additive bias on the deployed generation's predictions, ms.
        bias_ms: f64,
    },
}

/// An adaptation fault bound to one sample tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptFault {
    /// 0-based sample index (adaptation tick) this fires on.
    pub at_sample: u64,
    /// What happens.
    pub kind: AdaptFaultKind,
}

/// One way an entire *fleet* is attacked on a scheduled tick.
///
/// Fleet faults address devices by their index in the fleet registry
/// (e.g. [`DeviceFleet::standard`] order), not by name — the chaos schedule
/// must stay valid even when a device is renamed.
///
/// [`DeviceFleet::standard`]: https://docs.rs/lightnas-fleet
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetFaultKind {
    /// A correlated drift event: every device whose index bit is set in
    /// `device_mask` steps its latency surface by `scale` from this tick on
    /// (a heat wave hitting the whole rack, a fleet-wide DVFS policy push).
    CorrelatedDriftBurst {
        /// Bit `i` set ⇒ fleet device `i` drifts.
        device_mask: u64,
        /// Multiplicative latency factor applied to each masked device.
        scale: f64,
    },
    /// The shared retrain pool is starved (workers seized by a competing
    /// tenant): zero retrain admissions for `ticks` ticks. Flagged devices
    /// queue and must neither deadlock nor serve an unvalidated shadow.
    PoolStarvation {
        /// How many ticks the pool admits nothing.
        ticks: u64,
    },
    /// Device `device`'s *next* promotion deploys corrupted (predictions
    /// gain `bias_ms`) — scheduled to land while another device is mid-
    /// promotion, proving per-device rollback independence.
    BadDeploy {
        /// Fleet index of the sabotaged device.
        device: u32,
        /// Additive bias on the deployed generation's predictions, ms.
        bias_ms: f64,
    },
}

/// A fleet fault bound to one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetFault {
    /// 0-based fleet tick this fires on.
    pub at_sample: u64,
    /// What happens.
    pub kind: FleetFaultKind,
}

/// A reproducible, one-shot schedule of serving faults.
#[derive(Debug, Default)]
pub struct ChaosPlan {
    faults: Vec<ServeFault>,
    fired: Vec<AtomicBool>,
    adapt_faults: Vec<AdaptFault>,
    adapt_fired: Vec<AtomicBool>,
    fleet_faults: Vec<FleetFault>,
    fleet_fired: Vec<AtomicBool>,
}

impl ChaosPlan {
    /// The empty plan: a perfectly healthy primary.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan firing exactly the given faults, each at most once.
    pub fn new(mut faults: Vec<ServeFault>) -> Self {
        faults.sort_by_key(|f| f.call);
        faults.dedup_by_key(|f| f.call);
        let fired = faults.iter().map(|_| AtomicBool::new(false)).collect();
        Self {
            faults,
            fired,
            ..Self::default()
        }
    }

    /// Adds tick-scheduled adaptation faults to the plan.
    ///
    /// Unlike call-indexed faults (dedup'd — one per call), several
    /// adaptation faults may share a tick, and they fire in **insertion
    /// order** within it: the sort below is stable and keys on the tick
    /// only. (The first cut of this schedule sorted by `(tick, kind
    /// discriminant)`, so a same-tick `DriftBurst` + `BadDeploy` pair fired
    /// in kind order on one platform and insertion order after a refactor —
    /// the byte-identity soak caught it; the regression test now pins
    /// insertion order.)
    pub fn with_adapt_faults(mut self, faults: Vec<AdaptFault>) -> Self {
        self.adapt_faults = faults;
        self.adapt_faults.sort_by_key(|f| f.at_sample);
        self.adapt_fired = self
            .adapt_faults
            .iter()
            .map(|_| AtomicBool::new(false))
            .collect();
        self
    }

    /// Adds tick-scheduled fleet faults to the plan. Same ordering contract
    /// as [`with_adapt_faults`](Self::with_adapt_faults): the sort is stable
    /// and keys on the tick only, so same-tick faults fire in insertion
    /// order.
    pub fn with_fleet_faults(mut self, faults: Vec<FleetFault>) -> Self {
        self.fleet_faults = faults;
        self.fleet_faults.sort_by_key(|f| f.at_sample);
        self.fleet_fired = self
            .fleet_faults
            .iter()
            .map(|_| AtomicBool::new(false))
            .collect();
        self
    }

    /// A seeded plan over roughly `calls` primary calls, covering all three
    /// fault classes: NaN *bursts* (consecutive bad answers, the pattern
    /// that trips a circuit breaker), isolated panics, and slow responses.
    /// Same seed, same plan — byte for byte.
    pub fn seeded(seed: u64, calls: u64) -> Self {
        let calls = calls.max(64);
        let mut s = seed ^ 0x9e3d_52c9_b1e0_77a5;
        let mut faults = Vec::new();
        // NaN bursts: enough consecutive failures to trip a default
        // breaker, several times over the run.
        let bursts = (calls / 400).max(2);
        for _ in 0..bursts {
            let start = splitmix64(&mut s) % calls;
            let len = 3 + splitmix64(&mut s) % 5;
            for k in 0..len {
                faults.push(ServeFault {
                    call: start + k,
                    kind: ServeFaultKind::Nan,
                });
            }
        }
        // Isolated panics.
        for _ in 0..(calls / 800).max(2) {
            faults.push(ServeFault {
                call: splitmix64(&mut s) % calls,
                kind: ServeFaultKind::Panic,
            });
        }
        // Slow responses: long enough to push queued deadlines past due.
        for _ in 0..(calls / 600).max(2) {
            faults.push(ServeFault {
                call: splitmix64(&mut s) % calls,
                kind: ServeFaultKind::Slow {
                    millis: 2 + splitmix64(&mut s) % 30,
                },
            });
        }
        Self::new(faults)
    }

    /// The scheduled faults, sorted by call index.
    pub fn faults(&self) -> &[ServeFault] {
        &self.faults
    }

    /// How many faults have fired so far.
    pub fn fired(&self) -> usize {
        self.fired
            .iter()
            .filter(|f| f.load(Ordering::Relaxed))
            .count()
    }

    /// Claims the fault scheduled for `call`, at most once.
    pub fn take(&self, call: u64) -> Option<ServeFaultKind> {
        let idx = self.faults.binary_search_by_key(&call, |f| f.call).ok()?;
        self.fired[idx]
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .ok()
            .map(|_| self.faults[idx].kind)
    }

    /// The scheduled adaptation faults (tick order; same-tick faults in
    /// insertion order).
    pub fn adapt_faults(&self) -> &[AdaptFault] {
        &self.adapt_faults
    }

    /// How many adaptation faults have fired so far.
    pub fn adapt_fired(&self) -> usize {
        self.adapt_fired
            .iter()
            .filter(|f| f.load(Ordering::Relaxed))
            .count()
    }

    /// Claims every adaptation fault scheduled for `sample`, each at most
    /// once, **in insertion order** — the contract the one-shot/virtual-
    /// clock regression test pins (a tick is one instant on a virtual
    /// clock, so only insertion order can break ties deterministically).
    pub fn take_adapt(&self, sample: u64) -> Vec<AdaptFaultKind> {
        // Walk to the first fault at this tick (binary_search may land
        // anywhere inside an equal run), then claim the run left to right.
        let start = self.adapt_faults.partition_point(|f| f.at_sample < sample);
        self.adapt_faults[start..]
            .iter()
            .take_while(|f| f.at_sample == sample)
            .enumerate()
            .filter_map(|(k, f)| {
                self.adapt_fired[start + k]
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .ok()
                    .map(|_| f.kind)
            })
            .collect()
    }

    /// The scheduled fleet faults (tick order; same-tick faults in
    /// insertion order).
    pub fn fleet_faults(&self) -> &[FleetFault] {
        &self.fleet_faults
    }

    /// How many fleet faults have fired so far.
    pub fn fleet_fired(&self) -> usize {
        self.fleet_fired
            .iter()
            .filter(|f| f.load(Ordering::Relaxed))
            .count()
    }

    /// Claims every fleet fault scheduled for `sample`, each at most once,
    /// in insertion order — the same one-shot/virtual-clock contract as
    /// [`take_adapt`](Self::take_adapt).
    pub fn take_fleet(&self, sample: u64) -> Vec<FleetFaultKind> {
        let start = self.fleet_faults.partition_point(|f| f.at_sample < sample);
        self.fleet_faults[start..]
            .iter()
            .take_while(|f| f.at_sample == sample)
            .enumerate()
            .filter_map(|(k, f)| {
                self.fleet_fired[start + k]
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .ok()
                    .map(|_| f.kind)
            })
            .collect()
    }
}

/// The real primary wrapped in a [`ChaosPlan`]: misbehaves exactly on
/// schedule, is the primary otherwise. Batched queries go through the
/// per-row path so each row consumes one call index — a mid-batch panic
/// aborts the whole batch, exactly like a real in-process crash would.
#[derive(Debug)]
pub struct ChaosPredictor<'a, P> {
    inner: &'a P,
    plan: &'a ChaosPlan,
    clock: &'a dyn Clock,
    calls: AtomicU64,
}

impl<'a, P: Predictor> ChaosPredictor<'a, P> {
    /// Wraps `inner`, misbehaving per `plan` on `clock` time.
    pub fn new(inner: &'a P, plan: &'a ChaosPlan, clock: &'a dyn Clock) -> Self {
        Self {
            inner,
            plan,
            clock,
            calls: AtomicU64::new(0),
        }
    }

    /// Scalar primary calls made so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl<P: Predictor> Predictor for ChaosPredictor<'_, P> {
    fn predict_encoding(&self, encoding: &[f32]) -> f64 {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        match self.plan.take(call) {
            Some(ServeFaultKind::Nan) => f64::NAN,
            Some(ServeFaultKind::Panic) => {
                panic!("injected chaos: primary panic on call {call}")
            }
            Some(ServeFaultKind::Slow { millis }) => {
                self.clock.sleep(Duration::from_millis(millis));
                self.inner.predict_encoding(encoding)
            }
            None => self.inner.predict_encoding(encoding),
        }
    }

    fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
        self.inner.gradient(encoding)
    }
}

impl<P: Predictor> BatchPredictor for ChaosPredictor<'_, P> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    struct Constant;
    impl Predictor for Constant {
        fn predict_encoding(&self, _e: &[f32]) -> f64 {
            17.25
        }
        fn gradient(&self, e: &[f32]) -> Vec<f32> {
            vec![0.0; e.len()]
        }
    }

    #[test]
    fn seeded_plans_reproduce_and_cover_all_classes() {
        let a = ChaosPlan::seeded(11, 5000);
        let b = ChaosPlan::seeded(11, 5000);
        assert_eq!(a.faults(), b.faults());
        assert_ne!(a.faults(), ChaosPlan::seeded(12, 5000).faults());
        let has = |k: fn(&ServeFaultKind) -> bool| a.faults().iter().any(|f| k(&f.kind));
        assert!(has(|k| matches!(k, ServeFaultKind::Nan)));
        assert!(has(|k| matches!(k, ServeFaultKind::Panic)));
        assert!(has(|k| matches!(k, ServeFaultKind::Slow { .. })));
    }

    #[test]
    fn same_tick_adapt_faults_fire_in_insertion_order_exactly_once() {
        // Regression: one-shot faults scheduled at the *same* virtual-clock
        // tick must fire in insertion order (a tick is a single instant on
        // a VirtualClock, so nothing else can order them deterministically).
        // Insertion order here is deliberately NOT kind order or magnitude
        // order.
        let plan = ChaosPlan::none().with_adapt_faults(vec![
            AdaptFault {
                at_sample: 7,
                kind: AdaptFaultKind::StalePredictor {
                    bias_ms: 4.0,
                    samples: 10,
                },
            },
            AdaptFault {
                at_sample: 3,
                kind: AdaptFaultKind::DriftBurst { scale: 1.5 },
            },
            AdaptFault {
                at_sample: 7,
                kind: AdaptFaultKind::DriftBurst { scale: 1.2 },
            },
            AdaptFault {
                at_sample: 7,
                kind: AdaptFaultKind::BadDeploy { bias_ms: 9.0 },
            },
        ]);
        assert!(plan.take_adapt(0).is_empty());
        assert_eq!(
            plan.take_adapt(3),
            vec![AdaptFaultKind::DriftBurst { scale: 1.5 }]
        );
        assert_eq!(
            plan.take_adapt(7),
            vec![
                AdaptFaultKind::StalePredictor {
                    bias_ms: 4.0,
                    samples: 10,
                },
                AdaptFaultKind::DriftBurst { scale: 1.2 },
                AdaptFaultKind::BadDeploy { bias_ms: 9.0 },
            ],
            "same-tick faults must fire in insertion order"
        );
        assert!(
            plan.take_adapt(7).is_empty(),
            "one-shot: a tick never re-fires"
        );
        assert_eq!(plan.adapt_fired(), 4);
        // Call-indexed faults are untouched by the adaptation schedule.
        assert!(plan.faults().is_empty());
    }

    #[test]
    fn fleet_faults_are_one_shot_and_insertion_ordered_like_adapt_faults() {
        let plan = ChaosPlan::none().with_fleet_faults(vec![
            FleetFault {
                at_sample: 96,
                kind: FleetFaultKind::BadDeploy {
                    device: 4,
                    bias_ms: 9.0,
                },
            },
            FleetFault {
                at_sample: 96,
                kind: FleetFaultKind::CorrelatedDriftBurst {
                    device_mask: 0b01001,
                    scale: 1.35,
                },
            },
            FleetFault {
                at_sample: 40,
                kind: FleetFaultKind::PoolStarvation { ticks: 32 },
            },
        ]);
        assert!(plan.take_fleet(0).is_empty());
        assert_eq!(
            plan.take_fleet(40),
            vec![FleetFaultKind::PoolStarvation { ticks: 32 }]
        );
        assert_eq!(
            plan.take_fleet(96),
            vec![
                FleetFaultKind::BadDeploy {
                    device: 4,
                    bias_ms: 9.0,
                },
                FleetFaultKind::CorrelatedDriftBurst {
                    device_mask: 0b01001,
                    scale: 1.35,
                },
            ],
            "same-tick fleet faults fire in insertion order"
        );
        assert!(plan.take_fleet(96).is_empty(), "one-shot per tick");
        assert_eq!(plan.fleet_fired(), 3);
        // The per-device and per-call schedules are untouched.
        assert!(plan.faults().is_empty());
        assert!(plan.adapt_faults().is_empty());
    }

    #[test]
    fn faults_fire_on_schedule_exactly_once() {
        let clock = VirtualClock::new();
        let plan = ChaosPlan::new(vec![
            ServeFault {
                call: 1,
                kind: ServeFaultKind::Nan,
            },
            ServeFault {
                call: 2,
                kind: ServeFaultKind::Slow { millis: 4 },
            },
        ]);
        let chaos = ChaosPredictor::new(&Constant, &plan, &clock);
        assert_eq!(chaos.predict_encoding(&[]), 17.25, "call 0 is healthy");
        assert!(chaos.predict_encoding(&[]).is_nan(), "call 1 is the NaN");
        assert_eq!(chaos.predict_encoding(&[]), 17.25, "call 2 answers");
        assert_eq!(clock.now(), Duration::from_millis(4), "but slowly");
        assert_eq!(plan.fired(), 2);
        assert_eq!(chaos.calls(), 3);
    }
}
