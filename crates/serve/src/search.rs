//! The multi-tenant search service: whole sweep jobs behind admission
//! control, one sharded predictor cache shared by every tenant.
//!
//! `PredictorService` serves single *queries*; this module serves whole
//! *searches*. A [`SearchService`] accepts [`SearchJob`] sweeps from named
//! tenants, queues them under the shared [`AdmissionPolicy`] watermarks
//! *plus* a per-tenant [`TenantQuota`], and executes everything queued on
//! the runtime's `JobScheduler`/supervisor substrate through one
//! [`CachedPredictor`] — the sharded cache is the scale-out asset: tenants
//! sweeping neighbouring targets hit each other's cached predictions, so
//! the fleet-wide cost of "search once per tenant" approaches the cost of
//! searching once, which is the paper's premise operationalized.
//!
//! Fairness is structural, not scheduled: a tenant's quota
//! ([`TenantQuota::max_queued_jobs`], default 24) is deliberately smaller
//! than the [`Priority::Normal`] watermark (48 of 64), so no single tenant
//! can occupy another tenant's admission headroom — the flooding tenant
//! hits its own (typed, audited) [`SearchServeError::QuotaExceeded`] wall
//! first. Execution is strictly FIFO in admission order, and results are
//! deterministic: the scheduler returns index-ordered statuses and the
//! shared cache never changes a value, so every tenant's sweep is
//! byte-identical to a serial run of the same jobs on a private predictor
//! (the `scale_bench` exhibit asserts exactly this).
//!
//! See DESIGN.md §16 for the full scale-out contract.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use lightnas_eval::AccuracyOracle;
use lightnas_predictor::{CacheSnapshot, CacheStats, CachedPredictor, Predictor};
use lightnas_runtime::{
    events, run_sweep_shared, FaultPlan, Field, JobStatus, SearchJob, SweepOptions, SweepReport,
    Telemetry,
};

use crate::breaker::BreakerState;
use crate::health::HealthSnapshot;
use crate::queue::{AdmissionPolicy, Priority};

/// How much of the service one tenant may occupy: the number of *jobs*
/// (not sweeps) it may have queued at once. Kept below the shared
/// [`Priority::Normal`] watermark by default so a flooding tenant runs
/// into its own quota before it can exhaust the queue for everyone else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum jobs this tenant may have queued at once.
    pub max_queued_jobs: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        Self {
            max_queued_jobs: 24,
        }
    }
}

/// Knobs of a [`SearchService`].
#[derive(Debug, Clone)]
pub struct SearchServiceConfig {
    /// Shared watermarks over the total queued-job depth (all tenants).
    pub admission: AdmissionPolicy,
    /// Quota applied to tenants without an explicit entry in `quotas`.
    pub default_quota: TenantQuota,
    /// Per-tenant quota overrides (e.g. a paying tenant gets more).
    pub quotas: HashMap<String, TenantQuota>,
    /// How many shards the shared predictor cache is split across.
    pub cache_shards: usize,
    /// How each drained batch executes (workers, retries, checkpoints, …).
    pub sweep: SweepOptions,
}

impl Default for SearchServiceConfig {
    fn default() -> Self {
        Self {
            admission: AdmissionPolicy::default(),
            default_quota: TenantQuota::default(),
            quotas: HashMap::new(),
            cache_shards: lightnas_predictor::DEFAULT_CACHE_SHARDS,
            sweep: SweepOptions::default(),
        }
    }
}

impl SearchServiceConfig {
    /// The quota `tenant` is admitted under.
    pub fn quota_for(&self, tenant: &str) -> TenantQuota {
        self.quotas
            .get(tenant)
            .copied()
            .unwrap_or(self.default_quota)
    }
}

/// Why the search service refused a sweep. Every refusal is returned *and*
/// recorded in the audit trail — a rejected tenant can always reconstruct
/// what happened from either side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchServeError {
    /// The tenant's own quota is the binding constraint: it already had
    /// `queued` jobs in, submitted `submitted` more, and its quota is
    /// `limit`. Other tenants are unaffected — back off and resubmit after
    /// [`SearchService::run_queued`] drains the queue.
    QuotaExceeded {
        /// The tenant that hit its quota.
        tenant: String,
        /// Jobs the tenant already had queued.
        queued: usize,
        /// Jobs in the rejected submission.
        submitted: usize,
        /// The tenant's quota ([`TenantQuota::max_queued_jobs`]).
        limit: usize,
    },
    /// The *shared* queue is the binding constraint: total queued depth
    /// `depth` plus the submission would breach this priority's watermark
    /// `limit`.
    Overloaded {
        /// Total jobs queued (all tenants) at admission.
        depth: usize,
        /// The priority's watermark.
        limit: usize,
    },
    /// The service is draining for shutdown and admits nothing new.
    Draining,
    /// The submission contained no jobs.
    EmptySweep,
}

impl std::fmt::Display for SearchServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchServeError::QuotaExceeded {
                tenant,
                queued,
                submitted,
                limit,
            } => write!(
                f,
                "tenant {tenant:?} quota exceeded: {queued} queued + {submitted} submitted > {limit}"
            ),
            SearchServeError::Overloaded { depth, limit } => {
                write!(f, "overloaded: {depth} jobs queued at watermark {limit}")
            }
            SearchServeError::Draining => write!(f, "search service is draining"),
            SearchServeError::EmptySweep => write!(f, "sweep contains no jobs"),
        }
    }
}

impl std::error::Error for SearchServeError {}

impl SearchServeError {
    /// Short machine-readable tag for telemetry and audit lines.
    pub fn tag(&self) -> &'static str {
        match self {
            SearchServeError::QuotaExceeded { .. } => "quota",
            SearchServeError::Overloaded { .. } => "overloaded",
            SearchServeError::Draining => "draining",
            SearchServeError::EmptySweep => "empty",
        }
    }
}

/// One entry of the service's typed audit trail, in event order.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchEvent {
    /// A sweep entered the queue.
    SweepAdmitted {
        /// Service-assigned sweep id (monotonic across submissions).
        sweep: u64,
        /// Submitting tenant.
        tenant: String,
        /// Admission priority.
        priority: Priority,
        /// Jobs in the sweep.
        jobs: usize,
        /// Total queued jobs (all tenants) after admission.
        queued_jobs: usize,
    },
    /// A sweep was turned away, with the exact typed error it got.
    SweepRejected {
        /// Service-assigned sweep id.
        sweep: u64,
        /// Submitting tenant.
        tenant: String,
        /// Admission priority.
        priority: Priority,
        /// Jobs in the rejected submission.
        jobs: usize,
        /// The typed refusal the caller received.
        error: SearchServeError,
    },
    /// A sweep finished executing.
    SweepDone {
        /// Service-assigned sweep id.
        sweep: u64,
        /// Submitting tenant.
        tenant: String,
        /// Jobs that completed.
        completed: usize,
        /// Jobs that exhausted retries.
        failed: usize,
        /// Jobs interrupted by the epoch budget.
        interrupted: usize,
    },
}

/// A queued-but-not-yet-executed sweep's receipt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepTicket {
    /// Service-assigned sweep id; matches the audit trail and the eventual
    /// [`TenantSweepReport::sweep`].
    pub sweep: u64,
    /// Position in the execution queue at admission (0 = next to run).
    pub position: usize,
}

/// One tenant's finished sweep, as returned by
/// [`SearchService::run_queued`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSweepReport {
    /// Service-assigned sweep id (from the [`SweepTicket`]).
    pub sweep: u64,
    /// The tenant that submitted it.
    pub tenant: String,
    /// Admission priority it ran under.
    pub priority: Priority,
    /// Per-job statuses **re-indexed to the sweep's own job list** (status
    /// `index` fields count from 0 within this sweep, exactly as a private
    /// [`run_sweep`](lightnas_runtime::run_sweep) of the same jobs would
    /// report them).
    pub statuses: Vec<JobStatus>,
}

impl TenantSweepReport {
    /// `true` when every job completed.
    pub fn all_completed(&self) -> bool {
        self.statuses.iter().all(|s| s.completed().is_some())
    }
}

#[derive(Debug)]
struct QueuedSweep {
    sweep: u64,
    tenant: String,
    priority: Priority,
    jobs: Vec<SearchJob>,
}

#[derive(Debug, Default)]
struct ServiceState {
    queue: VecDeque<QueuedSweep>,
    /// Total queued jobs — the depth the watermarks police.
    queued_jobs: usize,
    /// Queued jobs per tenant — the depth the quotas police.
    per_tenant: HashMap<String, usize>,
    draining: bool,
    next_sweep: u64,
}

/// The multi-tenant search front door. See the module docs for the
/// fairness and determinism contracts.
#[derive(Debug)]
pub struct SearchService<'a, P: Predictor + Sync> {
    oracle: &'a AccuracyOracle,
    cached: CachedPredictor<'a, P>,
    config: SearchServiceConfig,
    telemetry: Option<&'a Telemetry>,
    state: Mutex<ServiceState>,
    audit: Mutex<Vec<SearchEvent>>,
    submitted_sweeps: AtomicU64,
    executed_sweeps: AtomicU64,
    rejected_sweeps: AtomicU64,
    rejected_draining: AtomicU64,
}

impl<'a, P: Predictor + Sync> SearchService<'a, P> {
    /// A service over `predictor`, wrapped in a fresh sharded cache with
    /// [`SearchServiceConfig::cache_shards`] shards.
    pub fn new(
        oracle: &'a AccuracyOracle,
        predictor: &'a P,
        config: SearchServiceConfig,
        telemetry: Option<&'a Telemetry>,
    ) -> Self {
        let cached = CachedPredictor::with_shards(predictor, config.cache_shards);
        Self {
            oracle,
            cached,
            config,
            telemetry,
            state: Mutex::new(ServiceState::default()),
            audit: Mutex::new(Vec::new()),
            submitted_sweeps: AtomicU64::new(0),
            executed_sweeps: AtomicU64::new(0),
            rejected_sweeps: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
        }
    }

    /// The service's configuration.
    pub fn config(&self) -> &SearchServiceConfig {
        &self.config
    }

    /// The shared cache's merged hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cached.stats()
    }

    /// A per-shard-consistent snapshot of the shared cache.
    pub fn cache_snapshot(&self) -> CacheSnapshot {
        self.cached.snapshot()
    }

    /// Total jobs currently queued, over all tenants.
    pub fn queued_jobs(&self) -> usize {
        self.lock_state().queued_jobs
    }

    /// Jobs currently queued by `tenant`.
    pub fn queued_jobs_for(&self, tenant: &str) -> usize {
        self.lock_state()
            .per_tenant
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }

    /// The audit trail so far, in event order.
    pub fn audit(&self) -> Vec<SearchEvent> {
        self.audit
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Stops admission. Sweeps already queued still execute on the next
    /// [`run_queued`](Self::run_queued).
    pub fn drain(&self) {
        self.lock_state().draining = true;
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, ServiceState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn record(&self, event: SearchEvent) {
        self.audit
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event);
    }

    /// Submits one tenant sweep. On admission the sweep joins the FIFO
    /// execution queue and the returned [`SweepTicket`] names it; every
    /// refusal is typed, audited, and emitted to telemetry.
    ///
    /// Admission is two-gated, checked in this order: the tenant's own
    /// [`TenantQuota`] (its queued jobs plus this submission must fit), then
    /// the shared [`AdmissionPolicy`] watermark for `priority` (total queued
    /// jobs plus this submission must fit). Quota first, so a flooding
    /// tenant is told about *its* limit, not the shared one.
    ///
    /// # Errors
    ///
    /// [`SearchServeError::Draining`] after [`drain`](Self::drain);
    /// [`SearchServeError::EmptySweep`] for zero jobs;
    /// [`SearchServeError::QuotaExceeded`] /
    /// [`SearchServeError::Overloaded`] per the gates above.
    pub fn submit_sweep(
        &self,
        tenant: &str,
        priority: Priority,
        jobs: Vec<SearchJob>,
    ) -> Result<SweepTicket, SearchServeError> {
        self.submitted_sweeps.fetch_add(1, Ordering::Relaxed);
        let mut state = self.lock_state();
        let sweep = state.next_sweep;
        state.next_sweep += 1;
        let verdict = if state.draining {
            Err(SearchServeError::Draining)
        } else if jobs.is_empty() {
            Err(SearchServeError::EmptySweep)
        } else {
            let queued = state.per_tenant.get(tenant).copied().unwrap_or(0);
            let quota = self.config.quota_for(tenant).max_queued_jobs;
            let depth = state.queued_jobs;
            let limit = self.config.admission.limit(priority);
            if queued + jobs.len() > quota {
                Err(SearchServeError::QuotaExceeded {
                    tenant: tenant.to_string(),
                    queued,
                    submitted: jobs.len(),
                    limit: quota,
                })
            } else if depth + jobs.len() > limit {
                Err(SearchServeError::Overloaded { depth, limit })
            } else {
                Ok(())
            }
        };
        match verdict {
            Ok(()) => {
                let n = jobs.len();
                let position = state.queue.len();
                state.queued_jobs += n;
                *state.per_tenant.entry(tenant.to_string()).or_insert(0) += n;
                let queued_jobs = state.queued_jobs;
                state.queue.push_back(QueuedSweep {
                    sweep,
                    tenant: tenant.to_string(),
                    priority,
                    jobs,
                });
                drop(state);
                self.record(SearchEvent::SweepAdmitted {
                    sweep,
                    tenant: tenant.to_string(),
                    priority,
                    jobs: n,
                    queued_jobs,
                });
                if let Some(t) = self.telemetry {
                    t.emit(
                        events::SEARCH_SWEEP_ADMITTED,
                        &[
                            ("sweep", Field::U(sweep)),
                            ("tenant", Field::S(tenant.to_string())),
                            ("priority", Field::S(priority.tag().to_string())),
                            ("jobs", Field::U(n as u64)),
                            ("queued_jobs", Field::U(queued_jobs as u64)),
                        ],
                    );
                }
                Ok(SweepTicket { sweep, position })
            }
            Err(error) => {
                drop(state);
                if matches!(error, SearchServeError::Draining) {
                    self.rejected_draining.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.rejected_sweeps.fetch_add(1, Ordering::Relaxed);
                }
                self.record(SearchEvent::SweepRejected {
                    sweep,
                    tenant: tenant.to_string(),
                    priority,
                    jobs: 0,
                    error: error.clone(),
                });
                if let Some(t) = self.telemetry {
                    t.emit(
                        events::SEARCH_SWEEP_REJECTED,
                        &[
                            ("sweep", Field::U(sweep)),
                            ("tenant", Field::S(tenant.to_string())),
                            ("priority", Field::S(priority.tag().to_string())),
                            ("reason", Field::S(error.tag().to_string())),
                        ],
                    );
                }
                Err(error)
            }
        }
    }

    /// Executes everything queued, FIFO in admission order, as **one**
    /// scheduler run over the shared cache, and returns one report per
    /// sweep (admission order, statuses re-indexed per sweep).
    ///
    /// Flattening all tenants into one run is what makes the shared cache
    /// pay: a miss computed for tenant A is a hit for tenant B in the same
    /// batch. It never changes results — scheduler results are
    /// index-ordered regardless of worker interleaving, and memoization
    /// returns exactly the values a private predictor would — so each
    /// returned report is byte-identical to a serial, single-tenant
    /// [`run_sweep`](lightnas_runtime::run_sweep) of the same jobs.
    pub fn run_queued(&self) -> Vec<TenantSweepReport> {
        let batch: Vec<QueuedSweep> = {
            let mut state = self.lock_state();
            state.queued_jobs = 0;
            state.per_tenant.clear();
            state.queue.drain(..).collect()
        };
        if batch.is_empty() {
            return Vec::new();
        }
        let flat: Vec<SearchJob> = batch.iter().flat_map(|s| s.jobs.iter().copied()).collect();
        let report: SweepReport = run_sweep_shared(
            self.oracle,
            &self.cached,
            &flat,
            &self.config.sweep,
            self.telemetry,
            &FaultPlan::none(),
        );

        let mut out = Vec::with_capacity(batch.len());
        let mut offset = 0usize;
        for queued in batch {
            let n = queued.jobs.len();
            let statuses: Vec<JobStatus> = report.statuses[offset..offset + n]
                .iter()
                .cloned()
                .map(|mut s| {
                    // Re-index to the sweep's own job list so the report
                    // reads exactly like a private run of those jobs.
                    match &mut s {
                        JobStatus::Completed(r) => r.index -= offset,
                        JobStatus::Interrupted { index, .. } => *index -= offset,
                        JobStatus::Failed { index, .. } => *index -= offset,
                    }
                    s
                })
                .collect();
            offset += n;
            let completed = statuses.iter().filter(|s| s.completed().is_some()).count();
            let failed = statuses.iter().filter(|s| s.failed().is_some()).count();
            let interrupted = statuses.len() - completed - failed;
            self.executed_sweeps.fetch_add(1, Ordering::Relaxed);
            self.record(SearchEvent::SweepDone {
                sweep: queued.sweep,
                tenant: queued.tenant.clone(),
                completed,
                failed,
                interrupted,
            });
            if let Some(t) = self.telemetry {
                t.emit(
                    events::SEARCH_SWEEP_DONE,
                    &[
                        ("sweep", Field::U(queued.sweep)),
                        ("tenant", Field::S(queued.tenant.clone())),
                        ("completed", Field::U(completed as u64)),
                        ("failed", Field::U(failed as u64)),
                        ("interrupted", Field::U(interrupted as u64)),
                    ],
                );
            }
            out.push(TenantSweepReport {
                sweep: queued.sweep,
                tenant: queued.tenant,
                priority: queued.priority,
                statuses,
            });
        }
        if let Some(t) = self.telemetry {
            let snap = self.cached.snapshot();
            t.emit(
                events::SEARCH_CACHE_STATS,
                &[
                    ("cache_hits", Field::U(snap.stats.hits)),
                    ("cache_misses", Field::U(snap.stats.misses)),
                    ("cache_hit_rate", Field::F(snap.stats.hit_rate())),
                    ("cache_shards", Field::U(snap.shards.len() as u64)),
                    (
                        "cached_values",
                        Field::U((snap.predictions + snap.gradients) as u64),
                    ),
                ],
            );
        }
        out
    }

    /// Health/readiness snapshot. Sweep counters map onto the shared
    /// [`HealthSnapshot`] vocabulary (`submitted`/`served`/rejections count
    /// *sweeps*; `queue_depth` counts queued *jobs*), and the shared
    /// cache's counters and per-shard occupancy ride along in the cache
    /// fields — zero/empty (and serialization-invisible) for services
    /// without a cache, exactly like the adaptation and fleet blocks.
    pub fn health(&self) -> HealthSnapshot {
        let (queue_depth, draining) = {
            let state = self.lock_state();
            (state.queued_jobs, state.draining)
        };
        let snap = self.cached.snapshot();
        HealthSnapshot {
            ready: !draining,
            draining,
            queue_depth,
            breaker: BreakerState::Closed,
            submitted: self.submitted_sweeps.load(Ordering::Relaxed),
            served: self.executed_sweeps.load(Ordering::Relaxed),
            degraded: 0,
            rejected_overloaded: self.rejected_sweeps.load(Ordering::Relaxed),
            rejected_draining: self.rejected_draining.load(Ordering::Relaxed),
            deadline_expired: 0,
            batches: 0,
            model_generation: 0,
            staleness_samples: 0,
            staleness_age: std::time::Duration::ZERO,
            fleet: Vec::new(),
            cache_hits: snap.stats.hits,
            cache_misses: snap.stats.misses,
            cache_shards: snap
                .shards
                .iter()
                .map(|s| (s.predictions + s.gradients) as u64)
                .collect(),
        }
    }
}

/// Audit well-formedness: every admitted sweep is eventually done (when
/// `expect_drained`), ids are unique per event kind, and every rejection
/// carries a matching typed error. Returns a human-readable violation.
pub fn search_audit_is_well_formed(
    events: &[SearchEvent],
    expect_drained: bool,
) -> Result<(), String> {
    use std::collections::HashSet;
    let mut admitted = HashSet::new();
    let mut done = HashSet::new();
    let mut rejected = HashSet::new();
    for e in events {
        match e {
            SearchEvent::SweepAdmitted { sweep, .. } => {
                if !admitted.insert(*sweep) {
                    return Err(format!("sweep {sweep} admitted twice"));
                }
            }
            SearchEvent::SweepDone { sweep, .. } => {
                if !admitted.contains(sweep) {
                    return Err(format!("sweep {sweep} done but never admitted"));
                }
                if !done.insert(*sweep) {
                    return Err(format!("sweep {sweep} done twice"));
                }
            }
            SearchEvent::SweepRejected { sweep, error, .. } => {
                if admitted.contains(sweep) {
                    return Err(format!("sweep {sweep} both admitted and rejected"));
                }
                if !rejected.insert(*sweep) {
                    return Err(format!("sweep {sweep} rejected twice"));
                }
                match error {
                    SearchServeError::QuotaExceeded {
                        queued,
                        submitted,
                        limit,
                        ..
                    } if queued + submitted <= *limit => {
                        return Err(format!(
                            "sweep {sweep}: quota rejection with consistent-looking counts \
                             ({queued}+{submitted} <= {limit})"
                        ));
                    }
                    _ => {}
                }
            }
        }
    }
    if expect_drained {
        if let Some(pending) = admitted.difference(&done).next() {
            return Err(format!("sweep {pending} admitted but never done"));
        }
    }
    Ok(())
}
