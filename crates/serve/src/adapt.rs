//! Online adaptation: keep the serving model honest while the device drifts.
//!
//! A latency predictor is trained once against a device model that then
//! keeps aging — thermals, DVFS policy changes, driver updates. This module
//! closes the loop at serving time:
//!
//! 1. **Observe.** Every live (architecture → observed latency) sample is
//!    paired with the deployed model's own prediction and pushed into a
//!    [`DriftMonitor`] — a bounded window of residuals.
//! 2. **Detect.** The monitor flags *staleness* when the windowed RMSE
//!    breaches a calibrated multiple of the baseline RMSE, or when the
//!    Spearman rank correlation between predictions and observations
//!    collapses ([`AdaptConfig::rmse_ratio_bar`] /
//!    [`AdaptConfig::spearman_bar`]).
//! 3. **Retrain.** On a flag, the [`AdaptationController`] fine-tunes a
//!    *shadow* candidate on the recent sample window (the caller supplies
//!    the trainer — canonically
//!    `MlpPredictor::fine_tune_incremental`, cheap enough since the fast
//!    training step that the retrain runs inline at the detection point,
//!    keeping the whole control loop a pure function of the sample
//!    sequence).
//! 4. **Validate.** The shadow rides along for
//!    [`AdaptConfig::validation_pairs`] live samples, predicting in
//!    parallel but **never serving**; it is promoted only if its paired
//!    RMSE beats the incumbent's by [`AdaptConfig::promote_margin`].
//! 5. **Promote / roll back.** Promotion swaps the [`ModelSlot`] the
//!    service reads through and starts a probation window; a probation
//!    regression restores the previous generation and trips the
//!    [`CircuitBreaker`] (`"rolled_back"`), so traffic rides the LUT
//!    fallback for one cool-down while the restored model warms back up.
//!
//! The baseline RMSE has a deliberate lifecycle. It self-calibrates from
//! the first full live window (or [`AdaptationController::with_baseline_rmse`])
//! and then *carries across promotions and rollbacks* — it is the healthy
//! residual floor, not a per-generation quantity — so a shadow that only
//! partially corrects a drift re-flags and adaptation iterates toward the
//! floor. The brake is the validation margin: when a retrain attempt
//! *fails* validation in a stable regime (the incumbent's freshly measured
//! live RMSE is commensurate with the flag-time window), improvement is
//! exhausted and the baseline re-anchors to that measured residual — the
//! system quiesces at the best reachable model instead of flagging forever.
//!
//! Every step appends a typed [`AdaptEvent`] to an in-order audit trail
//! (pinned by [`audit_is_well_formed`]: a generation can only start serving
//! after a *passing* validation verdict) and emits an `adapt_*` telemetry
//! line from the shared catalogue, so same-seed chaos soaks byte-compare.
//!
//! Chaos hooks: [`ModelSlot::inject_bias`] ages the deployed model in place
//! (the `StalePredictor` fault), and
//! [`AdaptationController::arm_bad_deploy`] corrupts the *next* promotion
//! after validation passes (the `BadDeploy` fault) — the failure mode where
//! a good candidate is mangled on the way into production, which is exactly
//! what probation + rollback exist to catch.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock};
use std::time::Duration;

use lightnas_predictor::{BatchPredictor, Predictor};
use lightnas_runtime::{events, Field, Telemetry};

use crate::breaker::CircuitBreaker;
use crate::clock::Clock;

fn us(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// A failed validation re-anchors the baseline only when the incumbent's
/// fresh live RMSE is within this factor of the flag-time windowed RMSE —
/// i.e. the regime held still through the attempt. A larger measured
/// residual means the surface moved mid-validation, and the old baseline
/// must survive so the next flag still fires.
const REANCHOR_SLACK: f64 = 1.25;

/// Default retention cap on the in-memory audit trail. Generous for any
/// bounded soak, small enough that a week-long deployment flagging every
/// cool-down cannot grow memory without bound; see
/// [`AdaptationController::with_audit_cap`].
pub const DEFAULT_AUDIT_CAP: usize = 4096;

/// Spearman rank correlation between two equal-length samples, with
/// average ranks for ties (Pearson correlation of the rank vectors).
///
/// Returns `NaN` when either side has zero rank variance (fewer than two
/// distinct values) — callers must treat a non-finite coefficient as "no
/// evidence", not as a collapse.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman over mismatched samples");
    let n = xs.len();
    if n < 2 {
        return f64::NAN;
    }
    let ranks = |vs: &[f64]| -> Vec<f64> {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| vs[a].partial_cmp(&vs[b]).expect("finite metric values"));
        let mut ranks = vec![0.0f64; n];
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && vs[order[j + 1]] == vs[order[i]] {
                j += 1;
            }
            // Tied run [i, j] shares the average rank (1-based).
            let avg = (i + j) as f64 / 2.0 + 1.0;
            for &k in &order[i..=j] {
                ranks[k] = avg;
            }
            i = j + 1;
        }
        ranks
    };
    let (rx, ry) = (ranks(xs), ranks(ys));
    let mean = (n as f64 + 1.0) / 2.0;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for k in 0..n {
        let (dx, dy) = (rx[k] - mean, ry[k] - mean);
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return f64::NAN;
    }
    sxy / (sxx * syy).sqrt()
}

/// Staleness-detection and promote/rollback thresholds.
#[derive(Debug, Clone)]
pub struct AdaptConfig {
    /// Residual window size (also the retraining window). Default: 64.
    pub window: usize,
    /// Samples required in the window before staleness checks run (the
    /// first eligible check self-calibrates the baseline instead of
    /// flagging). Default: 32.
    pub min_samples: usize,
    /// Stale when windowed RMSE exceeds this multiple of the calibrated
    /// baseline RMSE. Default: 1.5.
    pub rmse_ratio_bar: f64,
    /// Stale when the windowed Spearman rank correlation (prediction vs
    /// observation) drops below this, provided it is finite. Default: 0.5.
    pub spearman_bar: f64,
    /// A shadow is promoted only if its paired-validation RMSE is at most
    /// this fraction of the incumbent's. Default: 0.95.
    pub promote_margin: f64,
    /// Live samples a shadow must ride along (predicting, never serving)
    /// before the promotion verdict. Default: 32.
    pub validation_pairs: usize,
    /// Samples a freshly promoted generation is watched after promotion.
    /// Default: 48.
    pub probation: usize,
    /// Roll back when probation RMSE exceeds this multiple of the RMSE the
    /// shadow validated at. Default: 1.4.
    pub rollback_ratio: f64,
    /// Samples to sit out after a verdict (promotion, rejection, or
    /// rollback) before the next staleness flag. Default: 32.
    pub cooldown: usize,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        Self {
            window: 64,
            min_samples: 32,
            rmse_ratio_bar: 1.5,
            spearman_bar: 0.5,
            promote_margin: 0.95,
            validation_pairs: 32,
            probation: 48,
            rollback_ratio: 1.4,
            cooldown: 32,
        }
    }
}

/// Why the monitor flagged the model as stale.
#[derive(Debug, Clone, PartialEq)]
pub struct StalenessReport {
    /// Pairs in the window at flag time.
    pub samples: usize,
    /// Windowed residual RMSE (ms).
    pub windowed_rmse: f64,
    /// The calibrated baseline RMSE (ms).
    pub baseline_rmse: f64,
    /// `windowed_rmse / baseline_rmse`.
    pub rmse_ratio: f64,
    /// Windowed Spearman rank correlation (may be `NaN` — degenerate).
    pub spearman: f64,
}

/// A bounded window of (predicted, observed) pairs with windowed residual
/// statistics — the staleness detector.
#[derive(Debug)]
pub struct DriftMonitor {
    pairs: VecDeque<(f64, f64)>,
    capacity: usize,
    baseline_rmse: Option<f64>,
}

impl DriftMonitor {
    /// An empty, uncalibrated monitor holding at most `capacity` pairs.
    /// The first check with enough samples calibrates the baseline from
    /// the window itself.
    pub fn new(capacity: usize) -> Self {
        Self {
            pairs: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            baseline_rmse: None,
        }
    }

    /// Pre-calibrates the baseline (e.g. from the incumbent's validation
    /// RMSE at deploy time) instead of self-calibrating.
    pub fn with_baseline(mut self, rmse: f64) -> Self {
        self.baseline_rmse = Some(rmse);
        self
    }

    /// The calibrated baseline RMSE, if any.
    pub fn baseline(&self) -> Option<f64> {
        self.baseline_rmse
    }

    /// Pairs currently in the window.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Records one live pair, evicting the oldest past capacity.
    pub fn push(&mut self, predicted: f64, observed: f64) {
        if self.pairs.len() == self.capacity {
            self.pairs.pop_front();
        }
        self.pairs.push_back((predicted, observed));
    }

    /// Drops the window and re-anchors the baseline — called on every model
    /// swap, because the old pairs describe the old generation.
    pub fn reset(&mut self, baseline_rmse: Option<f64>) {
        self.pairs.clear();
        self.baseline_rmse = baseline_rmse;
    }

    /// RMSE of the windowed residuals (`NaN` on an empty window).
    pub fn windowed_rmse(&self) -> f64 {
        if self.pairs.is_empty() {
            return f64::NAN;
        }
        let se: f64 = self.pairs.iter().map(|(p, o)| (p - o) * (p - o)).sum();
        (se / self.pairs.len() as f64).sqrt()
    }

    /// Spearman rank correlation of the windowed pairs.
    pub fn spearman(&self) -> f64 {
        let (xs, ys): (Vec<f64>, Vec<f64>) = self.pairs.iter().copied().unzip();
        spearman(&xs, &ys)
    }

    /// Runs the staleness check: `Some(report)` when the model looks stale.
    ///
    /// Needs at least `min_samples` pairs; the first eligible check with no
    /// baseline calibrates it from the current window and reports healthy
    /// (deterministic self-calibration — no separate warm-up API).
    pub fn check(&mut self, config: &AdaptConfig) -> Option<StalenessReport> {
        if self.pairs.len() < config.min_samples.max(2) {
            return None;
        }
        let windowed = self.windowed_rmse();
        let baseline = match self.baseline_rmse {
            Some(b) => b,
            None => {
                self.baseline_rmse = Some(windowed);
                return None;
            }
        };
        // A zero baseline (perfect residuals at calibration time) only
        // signals drift once actual error appears.
        let ratio = if baseline > 0.0 {
            windowed / baseline
        } else if windowed == 0.0 {
            1.0
        } else {
            f64::INFINITY
        };
        let rho = self.spearman();
        let stale = ratio > config.rmse_ratio_bar || (rho.is_finite() && rho < config.spearman_bar);
        stale.then_some(StalenessReport {
            samples: self.pairs.len(),
            windowed_rmse: windowed,
            baseline_rmse: baseline,
            rmse_ratio: ratio,
            spearman: rho,
        })
    }
}

#[derive(Debug)]
struct Slotted<P> {
    current: P,
    previous: Option<P>,
}

/// The swappable model the service actually reads through: a
/// [`BatchPredictor`] whose current generation can be atomically promoted
/// or rolled back while requests are in flight.
///
/// Generations count *deployments*: the initial model is generation 0 and
/// every swap — promotion or rollback — bumps the counter, so telemetry can
/// attribute each prediction to exactly one deployment event.
///
/// The bias hooks model an aging or mangled deployment for chaos testing:
/// [`inject_bias`](Self::inject_bias) adds a fixed offset to the next `n`
/// predictions (or all of them, until cleared), through both the scalar and
/// the batched path.
#[derive(Debug)]
pub struct ModelSlot<P> {
    inner: RwLock<Slotted<P>>,
    generation: AtomicU64,
    bias_bits: AtomicU64,
    /// Remaining biased predictions; `u64::MAX` means "until cleared".
    bias_left: AtomicU64,
}

impl<P> ModelSlot<P> {
    /// A slot serving `initial` as generation 0.
    pub fn new(initial: P) -> Self {
        Self {
            inner: RwLock::new(Slotted {
                current: initial,
                previous: None,
            }),
            generation: AtomicU64::new(0),
            bias_bits: AtomicU64::new(0.0f64.to_bits()),
            bias_left: AtomicU64::new(0),
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Slotted<P>> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Slotted<P>> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// The deployment generation currently serving.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Runs `f` against the current generation (e.g. to fine-tune from it).
    pub fn with_current<R>(&self, f: impl FnOnce(&P) -> R) -> R {
        f(&self.read().current)
    }

    /// Deploys `candidate` as the new current generation, retaining the old
    /// one for [`rollback`](Self::rollback). Returns the new generation.
    ///
    /// `sabotage_bias_ms` is the chaos `BadDeploy` hook: the validated
    /// candidate itself is untouched, but every prediction *served* by the
    /// new deployment carries the bias until the slot is rolled back.
    pub fn promote(&self, candidate: P, sabotage_bias_ms: Option<f64>) -> u64 {
        let mut inner = self.write();
        inner.previous = Some(std::mem::replace(&mut inner.current, candidate));
        match sabotage_bias_ms {
            Some(bias) => {
                self.bias_bits.store(bias.to_bits(), Ordering::Release);
                self.bias_left.store(u64::MAX, Ordering::Release);
            }
            None => self.clear_bias(),
        }
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Restores the previous generation (clearing any deployment bias) and
    /// returns the new generation number, or `None` when there is nothing
    /// to roll back to.
    pub fn rollback(&self) -> Option<u64> {
        let mut inner = self.write();
        let previous = inner.previous.take()?;
        inner.current = previous;
        self.clear_bias();
        Some(self.generation.fetch_add(1, Ordering::AcqRel) + 1)
    }

    /// Adds `bias_ms` to the next `samples` predictions (`u64::MAX` =
    /// until [`clear_bias`](Self::clear_bias)). The chaos `StalePredictor`
    /// fault: the deployed model ages in place without its weights changing.
    pub fn inject_bias(&self, bias_ms: f64, samples: u64) {
        self.bias_bits.store(bias_ms.to_bits(), Ordering::Release);
        self.bias_left.store(samples, Ordering::Release);
    }

    /// Removes any injected or sabotage bias.
    pub fn clear_bias(&self) {
        self.bias_left.store(0, Ordering::Release);
        self.bias_bits.store(0.0f64.to_bits(), Ordering::Release);
    }

    /// Consumes one biased prediction from the budget, returning the bias
    /// to apply (0.0 when the budget is spent).
    fn consume_bias(&self) -> f64 {
        let mut left = self.bias_left.load(Ordering::Acquire);
        loop {
            if left == 0 {
                return 0.0;
            }
            if left == u64::MAX {
                break; // sticky until cleared
            }
            match self.bias_left.compare_exchange_weak(
                left,
                left - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(current) => left = current,
            }
        }
        f64::from_bits(self.bias_bits.load(Ordering::Acquire))
    }
}

impl<P: Predictor> Predictor for ModelSlot<P> {
    fn predict_encoding(&self, encoding: &[f32]) -> f64 {
        self.read().current.predict_encoding(encoding) + self.consume_bias()
    }

    fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
        self.read().current.gradient(encoding)
    }
}

impl<P: BatchPredictor> BatchPredictor for ModelSlot<P> {
    fn predict_encodings(&self, encodings: &[Vec<f32>]) -> Vec<f64> {
        let rows = self.read().current.predict_encodings(encodings);
        // Bias is consumed per row, exactly as the scalar path would.
        rows.into_iter().map(|v| v + self.consume_bias()).collect()
    }
}

/// Lock-free adaptation counters the service reads for health: wire the
/// same instance into both the [`AdaptationController`] and
/// [`PredictorService::with_adapt_status`](crate::PredictorService::with_adapt_status).
#[derive(Debug, Default)]
pub struct AdaptStatus {
    generation: AtomicU64,
    samples_since_promotion: AtomicU64,
    promoted_at_us: AtomicU64,
}

impl AdaptStatus {
    /// Fresh counters: generation 0, promoted at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The deployment generation currently serving.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Live samples ingested since the last model swap.
    pub fn samples_since_promotion(&self) -> u64 {
        self.samples_since_promotion.load(Ordering::Acquire)
    }

    /// Service-clock time of the last model swap.
    pub fn promoted_at(&self) -> Duration {
        Duration::from_micros(self.promoted_at_us.load(Ordering::Acquire))
    }

    fn note_sample(&self) {
        self.samples_since_promotion.fetch_add(1, Ordering::AcqRel);
    }

    fn note_swap(&self, generation: u64, now: Duration) {
        self.generation.store(generation, Ordering::Release);
        self.samples_since_promotion.store(0, Ordering::Release);
        self.promoted_at_us.store(us(now), Ordering::Release);
    }
}

/// One entry of the typed promote/rollback audit trail, in event order.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptEvent {
    /// The monitor flagged the serving model (see [`StalenessReport`]).
    StalenessDetected {
        /// Ingested-sample index at flag time.
        at_sample: u64,
        /// Windowed-RMSE / baseline-RMSE ratio.
        rmse_ratio: f64,
        /// Windowed Spearman rank correlation (`NaN` = degenerate).
        spearman: f64,
    },
    /// Shadow fine-tuning started on the recent window.
    RetrainStarted {
        /// Ingested-sample index.
        at_sample: u64,
        /// Rows in the retraining window.
        window: usize,
    },
    /// The shadow's paired live-traffic verdict.
    ShadowValidated {
        /// Ingested-sample index of the verdict.
        at_sample: u64,
        /// Shadow RMSE over the paired window.
        shadow_rmse: f64,
        /// Incumbent RMSE over the same pairs.
        incumbent_rmse: f64,
        /// Whether the shadow beat the incumbent by the margin.
        passed: bool,
    },
    /// A validated shadow started serving.
    Promoted {
        /// Ingested-sample index.
        at_sample: u64,
        /// The new deployment generation.
        generation: u64,
    },
    /// A promoted generation regressed on probation and was rolled back.
    RolledBack {
        /// Ingested-sample index.
        at_sample: u64,
        /// The generation taken out of service.
        demoted: u64,
        /// The generation now serving (the restored model's new
        /// deployment number).
        generation: u64,
        /// Probation RMSE that triggered the rollback.
        probation_rmse: f64,
        /// The RMSE the shadow validated at.
        validated_rmse: f64,
    },
}

/// The state-machine summary of audit events dropped at the retention cap —
/// the drop-accounting side of the bounded audit trail, in the same spirit
/// as the telemetry layer's dropped-events counter.
///
/// Truncating an audit trail can orphan the retained suffix: a `Promoted`
/// whose passing `ShadowValidated` fell off the front looks unvalidated, a
/// `RolledBack` whose `Promoted` was dropped looks spurious. The carry holds
/// exactly the checker state at the cut, so
/// [`audit_is_well_formed_with`] can verify the suffix as if the prefix were
/// still there.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditCarry {
    /// Events dropped at the cap so far.
    pub dropped: u64,
    /// Promotions among the dropped events.
    pub promotions: u64,
    /// Rollbacks among the dropped events.
    pub rollbacks: u64,
    /// Whether the last dropped verdict passed with no promotion yet — the
    /// checker state a retained `Promoted` at the cut boundary leans on.
    pub passed_verdict_pending: bool,
}

impl AuditCarry {
    /// Folds one event about to be dropped into the carry, advancing the
    /// checker state exactly as [`audit_is_well_formed_with`] would have.
    fn absorb(&mut self, event: &AdaptEvent) {
        match event {
            AdaptEvent::StalenessDetected { .. } | AdaptEvent::RetrainStarted { .. } => {}
            AdaptEvent::ShadowValidated { passed, .. } => self.passed_verdict_pending = *passed,
            AdaptEvent::Promoted { .. } => {
                self.passed_verdict_pending = false;
                self.promotions += 1;
            }
            AdaptEvent::RolledBack { .. } => self.rollbacks += 1,
        }
        self.dropped += 1;
    }
}

/// Checks the audit-trail safety invariant: a promotion may only follow a
/// *passing* validation verdict (with no other verdict in between), and a
/// rollback may only follow a promotion that has not already been rolled
/// back. This is the machine-checkable form of "an unvalidated shadow is
/// never served".
pub fn audit_is_well_formed(audit: &[AdaptEvent]) -> bool {
    audit_is_well_formed_with(&AuditCarry::default(), audit)
}

/// [`audit_is_well_formed`] for a capped trail: `carry` seeds the checker
/// with the state of the events dropped at the retention cap
/// ([`AdaptationController::audit_carry`]), so well-formedness keeps holding
/// across the cap boundary instead of failing on an orphaned suffix.
pub fn audit_is_well_formed_with(carry: &AuditCarry, audit: &[AdaptEvent]) -> bool {
    let mut passed_verdict_pending = carry.passed_verdict_pending;
    let mut promotions = carry.promotions;
    let mut rollbacks = carry.rollbacks;
    for event in audit {
        match event {
            AdaptEvent::StalenessDetected { .. } | AdaptEvent::RetrainStarted { .. } => {}
            AdaptEvent::ShadowValidated { passed, .. } => passed_verdict_pending = *passed,
            AdaptEvent::Promoted { .. } => {
                if !passed_verdict_pending {
                    return false;
                }
                passed_verdict_pending = false;
                promotions += 1;
            }
            AdaptEvent::RolledBack { .. } => {
                if rollbacks >= promotions {
                    return false;
                }
                rollbacks += 1;
            }
        }
    }
    true
}

#[derive(Debug)]
enum Phase<P> {
    Monitoring,
    /// Deferred mode only: a retrain was flagged (or requested) but the
    /// shadow is trained *outside* the controller — by a shared fleet pool —
    /// and handed back through
    /// [`AdaptationController::install_shadow`]. Pairs keep accumulating
    /// while the controller waits, so a queued retrain trains on a fresher
    /// window than the flag-time one.
    AwaitingRetrain {
        /// Windowed RMSE when the retrain was flagged/requested — the same
        /// re-anchoring yardstick the inline path records.
        flag_windowed: f64,
    },
    Validating {
        shadow: P,
        incumbent_sq: f64,
        shadow_sq: f64,
        pairs: usize,
        /// Windowed RMSE at flag time — the yardstick for deciding whether
        /// a failed validation happened in a stable regime (re-anchor the
        /// baseline) or mid-transition (keep it).
        flag_windowed: f64,
    },
    Probation {
        left: usize,
        sq: f64,
        n: usize,
        validated_rmse: f64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseKind {
    Monitoring,
    AwaitingRetrain,
    Validating,
    Probation,
}

impl<P> Phase<P> {
    fn kind(&self) -> PhaseKind {
        match self {
            Phase::Monitoring => PhaseKind::Monitoring,
            Phase::AwaitingRetrain { .. } => PhaseKind::AwaitingRetrain,
            Phase::Validating { .. } => PhaseKind::Validating,
            Phase::Probation { .. } => PhaseKind::Probation,
        }
    }

    fn name(&self) -> &'static str {
        match self.kind() {
            PhaseKind::Monitoring => "monitoring",
            PhaseKind::AwaitingRetrain => "awaiting_retrain",
            PhaseKind::Validating => "validating",
            PhaseKind::Probation => "probation",
        }
    }
}

/// The trainer the controller calls to fit a shadow: `(incumbent, window
/// encodings, window observations) → candidate`. Canonically a closure over
/// `MlpPredictor::fine_tune_incremental`; tests substitute cheap fakes.
pub type ShadowTrainer<'a, P> = Box<dyn FnMut(&P, &[Vec<f32>], &[f64]) -> P + 'a>;

/// The detect → retrain → validate → promote/rollback state machine.
///
/// Feed it every live sample via [`ingest`](Self::ingest); it pairs each
/// with the deployed model's prediction (through the [`ModelSlot`], so
/// chaos bias is observed exactly as served traffic sees it), watches the
/// [`DriftMonitor`], and drives the slot. All decisions are functions of
/// the sample sequence and the injected clock — no wall time, no threads —
/// which is what lets the drift soak byte-compare two same-seed runs.
pub struct AdaptationController<'a, P: BatchPredictor> {
    slot: &'a ModelSlot<P>,
    clock: &'a dyn Clock,
    config: AdaptConfig,
    trainer: ShadowTrainer<'a, P>,
    breaker: Option<&'a CircuitBreaker>,
    status: Option<&'a AdaptStatus>,
    telemetry: Option<&'a Telemetry>,
    monitor: DriftMonitor,
    recent: VecDeque<(Vec<f32>, f64)>,
    phase: Phase<P>,
    audit: Vec<AdaptEvent>,
    audit_cap: usize,
    carry: AuditCarry,
    samples: u64,
    cooldown_until: u64,
    pending_bad_deploy: Option<f64>,
    /// Deferred mode: staleness flags park in [`Phase::AwaitingRetrain`]
    /// instead of training inline — a fleet pool owns the retraining.
    deferred: bool,
}

impl<P: BatchPredictor> std::fmt::Debug for AdaptationController<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptationController")
            .field("phase", &self.phase.name())
            .field("samples", &self.samples)
            .field("generation", &self.slot.generation())
            .finish_non_exhaustive()
    }
}

impl<'a, P: BatchPredictor> AdaptationController<'a, P> {
    /// A controller over `slot`, telling time through `clock`, fitting
    /// shadows with `trainer`.
    pub fn new(
        slot: &'a ModelSlot<P>,
        clock: &'a dyn Clock,
        config: AdaptConfig,
        trainer: impl FnMut(&P, &[Vec<f32>], &[f64]) -> P + 'a,
    ) -> Self {
        let monitor = DriftMonitor::new(config.window);
        Self {
            slot,
            clock,
            config,
            trainer: Box::new(trainer),
            breaker: None,
            status: None,
            telemetry: None,
            monitor,
            recent: VecDeque::new(),
            phase: Phase::Monitoring,
            audit: Vec::new(),
            audit_cap: DEFAULT_AUDIT_CAP,
            carry: AuditCarry::default(),
            samples: 0,
            cooldown_until: 0,
            pending_bad_deploy: None,
            deferred: false,
        }
    }

    /// A controller whose retraining is *deferred*: a staleness flag parks
    /// the controller in the `awaiting_retrain` phase instead of training
    /// inline, and an external worker (canonically a shared fleet retrain
    /// pool) fits the shadow from [`retrain_window`](Self::retrain_window)
    /// and hands it back through [`install_shadow`](Self::install_shadow).
    /// Validation, promotion, probation, and rollback are unchanged — a
    /// shadow still never serves before its verdict, per device.
    pub fn deferred(slot: &'a ModelSlot<P>, clock: &'a dyn Clock, config: AdaptConfig) -> Self {
        let mut ctl = Self::new(
            slot,
            clock,
            config,
            |_m: &P, _e: &[Vec<f32>], _o: &[f64]| {
                unreachable!("a deferred controller never trains inline")
            },
        );
        ctl.deferred = true;
        ctl
    }

    /// Trips `breaker` (`"rolled_back"`) whenever a promotion is rolled
    /// back — wire the service's own breaker here so a rollback routes
    /// traffic to the LUT fallback for one cool-down.
    pub fn with_breaker(mut self, breaker: &'a CircuitBreaker) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Publishes generation/staleness counters for health (share the
    /// instance with
    /// [`PredictorService::with_adapt_status`](crate::PredictorService::with_adapt_status)).
    pub fn with_status(mut self, status: &'a AdaptStatus) -> Self {
        self.status = Some(status);
        self
    }

    /// Narrates every staleness flag, retrain, verdict, promotion, and
    /// rollback as `adapt_*` telemetry events.
    pub fn with_telemetry(mut self, telemetry: &'a Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Pre-calibrates the drift monitor's baseline RMSE. The baseline must
    /// be the *live* healthy residual — model error plus the stream's own
    /// measurement noise — which generally sits above the incumbent's
    /// offline validation RMSE. When in doubt, omit this and let the first
    /// full window of live traffic self-calibrate.
    pub fn with_baseline_rmse(mut self, rmse: f64) -> Self {
        self.monitor.reset(Some(rmse));
        self
    }

    /// Caps the in-memory audit trail at `cap` events (default
    /// [`DEFAULT_AUDIT_CAP`], clamped to at least 4). When the cap is hit,
    /// the oldest half is dropped in one amortized chunk and folded into
    /// the [`AuditCarry`], so [`audit_is_well_formed_with`] keeps holding
    /// on the retained suffix.
    pub fn with_audit_cap(mut self, cap: usize) -> Self {
        self.audit_cap = cap.max(4);
        self
    }

    /// The chaos `BadDeploy` hook: the *next* promotion deploys with
    /// `bias_ms` added to every served prediction (the validated candidate
    /// itself is untouched). Probation is expected to catch it.
    pub fn arm_bad_deploy(&mut self, bias_ms: f64) {
        self.pending_bad_deploy = Some(bias_ms);
    }

    /// The retained audit trail, in event order. Under the retention cap
    /// this is a *suffix* of the full history; pair it with
    /// [`audit_carry`](Self::audit_carry) and [`audit_is_well_formed_with`]
    /// once events have been dropped.
    pub fn audit(&self) -> &[AdaptEvent] {
        &self.audit
    }

    /// The drop-accounting summary of audit events evicted at the cap.
    pub fn audit_carry(&self) -> AuditCarry {
        self.carry
    }

    /// Audit events dropped at the retention cap so far.
    pub fn audit_dropped(&self) -> u64 {
        self.carry.dropped
    }

    fn push_audit(&mut self, event: AdaptEvent) {
        if self.audit.len() >= self.audit_cap {
            // Drop the oldest half in one chunk (amortized O(1) per push),
            // folding each evicted event into the carry so the retained
            // suffix still checks out against the full-history invariant.
            for dropped in self.audit.drain(..self.audit_cap / 2) {
                self.carry.absorb(&dropped);
            }
        }
        self.audit.push(event);
    }

    /// Total samples ingested.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The drift monitor (for inspection).
    pub fn monitor(&self) -> &DriftMonitor {
        &self.monitor
    }

    /// Current phase as a stable lowercase tag
    /// (`monitoring`/`validating`/`probation`).
    pub fn phase(&self) -> &'static str {
        self.phase.name()
    }

    fn emit(&self, event: &str, fields: &[(&str, Field)]) {
        if let Some(t) = self.telemetry {
            let mut all = vec![("t_us", Field::U(us(self.clock.now())))];
            all.extend_from_slice(fields);
            t.emit(event, &all);
        }
    }

    /// Ingests one live sample: the architecture encoding that was served
    /// and the latency the device actually exhibited for it. Returns the
    /// deployed model's paired prediction (what the monitor recorded).
    pub fn ingest(&mut self, encoding: &[f32], observed_ms: f64) -> f64 {
        self.samples += 1;
        if let Some(s) = self.status {
            s.note_sample();
        }
        let predicted = self.slot.predict_encoding(encoding);
        self.monitor.push(predicted, observed_ms);
        self.recent.push_back((encoding.to_vec(), observed_ms));
        if self.recent.len() > self.config.window {
            self.recent.pop_front();
        }
        match self.phase.kind() {
            PhaseKind::Monitoring => self.step_monitoring(),
            // Parked for an external retrain pool: the window keeps rolling
            // (fresher data at install time) but no phase transition happens
            // until install_shadow hands the trained candidate back.
            PhaseKind::AwaitingRetrain => {}
            PhaseKind::Validating => self.step_validating(encoding, predicted, observed_ms),
            PhaseKind::Probation => self.step_probation(predicted, observed_ms),
        }
        predicted
    }

    fn step_monitoring(&mut self) {
        if self.samples < self.cooldown_until {
            return;
        }
        let Some(report) = self.monitor.check(&self.config) else {
            return;
        };
        self.push_audit(AdaptEvent::StalenessDetected {
            at_sample: self.samples,
            rmse_ratio: report.rmse_ratio,
            spearman: report.spearman,
        });
        self.emit(
            events::ADAPT_STALENESS,
            &[
                ("sample", Field::U(self.samples)),
                ("generation", Field::U(self.slot.generation())),
                ("windowed_rmse", Field::F(report.windowed_rmse)),
                ("baseline_rmse", Field::F(report.baseline_rmse)),
                ("rmse_ratio", Field::F(report.rmse_ratio)),
                ("spearman", Field::F(report.spearman)),
            ],
        );
        if self.deferred {
            // Hand off to the external pool: no RetrainStarted yet — that is
            // audited when the pool actually admits the job and the trained
            // shadow is installed.
            self.phase = Phase::AwaitingRetrain {
                flag_windowed: report.windowed_rmse,
            };
            return;
        }
        let (encs, obs): (Vec<Vec<f32>>, Vec<f64>) = self.recent.iter().cloned().unzip();
        self.push_audit(AdaptEvent::RetrainStarted {
            at_sample: self.samples,
            window: encs.len(),
        });
        self.emit(
            events::ADAPT_RETRAIN,
            &[
                ("sample", Field::U(self.samples)),
                ("window", Field::U(encs.len() as u64)),
            ],
        );
        let (slot, trainer) = (self.slot, &mut self.trainer);
        let shadow = slot.with_current(|current| trainer(current, &encs, &obs));
        self.phase = Phase::Validating {
            shadow,
            incumbent_sq: 0.0,
            shadow_sq: 0.0,
            pairs: 0,
            flag_windowed: report.windowed_rmse,
        };
    }

    /// `true` when a deferred controller has flagged and is parked waiting
    /// for an external pool to hand a trained shadow back via
    /// [`install_shadow`](Self::install_shadow).
    pub fn awaiting_retrain(&self) -> bool {
        matches!(self.phase, Phase::AwaitingRetrain { .. })
    }

    /// Current windowed-RMSE / baseline ratio, once the window holds
    /// `min_samples` pairs and a baseline has been calibrated. `None`
    /// before that — callers must treat absence as "no evidence".
    pub fn staleness_ratio(&self) -> Option<f64> {
        if self.monitor.len() < self.config.min_samples.max(2) {
            return None;
        }
        let baseline = self.monitor.baseline()?;
        let windowed = self.monitor.windowed_rmse();
        // Same zero-baseline semantics as the staleness check: perfect
        // residuals at calibration only signal drift once error appears.
        Some(if baseline > 0.0 {
            windowed / baseline
        } else if windowed == 0.0 {
            1.0
        } else {
            f64::INFINITY
        })
    }

    /// Warm-start early trigger: parks a *deferred* controller in
    /// `AwaitingRetrain` without waiting for its own staleness flag, on
    /// external evidence (a correlated device flagged). Honors the
    /// cool-down and requires an armed window (`min_samples` pairs with a
    /// calibrated baseline) so the retrain has data to learn from. Returns
    /// `true` when the controller actually parked.
    ///
    /// No `StalenessDetected` event is audited — the device's own monitor
    /// never flagged; the fleet layer records the cross-device trigger in
    /// its own audit instead.
    pub fn request_retrain(&mut self) -> bool {
        if !self.deferred
            || !matches!(self.phase, Phase::Monitoring)
            || self.samples < self.cooldown_until
            || self.staleness_ratio().is_none()
        {
            return false;
        }
        self.phase = Phase::AwaitingRetrain {
            flag_windowed: self.monitor.windowed_rmse(),
        };
        true
    }

    /// Snapshot of the rolling retrain window (encodings, observations),
    /// freshest data included — taken by the pool at admission time, which
    /// may be ticks after the flag.
    pub fn retrain_window(&self) -> (Vec<Vec<f32>>, Vec<f64>) {
        self.recent.iter().cloned().unzip()
    }

    /// Hands an externally trained shadow to a parked deferred controller:
    /// audits `RetrainStarted` (the pool-admission analogue of the inline
    /// retrain) and enters validation. The shadow predicts in parallel from
    /// the next sample on and never serves before its verdict.
    ///
    /// # Panics
    ///
    /// Panics unless the controller is in `AwaitingRetrain` (i.e.
    /// [`awaiting_retrain`](Self::awaiting_retrain) is `true`).
    pub fn install_shadow(&mut self, shadow: P) {
        let Phase::AwaitingRetrain { flag_windowed } = &self.phase else {
            panic!("install_shadow on a controller that is not awaiting a retrain");
        };
        let flag_windowed = *flag_windowed;
        self.push_audit(AdaptEvent::RetrainStarted {
            at_sample: self.samples,
            window: self.recent.len(),
        });
        self.emit(
            events::ADAPT_RETRAIN,
            &[
                ("sample", Field::U(self.samples)),
                ("window", Field::U(self.recent.len() as u64)),
            ],
        );
        self.phase = Phase::Validating {
            shadow,
            incumbent_sq: 0.0,
            shadow_sq: 0.0,
            pairs: 0,
            flag_windowed,
        };
    }

    fn step_validating(&mut self, encoding: &[f32], incumbent_pred: f64, observed_ms: f64) {
        let Phase::Validating {
            shadow,
            incumbent_sq,
            shadow_sq,
            pairs,
            flag_windowed,
        } = &mut self.phase
        else {
            unreachable!("step_validating outside Validating");
        };
        let flag_windowed = *flag_windowed;
        // The shadow predicts in parallel but its answer goes nowhere near
        // the slot — it is never served before the verdict.
        let shadow_pred = shadow.predict_encoding(encoding);
        *incumbent_sq += (incumbent_pred - observed_ms) * (incumbent_pred - observed_ms);
        *shadow_sq += (shadow_pred - observed_ms) * (shadow_pred - observed_ms);
        *pairs += 1;
        if *pairs < self.config.validation_pairs {
            return;
        }
        let n = *pairs as f64;
        let incumbent_rmse = (*incumbent_sq / n).sqrt();
        let shadow_rmse = (*shadow_sq / n).sqrt();
        let passed = shadow_rmse <= self.config.promote_margin * incumbent_rmse;
        self.push_audit(AdaptEvent::ShadowValidated {
            at_sample: self.samples,
            shadow_rmse,
            incumbent_rmse,
            passed,
        });
        self.emit(
            events::ADAPT_VALIDATED,
            &[
                ("sample", Field::U(self.samples)),
                ("shadow_rmse", Field::F(shadow_rmse)),
                ("incumbent_rmse", Field::F(incumbent_rmse)),
                ("passed", Field::B(passed)),
            ],
        );
        if !passed {
            // Improvement is exhausted: retraining could not beat the
            // incumbent by the margin. If the regime held still through the
            // attempt (the incumbent's fresh live RMSE is commensurate with
            // the flag-time window), that residual is the best available —
            // re-anchor the baseline to it so the monitor stops re-flagging
            // a floor no retrain can reach. A mid-validation regime change
            // (incumbent far above the flag-time window) keeps the old
            // baseline, so the next flag still fires and adaptation
            // retries.
            if incumbent_rmse <= REANCHOR_SLACK * flag_windowed {
                self.monitor.reset(Some(incumbent_rmse));
            }
            self.phase = Phase::Monitoring;
            self.cooldown_until = self.samples + self.config.cooldown as u64;
            return;
        }
        let Phase::Validating { shadow, .. } =
            std::mem::replace(&mut self.phase, Phase::Monitoring)
        else {
            unreachable!("phase changed underfoot");
        };
        let generation = self.slot.promote(shadow, self.pending_bad_deploy.take());
        if let Some(s) = self.status {
            s.note_swap(generation, self.clock.now());
        }
        self.push_audit(AdaptEvent::Promoted {
            at_sample: self.samples,
            generation,
        });
        self.emit(
            events::ADAPT_PROMOTED,
            &[
                ("sample", Field::U(self.samples)),
                ("generation", Field::U(generation)),
                ("validated_rmse", Field::F(shadow_rmse)),
            ],
        );
        // The window described the demoted generation, so drop it — but
        // KEEP the baseline: it is the healthy residual floor, not a
        // per-generation quantity. A shadow that only partially corrects
        // the drift (its window straddled the regime change) re-flags
        // after the cool-down and adaptation iterates toward the floor.
        let floor = self.monitor.baseline();
        self.monitor.reset(floor);
        self.phase = Phase::Probation {
            left: self.config.probation.max(1),
            sq: 0.0,
            n: 0,
            validated_rmse: shadow_rmse,
        };
    }

    fn step_probation(&mut self, predicted: f64, observed_ms: f64) {
        let Phase::Probation {
            left,
            sq,
            n,
            validated_rmse,
        } = &mut self.phase
        else {
            unreachable!("step_probation outside Probation");
        };
        *sq += (predicted - observed_ms) * (predicted - observed_ms);
        *n += 1;
        *left -= 1;
        if *left > 0 {
            return;
        }
        let probation_rmse = (*sq / *n as f64).sqrt();
        // Rolling back needs two strikes: the promotion broke its validated
        // promise (RMSE estimates over a few dozen pairs fluctuate — one
        // lucky validation window must not doom a good model), AND the
        // deployed generation is unhealthy in absolute terms — worse than
        // the staleness bar over the accepted baseline, i.e. the monitor
        // itself would flag it.
        let unhealthy = match self.monitor.baseline() {
            Some(b) if b > 0.0 => probation_rmse > self.config.rmse_ratio_bar * b,
            _ => true,
        };
        let regressed = unhealthy && probation_rmse > self.config.rollback_ratio * *validated_rmse;
        let validated_rmse = *validated_rmse;
        self.phase = Phase::Monitoring;
        self.cooldown_until = self.samples + self.config.cooldown as u64;
        if !regressed {
            return;
        }
        let demoted = self.slot.generation();
        let Some(generation) = self.slot.rollback() else {
            return; // nothing to restore — keep serving, monitor will re-flag
        };
        if let Some(s) = self.status {
            s.note_swap(generation, self.clock.now());
        }
        if let Some(b) = self.breaker {
            b.trip(self.clock.now(), "rolled_back");
        }
        self.push_audit(AdaptEvent::RolledBack {
            at_sample: self.samples,
            demoted,
            generation,
            probation_rmse,
            validated_rmse,
        });
        self.emit(
            events::ADAPT_ROLLBACK,
            &[
                ("sample", Field::U(self.samples)),
                ("demoted", Field::U(demoted)),
                ("generation", Field::U(generation)),
                ("probation_rmse", Field::F(probation_rmse)),
                ("validated_rmse", Field::F(validated_rmse)),
            ],
        );
        // Drop the failed generation's pairs; the healthy floor carries
        // over to the restored model.
        let floor = self.monitor.baseline();
        self.monitor.reset(floor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::{BreakerConfig, BreakerState};
    use crate::clock::VirtualClock;

    /// A linear fake: predicts `scale * encoding[0]`. "Retraining" refits
    /// `scale` by least squares over the window — deterministic and instant.
    #[derive(Debug, Clone)]
    struct LinearModel {
        scale: f64,
    }
    impl Predictor for LinearModel {
        fn predict_encoding(&self, e: &[f32]) -> f64 {
            self.scale * f64::from(e[0])
        }
        fn gradient(&self, e: &[f32]) -> Vec<f32> {
            vec![0.0; e.len()]
        }
    }
    impl BatchPredictor for LinearModel {}

    fn refit(_m: &LinearModel, encs: &[Vec<f32>], obs: &[f64]) -> LinearModel {
        let (mut num, mut den) = (0.0, 0.0);
        for (e, o) in encs.iter().zip(obs) {
            let x = f64::from(e[0]);
            num += x * o;
            den += x * x;
        }
        LinearModel { scale: num / den }
    }

    fn quick_config() -> AdaptConfig {
        AdaptConfig {
            window: 16,
            min_samples: 8,
            rmse_ratio_bar: 1.5,
            spearman_bar: 0.5,
            promote_margin: 0.95,
            validation_pairs: 8,
            probation: 8,
            rollback_ratio: 1.4,
            cooldown: 8,
        }
    }

    /// Deterministic pseudo-random encoding stream (first lane in [1, 2]).
    fn enc(i: u64) -> Vec<f32> {
        let x = 1.0 + (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40) as f32 / 16_777_216.0;
        vec![x, 0.0]
    }

    #[test]
    fn spearman_matches_hand_computed_values() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 4.0, 6.0, 8.0, 10.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12, "monotone = 1");
        let rev: Vec<f64> = ys.iter().rev().copied().collect();
        assert!((spearman(&xs, &rev) + 1.0).abs() < 1e-12, "reversed = -1");
        assert!(spearman(&xs, &[7.0; 5]).is_nan(), "constant side = NaN");
        // Ties get average ranks: classic worked example.
        let a = [1.0, 2.0, 2.0, 3.0];
        let b = [1.0, 3.0, 2.0, 4.0];
        let rho = spearman(&a, &b);
        assert!(
            rho > 0.8 && rho < 1.0,
            "ties keep rho in (0.8, 1), got {rho}"
        );
    }

    #[test]
    fn stationary_stream_never_flags() {
        let cfg = quick_config();
        let mut monitor = DriftMonitor::new(cfg.window);
        for i in 0..500u64 {
            let x = f64::from(enc(i)[0]);
            // Honest model + bounded deterministic noise.
            let noise = ((i % 7) as f64 - 3.0) * 0.05;
            monitor.push(10.0 * x, 10.0 * x + noise);
            assert!(
                monitor.check(&cfg).is_none(),
                "stationary stream flagged at sample {i}"
            );
        }
    }

    #[test]
    fn monotone_ramp_flags_within_budget() {
        let cfg = quick_config();
        let mut monitor = DriftMonitor::new(cfg.window);
        let mut flagged_at = None;
        for i in 0..1000u64 {
            let x = f64::from(enc(i)[0]);
            let scale = 1.0 + 0.002 * i as f64; // monotone multiplicative drift
            monitor.push(10.0 * x, 10.0 * x * scale);
            if monitor.check(&cfg).is_some() {
                flagged_at = Some(i);
                break;
            }
        }
        let at = flagged_at.expect("ramp must flag");
        assert!(at < 8 * cfg.window as u64, "flagged too late: {at}");
    }

    #[test]
    fn slot_swaps_are_generation_counted_and_bias_is_per_row() {
        let slot = ModelSlot::new(LinearModel { scale: 1.0 });
        assert_eq!(slot.generation(), 0);
        assert_eq!(slot.predict_encoding(&[2.0]), 2.0);
        slot.inject_bias(5.0, 2);
        let rows = slot.predict_encodings(&[vec![1.0], vec![1.0], vec![1.0]]);
        assert_eq!(rows, vec![6.0, 6.0, 1.0], "bias budget spent per row");
        let g = slot.promote(LinearModel { scale: 3.0 }, None);
        assert_eq!(g, 1);
        assert_eq!(slot.predict_encoding(&[2.0]), 6.0);
        let g = slot.promote(LinearModel { scale: 4.0 }, Some(100.0));
        assert_eq!(g, 2);
        assert_eq!(slot.predict_encoding(&[1.0]), 104.0, "sabotaged deploy");
        let g = slot.rollback().expect("previous retained");
        assert_eq!(g, 3);
        assert_eq!(
            slot.predict_encoding(&[2.0]),
            6.0,
            "bias gone, scale 3 back"
        );
        assert!(slot.rollback().is_none(), "only one generation retained");
    }

    #[test]
    fn drift_triggers_retrain_validate_promote() {
        let clock = VirtualClock::new();
        let slot = ModelSlot::new(LinearModel { scale: 10.0 });
        let status = AdaptStatus::new();
        let mut ctl =
            AdaptationController::new(&slot, &clock, quick_config(), refit).with_status(&status);
        // Stationary warm-up: self-calibrates, never promotes.
        for i in 0..40u64 {
            let e = enc(i);
            let truth = 10.0 * f64::from(e[0]);
            ctl.ingest(&e, truth);
            clock.advance(Duration::from_millis(1));
        }
        assert_eq!(ctl.phase(), "monitoring");
        assert_eq!(slot.generation(), 0, "stationary stream never promotes");
        // 1.6× drift burst. The first shadow trains on a window straddling
        // the regime change, so adaptation may need more than one
        // promotion cycle to reach the new regime.
        let mut promoted_at = None;
        for i in 40..440u64 {
            let e = enc(i);
            let truth = 16.0 * f64::from(e[0]);
            ctl.ingest(&e, truth);
            clock.advance(Duration::from_millis(1));
            if promoted_at.is_none() && slot.generation() > 0 {
                promoted_at = Some(i);
                assert_eq!(status.generation(), slot.generation());
                assert_eq!(status.samples_since_promotion(), 0, "swap resets staleness");
            }
        }
        let at = promoted_at.expect("drift must cause a promotion");
        assert!(at < 200, "first promotion too late: {at}");
        assert!(audit_is_well_formed(ctl.audit()), "{:?}", ctl.audit());
        assert!(ctl
            .audit()
            .iter()
            .any(|e| matches!(e, AdaptEvent::Promoted { generation: 1, .. })));
        assert!(
            !ctl.audit()
                .iter()
                .any(|e| matches!(e, AdaptEvent::RolledBack { .. })),
            "honest shadows are never rolled back"
        );
        assert!(
            (slot.with_current(|m| m.scale) - 16.0).abs() < 0.01,
            "adaptation converges to the drifted regime, got {}",
            slot.with_current(|m| m.scale)
        );
    }

    #[test]
    fn bad_deploy_is_rolled_back_and_trips_the_breaker() {
        let clock = VirtualClock::new();
        let slot = ModelSlot::new(LinearModel { scale: 10.0 });
        let breaker = CircuitBreaker::new(BreakerConfig::default());
        let mut ctl =
            AdaptationController::new(&slot, &clock, quick_config(), refit).with_breaker(&breaker);
        for i in 0..40u64 {
            let e = enc(i);
            ctl.ingest(&e, 10.0 * f64::from(e[0]));
        }
        ctl.arm_bad_deploy(50.0);
        let mut i = 40u64;
        while slot.generation() < 1 && i < 400 {
            let e = enc(i);
            ctl.ingest(&e, 16.0 * f64::from(e[0]));
            i += 1;
        }
        assert_eq!(slot.generation(), 1, "sabotaged promotion deployed");
        // Probation sees the +50 ms deployment bias and must roll back.
        while ctl.phase() == "probation" {
            let e = enc(i);
            ctl.ingest(&e, 16.0 * f64::from(e[0]));
            i += 1;
        }
        assert_eq!(slot.generation(), 2, "rollback is a new deployment");
        assert!(
            (slot.with_current(|m| m.scale) - 10.0).abs() < 1e-9,
            "incumbent restored"
        );
        assert_eq!(
            breaker.state(clock.now()),
            BreakerState::Open,
            "breaker tripped"
        );
        let reasons: Vec<&str> = breaker
            .take_transitions()
            .iter()
            .map(|t| t.reason)
            .collect();
        assert_eq!(reasons, ["rolled_back"]);
        assert!(audit_is_well_formed(ctl.audit()), "{:?}", ctl.audit());
        assert!(ctl.audit().iter().any(|e| matches!(
            e,
            AdaptEvent::RolledBack {
                demoted: 1,
                generation: 2,
                ..
            }
        )));
    }

    #[test]
    fn failed_validation_discards_the_shadow_quietly() {
        let clock = VirtualClock::new();
        let slot = ModelSlot::new(LinearModel { scale: 10.0 });
        // A trainer that always produces garbage: validation must reject it.
        let mut ctl = AdaptationController::new(
            &slot,
            &clock,
            quick_config(),
            |_m: &LinearModel, _e: &[Vec<f32>], _o: &[f64]| LinearModel { scale: 1000.0 },
        );
        for i in 0..40u64 {
            let e = enc(i);
            ctl.ingest(&e, 10.0 * f64::from(e[0]));
        }
        for i in 40..400u64 {
            let e = enc(i);
            ctl.ingest(&e, 16.0 * f64::from(e[0]));
        }
        assert_eq!(slot.generation(), 0, "garbage shadow never serves");
        assert!(ctl
            .audit()
            .iter()
            .any(|e| matches!(e, AdaptEvent::ShadowValidated { passed: false, .. })));
        assert!(!ctl
            .audit()
            .iter()
            .any(|e| matches!(e, AdaptEvent::Promoted { .. })));
        assert!(audit_is_well_formed(ctl.audit()));
    }

    #[test]
    fn audit_well_formedness_rejects_unvalidated_promotions() {
        assert!(audit_is_well_formed(&[]));
        assert!(!audit_is_well_formed(&[AdaptEvent::Promoted {
            at_sample: 1,
            generation: 1,
        }]));
        assert!(!audit_is_well_formed(&[
            AdaptEvent::ShadowValidated {
                at_sample: 1,
                shadow_rmse: 2.0,
                incumbent_rmse: 1.0,
                passed: false,
            },
            AdaptEvent::Promoted {
                at_sample: 2,
                generation: 1,
            },
        ]));
        assert!(!audit_is_well_formed(&[AdaptEvent::RolledBack {
            at_sample: 1,
            demoted: 1,
            generation: 2,
            probation_rmse: 9.0,
            validated_rmse: 1.0,
        }]));
        assert!(audit_is_well_formed(&[
            AdaptEvent::StalenessDetected {
                at_sample: 1,
                rmse_ratio: 2.0,
                spearman: 0.9,
            },
            AdaptEvent::RetrainStarted {
                at_sample: 1,
                window: 16,
            },
            AdaptEvent::ShadowValidated {
                at_sample: 9,
                shadow_rmse: 0.5,
                incumbent_rmse: 1.0,
                passed: true,
            },
            AdaptEvent::Promoted {
                at_sample: 9,
                generation: 1,
            },
            AdaptEvent::RolledBack {
                at_sample: 17,
                demoted: 1,
                generation: 2,
                probation_rmse: 9.0,
                validated_rmse: 0.5,
            },
        ]));
    }

    #[test]
    fn audit_stays_well_formed_across_the_retention_cap() {
        let clock = VirtualClock::new();
        let slot = ModelSlot::new(LinearModel { scale: 10.0 });
        // Tiny cap so a long alternating-drift soak crosses the boundary
        // many times; every fourth sample re-checks the suffix invariant.
        let mut ctl =
            AdaptationController::new(&slot, &clock, quick_config(), refit).with_audit_cap(8);
        let mut scale = 10.0;
        for i in 0..4000u64 {
            // Flip the regime every 100 samples so the controller keeps
            // flagging, retraining, and promoting — a busy audit trail.
            if i % 100 == 0 {
                scale = if scale == 10.0 { 16.0 } else { 10.0 };
            }
            let e = enc(i);
            ctl.ingest(&e, scale * f64::from(e[0]));
            if i % 4 == 0 {
                assert!(ctl.audit().len() <= 8, "cap respected at sample {i}");
                assert!(
                    audit_is_well_formed_with(&ctl.audit_carry(), ctl.audit()),
                    "suffix invariant broke at sample {i}: carry {:?}, audit {:?}",
                    ctl.audit_carry(),
                    ctl.audit()
                );
            }
        }
        assert!(ctl.audit_dropped() > 0, "soak must actually cross the cap");
        assert!(slot.generation() > 2, "soak must actually promote");
        // Every deployment (promotion or rollback) bumps the generation, so
        // carry + suffix together still account for all of them.
        let carry = ctl.audit_carry();
        let suffix_swaps = ctl
            .audit()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    AdaptEvent::Promoted { .. } | AdaptEvent::RolledBack { .. }
                )
            })
            .count() as u64;
        assert_eq!(
            carry.promotions + carry.rollbacks + suffix_swaps,
            slot.generation(),
            "carry + suffix still account for every deployment"
        );
    }

    #[test]
    fn deferred_controller_parks_and_installs_through_the_pool_path() {
        let clock = VirtualClock::new();
        let slot = ModelSlot::new(LinearModel { scale: 10.0 });
        let mut ctl = AdaptationController::deferred(&slot, &clock, quick_config());
        // Stationary warm-up calibrates the baseline.
        for i in 0..40u64 {
            let e = enc(i);
            ctl.ingest(&e, 10.0 * f64::from(e[0]));
        }
        assert!(!ctl.awaiting_retrain());
        // Drift: the deferred controller must park instead of training.
        let mut i = 40u64;
        while !ctl.awaiting_retrain() && i < 400 {
            let e = enc(i);
            ctl.ingest(&e, 16.0 * f64::from(e[0]));
            i += 1;
        }
        assert!(
            ctl.awaiting_retrain(),
            "drift must park a deferred controller"
        );
        assert_eq!(ctl.phase(), "awaiting_retrain");
        assert_eq!(slot.generation(), 0, "nothing trained, nothing served");
        // The window keeps rolling while parked.
        let before = ctl.retrain_window().0.len();
        for _ in 0..4 {
            let e = enc(i);
            ctl.ingest(&e, 16.0 * f64::from(e[0]));
            i += 1;
        }
        assert!(ctl.retrain_window().0.len() >= before.min(quick_config().window));
        // The pool trains outside and hands the shadow back; the first
        // window straddles the regime change, so adaptation may need more
        // than one park → install → promote cycle, exactly like inline.
        let (encs, obs) = ctl.retrain_window();
        let shadow = slot.with_current(|m| refit(m, &encs, &obs));
        ctl.install_shadow(shadow);
        assert_eq!(ctl.phase(), "validating");
        while i < 800 {
            let e = enc(i);
            ctl.ingest(&e, 16.0 * f64::from(e[0]));
            i += 1;
            if ctl.awaiting_retrain() {
                let (encs, obs) = ctl.retrain_window();
                let shadow = slot.with_current(|m| refit(m, &encs, &obs));
                ctl.install_shadow(shadow);
            }
        }
        assert!(slot.generation() >= 1, "deferred shadow promotes normally");
        assert!(audit_is_well_formed(ctl.audit()), "{:?}", ctl.audit());
        assert!(
            (slot.with_current(|m| m.scale) - 16.0).abs() < 0.2,
            "pool-trained shadow converged, got {}",
            slot.with_current(|m| m.scale)
        );
    }

    #[test]
    fn request_retrain_needs_evidence_and_an_idle_deferred_controller() {
        let clock = VirtualClock::new();
        let slot = ModelSlot::new(LinearModel { scale: 10.0 });
        let mut inline = AdaptationController::new(&slot, &clock, quick_config(), refit);
        for i in 0..40u64 {
            let e = enc(i);
            inline.ingest(&e, 10.0 * f64::from(e[0]));
        }
        assert!(!inline.request_retrain(), "inline controllers never park");

        let slot2 = ModelSlot::new(LinearModel { scale: 10.0 });
        let mut ctl = AdaptationController::deferred(&slot2, &clock, quick_config());
        assert!(
            !ctl.request_retrain(),
            "no window, no baseline — no evidence to park on"
        );
        for i in 0..40u64 {
            let e = enc(i);
            ctl.ingest(&e, 10.0 * f64::from(e[0]));
        }
        assert!(ctl.staleness_ratio().is_some());
        assert!(ctl.request_retrain(), "armed window parks on request");
        assert!(ctl.awaiting_retrain());
        assert!(!ctl.request_retrain(), "already parked");
    }
}
