//! Health and readiness as plain data.
//!
//! A load balancer (or a test) asks two different questions: *liveness* —
//! is the process answering at all — and *readiness* — should new traffic
//! be sent here. [`HealthSnapshot`] answers both from the service's own
//! counters, with the breaker state riding along so "up but degraded to
//! the LUT" is visible instead of masquerading as healthy.

use crate::breaker::BreakerState;

/// One consistent-enough view of the service's state. Counters are read
/// individually (relaxed), so a snapshot taken mid-flight may be off by the
/// requests currently being processed — fine for health checks, which is
/// all this is for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Should new traffic come here? False once draining begins.
    pub ready: bool,
    /// Graceful shutdown in progress (queued work still being served).
    pub draining: bool,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Circuit-breaker state as of the snapshot.
    pub breaker: BreakerState,
    /// Requests ever submitted (admitted or not).
    pub submitted: u64,
    /// Requests answered with a value.
    pub served: u64,
    /// Served answers that came from the fallback (any cause).
    pub degraded: u64,
    /// Requests rejected by admission control.
    pub rejected_overloaded: u64,
    /// Requests rejected because the service was draining.
    pub rejected_draining: u64,
    /// Requests whose deadline expired (at admission or in the queue).
    pub deadline_expired: u64,
    /// Coalesced batches processed.
    pub batches: u64,
}

impl HealthSnapshot {
    /// Whether the service is answering from the fallback path (breaker
    /// not closed).
    pub fn is_degraded(&self) -> bool {
        self.breaker != BreakerState::Closed
    }

    /// Every submitted request is accounted for: answered, expired, or
    /// typed-rejected — the "nothing is ever silently dropped" invariant
    /// the chaos soak asserts. Only meaningful when nothing is in flight
    /// (queue empty, no worker mid-batch).
    pub fn fully_accounted(&self) -> bool {
        self.submitted
            == self.served
                + self.deadline_expired
                + self.rejected_overloaded
                + self.rejected_draining
    }
}
