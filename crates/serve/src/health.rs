//! Health and readiness as plain data.
//!
//! A load balancer (or a test) asks two different questions: *liveness* —
//! is the process answering at all — and *readiness* — should new traffic
//! be sent here. [`HealthSnapshot`] answers both from the service's own
//! counters, with the breaker state riding along so "up but degraded to
//! the LUT" is visible instead of masquerading as healthy. Services with
//! the adaptation layer wired additionally report which model generation
//! is serving and how stale it is.

use std::time::Duration;

use crate::breaker::BreakerState;

/// One fleet device's adaptation state, as rolled up into a fleet-level
/// [`HealthSnapshot`]. Single-device services never populate these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceGeneration {
    /// Device name from the fleet registry (e.g. `"phone-a76"`).
    pub device: String,
    /// Deployment generation of that device's serving model.
    pub model_generation: u64,
    /// Live samples that device has ingested since its last model swap.
    pub staleness_samples: u64,
}

/// One consistent-enough view of the service's state. Counters are read
/// individually (relaxed), so a snapshot taken mid-flight may be off by the
/// requests currently being processed — fine for health checks, which is
/// all this is for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Should new traffic come here? False once draining begins.
    pub ready: bool,
    /// Graceful shutdown in progress (queued work still being served).
    pub draining: bool,
    /// Requests currently queued.
    pub queue_depth: usize,
    /// Circuit-breaker state as of the snapshot.
    pub breaker: BreakerState,
    /// Requests ever submitted (admitted or not).
    pub submitted: u64,
    /// Requests answered with a value.
    pub served: u64,
    /// Served answers that came from the fallback (any cause).
    pub degraded: u64,
    /// Requests rejected by admission control.
    pub rejected_overloaded: u64,
    /// Requests rejected because the service was draining.
    pub rejected_draining: u64,
    /// Requests whose deadline expired (at admission or in the queue).
    pub deadline_expired: u64,
    /// Coalesced batches processed.
    pub batches: u64,
    /// Deployment generation of the serving model (0 = the initially
    /// deployed model; bumps on every promotion *and* rollback). Stays 0
    /// when no adaptation layer is wired.
    pub model_generation: u64,
    /// Live samples ingested since the last model swap — the sample-count
    /// face of staleness. Stays 0 when no adaptation layer is wired.
    pub staleness_samples: u64,
    /// Service-clock time since the last model swap — the wall-clock face
    /// of staleness (virtual under a `VirtualClock`). Stays zero when no
    /// adaptation layer is wired.
    pub staleness_age: Duration,
    /// Per-device generation/staleness rollup when this snapshot aggregates
    /// a fleet. **Empty for single-device services** — and omitted from the
    /// wire form when empty, so existing snapshots stay byte-identical.
    pub fleet: Vec<DeviceGeneration>,
    /// Shared predictor-cache hits, merged over shards. Stays 0 (and
    /// serialization-invisible together with the other cache fields) for
    /// services without a predictor cache.
    pub cache_hits: u64,
    /// Shared predictor-cache misses, merged over shards.
    pub cache_misses: u64,
    /// Per-shard occupancy (cached values per shard, in shard order) of
    /// the shared predictor cache. **Empty for cacheless services** — and
    /// omitted from the wire form when empty alongside zero counters, so
    /// pre-cache snapshots stay byte-identical.
    pub cache_shards: Vec<u64>,
}

impl HealthSnapshot {
    /// Whether the service is answering from the fallback path (breaker
    /// not closed).
    pub fn is_degraded(&self) -> bool {
        self.breaker != BreakerState::Closed
    }

    /// Every submitted request is accounted for: answered, expired, or
    /// typed-rejected — the "nothing is ever silently dropped" invariant
    /// the chaos soak asserts. Only meaningful when nothing is in flight
    /// (queue empty, no worker mid-batch).
    pub fn fully_accounted(&self) -> bool {
        self.submitted
            == self.served
                + self.deadline_expired
                + self.rejected_overloaded
                + self.rejected_draining
    }

    /// Renders the snapshot as one flat JSON object (the `/healthz` wire
    /// form). The adaptation fields (`model_generation`,
    /// `staleness_samples`, `staleness_age_us`) are **omitted while at
    /// their defaults** — a service without the adaptation layer serializes
    /// byte-identically to releases that predate those fields, which the
    /// snapshot-shape test pins.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"ready\":{},\"draining\":{},\"queue_depth\":{},\"breaker\":\"{}\",\
             \"submitted\":{},\"served\":{},\"degraded\":{},\"rejected_overloaded\":{},\
             \"rejected_draining\":{},\"deadline_expired\":{},\"batches\":{}",
            self.ready,
            self.draining,
            self.queue_depth,
            self.breaker,
            self.submitted,
            self.served,
            self.degraded,
            self.rejected_overloaded,
            self.rejected_draining,
            self.deadline_expired,
            self.batches,
        );
        if self.model_generation != 0
            || self.staleness_samples != 0
            || self.staleness_age != Duration::ZERO
        {
            let _ = write!(
                out,
                ",\"model_generation\":{},\"staleness_samples\":{},\"staleness_age_us\":{}",
                self.model_generation,
                self.staleness_samples,
                self.staleness_age.as_micros().min(u128::from(u64::MAX)),
            );
        }
        if !self.fleet.is_empty() {
            out.push_str(",\"fleet\":[");
            for (i, d) in self.fleet.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"device\":\"{}\",\"model_generation\":{},\"staleness_samples\":{}}}",
                    d.device, d.model_generation, d.staleness_samples,
                );
            }
            out.push(']');
        }
        if self.cache_hits != 0 || self.cache_misses != 0 || !self.cache_shards.is_empty() {
            let total = self.cache_hits + self.cache_misses;
            let rate = if total == 0 {
                0.0
            } else {
                self.cache_hits as f64 / total as f64
            };
            let _ = write!(
                out,
                ",\"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":{}",
                self.cache_hits, self.cache_misses, rate,
            );
            out.push_str(",\"cache_shards\":[");
            for (i, occupancy) in self.cache_shards.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{occupancy}");
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> HealthSnapshot {
        HealthSnapshot {
            ready: true,
            draining: false,
            queue_depth: 2,
            breaker: BreakerState::Closed,
            submitted: 10,
            served: 7,
            degraded: 1,
            rejected_overloaded: 2,
            rejected_draining: 0,
            deadline_expired: 1,
            batches: 3,
            model_generation: 0,
            staleness_samples: 0,
            staleness_age: Duration::ZERO,
            fleet: Vec::new(),
            cache_hits: 0,
            cache_misses: 0,
            cache_shards: Vec::new(),
        }
    }

    #[test]
    fn non_adaptive_snapshot_serializes_to_the_legacy_shape() {
        // Pinned bytes: the exact wire form before the adaptation fields
        // existed. A service that never wires an adaptation layer must not
        // change shape.
        assert_eq!(
            base().to_json(),
            "{\"ready\":true,\"draining\":false,\"queue_depth\":2,\"breaker\":\"closed\",\
             \"submitted\":10,\"served\":7,\"degraded\":1,\"rejected_overloaded\":2,\
             \"rejected_draining\":0,\"deadline_expired\":1,\"batches\":3}"
        );
    }

    #[test]
    fn adaptive_snapshot_appends_the_staleness_fields() {
        let snap = HealthSnapshot {
            model_generation: 2,
            staleness_samples: 17,
            staleness_age: Duration::from_millis(250),
            ..base()
        };
        let json = snap.to_json();
        assert!(
            json.ends_with(
                ",\"model_generation\":2,\"staleness_samples\":17,\"staleness_age_us\":250000}"
            ),
            "{json}"
        );
    }

    #[test]
    fn staleness_alone_is_enough_to_surface_the_fields() {
        // Generation 0 but samples flowing: still an adaptive service.
        let snap = HealthSnapshot {
            staleness_samples: 5,
            ..base()
        };
        assert!(snap.to_json().contains("\"model_generation\":0"));
    }

    #[test]
    fn fleet_rollup_is_serialization_invisible_until_populated() {
        // Empty fleet: byte-identical to the single-device wire form.
        assert_eq!(base().to_json(), {
            let mut plain = base();
            plain.fleet = Vec::new();
            plain.to_json()
        });
        assert!(!base().to_json().contains("fleet"));
        let snap = HealthSnapshot {
            fleet: vec![
                DeviceGeneration {
                    device: "phone-a76".into(),
                    model_generation: 2,
                    staleness_samples: 40,
                },
                DeviceGeneration {
                    device: "server-gpu".into(),
                    model_generation: 0,
                    staleness_samples: 512,
                },
            ],
            ..base()
        };
        assert!(
            snap.to_json().ends_with(
                ",\"fleet\":[{\"device\":\"phone-a76\",\"model_generation\":2,\
                 \"staleness_samples\":40},{\"device\":\"server-gpu\",\
                 \"model_generation\":0,\"staleness_samples\":512}]}"
            ),
            "{}",
            snap.to_json()
        );
    }

    #[test]
    fn cache_block_is_serialization_invisible_until_populated() {
        // Cacheless service: byte-identical to the pre-cache wire form.
        assert!(!base().to_json().contains("cache"));
        let snap = HealthSnapshot {
            cache_hits: 90,
            cache_misses: 10,
            cache_shards: vec![3, 0, 4, 3],
            ..base()
        };
        assert!(
            snap.to_json().ends_with(
                ",\"cache_hits\":90,\"cache_misses\":10,\"cache_hit_rate\":0.9,\
                 \"cache_shards\":[3,0,4,3]}"
            ),
            "{}",
            snap.to_json()
        );
        // Counters without per-shard detail (or vice versa) still surface.
        let sparse = HealthSnapshot {
            cache_misses: 1,
            ..base()
        };
        assert!(
            sparse.to_json().contains("\"cache_hit_rate\":0"),
            "{}",
            sparse.to_json()
        );
    }

    #[test]
    fn accounting_invariant_matches_the_drain_report() {
        assert!(base().fully_accounted());
        let short = HealthSnapshot {
            served: 6,
            ..base()
        };
        assert!(!short.fully_accounted());
    }
}
