//! Time as a capability: every clock read and sleep in the serving layer
//! goes through [`Clock`], so tests swap in a [`VirtualClock`] and the whole
//! service — deadlines, breaker cool-downs, slow-response faults — becomes a
//! pure function of the request sequence. Determinism is not a test trick
//! here; it is what makes the chaos soak's byte-identity assertion possible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic time source plus the ability to wait on it.
///
/// `now` is an offset from the clock's own epoch (whatever instant it was
/// created at); only differences are meaningful, which is all deadlines and
/// cool-downs need.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Monotonic time since the clock's epoch.
    fn now(&self) -> Duration;
    /// Waits for `d` of this clock's time to pass.
    fn sleep(&self, d: Duration);
}

/// Wall-clock time, anchored at construction.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A clock that only moves when told to (or slept on).
///
/// `sleep` advances the clock instead of blocking, so a single-threaded
/// test drives hours of service time in microseconds — and two runs of the
/// same request sequence read identical timestamps, which is what the
/// telemetry byte-identity test asserts.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(
            d.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::AcqRel,
        );
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Acquire))
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_moves_only_when_told() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_millis(5));
        c.sleep(Duration::from_millis(7));
        assert_eq!(c.now(), Duration::from_millis(12));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
