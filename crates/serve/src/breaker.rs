//! The circuit breaker: stop hammering a faulting primary, serve from the
//! fallback, and probe for recovery on a deterministic schedule.
//!
//! Classic three-state machine (Closed → Open → HalfOpen) with two twists
//! that keep the serving layer reproducible:
//!
//! * **No timers.** The Open → HalfOpen transition happens *lazily*, inside
//!   the next [`try_acquire`](CircuitBreaker::try_acquire) or
//!   [`state`](CircuitBreaker::state) call whose `now` is past the cool-down
//!   — time is data ([`Clock`](crate::Clock)), not a background thread.
//! * **Audited transitions.** Every state change is recorded with its
//!   timestamp and reason and drained via
//!   [`take_transitions`](CircuitBreaker::take_transitions), so telemetry
//!   shows the breaker's life story in order, byte-identically across
//!   same-seed runs.

use std::fmt;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Where the breaker is in its trip/probe/recover cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every request may use the primary.
    Closed,
    /// Tripped: the primary is off-limits until the cool-down elapses.
    Open,
    /// Probing: one trial request at a time may touch the primary.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        })
    }
}

/// Trip and recovery thresholds.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive primary failures that trip Closed → Open.
    pub trip_after: usize,
    /// How long Open lasts before the next acquire probes (HalfOpen).
    pub open_for: Duration,
    /// Consecutive successful trials that close a HalfOpen breaker.
    pub trial_successes: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            trip_after: 3,
            open_for: Duration::from_millis(50),
            trial_successes: 2,
        }
    }
}

/// One audited state change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Service-clock time of the change.
    pub at: Duration,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
    /// Why ("tripped", "probing", "recovered", "probe_failed").
    pub reason: &'static str,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: usize,
    opened_at: Duration,
    trial_in_flight: bool,
    trial_successes: usize,
    transitions: Vec<Transition>,
}

/// The breaker itself. All methods take `now` explicitly — the caller owns
/// time — and are cheap enough to call per request.
///
/// Lock discipline: one non-reentrant mutex around the whole state, every
/// method acquires and releases it exactly once and never calls user code
/// under it, so the breaker cannot deadlock (a property the proptest suite
/// hammers on).
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: Duration::ZERO,
                trial_in_flight: false,
                trial_successes: 0,
                transitions: Vec::new(),
            }),
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding the lock leaves plain-old-data state; every
        // reachable state is valid, so poisoning is recoverable by design.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn transition(inner: &mut Inner, at: Duration, to: BreakerState, reason: &'static str) {
        let from = inner.state;
        inner.state = to;
        inner.transitions.push(Transition {
            at,
            from,
            to,
            reason,
        });
    }

    /// Applies the lazy Open → HalfOpen move if the cool-down has elapsed.
    fn settle(&self, inner: &mut Inner, now: Duration) {
        if inner.state == BreakerState::Open && now >= inner.opened_at + self.config.open_for {
            Self::transition(inner, now, BreakerState::HalfOpen, "probing");
            inner.trial_in_flight = false;
            inner.trial_successes = 0;
        }
    }

    /// The state as of `now` (performing any due lazy transition).
    pub fn state(&self, now: Duration) -> BreakerState {
        let mut inner = self.lock();
        self.settle(&mut inner, now);
        inner.state
    }

    /// May the caller send work to the primary right now?
    ///
    /// * Closed — always yes.
    /// * Open — no, until the cool-down elapses (then the breaker moves to
    ///   HalfOpen and this very call is granted as the first trial).
    /// * HalfOpen — yes for exactly one in-flight trial at a time.
    pub fn try_acquire(&self, now: Duration) -> bool {
        let mut inner = self.lock();
        self.settle(&mut inner, now);
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if inner.trial_in_flight {
                    false
                } else {
                    inner.trial_in_flight = true;
                    true
                }
            }
        }
    }

    /// Reports a primary success for work acquired at `now`.
    pub fn record_success(&self, now: Duration) {
        let mut inner = self.lock();
        self.settle(&mut inner, now);
        match inner.state {
            BreakerState::Closed => inner.consecutive_failures = 0,
            // A success landing while Open is a leftover from before the
            // trip; it carries no information about the primary *now*.
            BreakerState::Open => {}
            BreakerState::HalfOpen => {
                inner.trial_in_flight = false;
                inner.trial_successes += 1;
                if inner.trial_successes >= self.config.trial_successes {
                    Self::transition(&mut inner, now, BreakerState::Closed, "recovered");
                    inner.consecutive_failures = 0;
                    inner.trial_successes = 0;
                }
            }
        }
    }

    /// Reports a primary failure for work acquired at `now`.
    pub fn record_failure(&self, now: Duration) {
        let mut inner = self.lock();
        self.settle(&mut inner, now);
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.trip_after {
                    Self::transition(&mut inner, now, BreakerState::Open, "tripped");
                    inner.opened_at = now;
                }
            }
            BreakerState::Open => {}
            BreakerState::HalfOpen => {
                Self::transition(&mut inner, now, BreakerState::Open, "probe_failed");
                inner.opened_at = now;
                inner.trial_in_flight = false;
                inner.trial_successes = 0;
            }
        }
    }

    /// Force-opens the breaker with an audited `reason`, regardless of the
    /// failure streak — the rollback path: when a freshly promoted model
    /// regresses, the adaptation layer reinstates the previous generation
    /// *and* trips the breaker so traffic rides the LUT fallback for one
    /// cool-down while the restored model warms back up. No-op when already
    /// Open (the existing cool-down keeps its clock).
    pub fn trip(&self, now: Duration, reason: &'static str) {
        let mut inner = self.lock();
        self.settle(&mut inner, now);
        if inner.state != BreakerState::Open {
            Self::transition(&mut inner, now, BreakerState::Open, reason);
            inner.opened_at = now;
            inner.trial_in_flight = false;
            inner.trial_successes = 0;
            inner.consecutive_failures = 0;
        }
    }

    /// Drains the audited transitions accumulated since the last call,
    /// oldest first.
    pub fn take_transitions(&self) -> Vec<Transition> {
        std::mem::take(&mut self.lock().transitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn tripped(b: &CircuitBreaker, at: Duration) {
        for _ in 0..b.config().trip_after {
            b.record_failure(at);
        }
        assert_eq!(b.state(at), BreakerState::Open);
    }

    #[test]
    fn consecutive_failures_trip_interleaved_successes_do_not() {
        let b = CircuitBreaker::new(BreakerConfig::default());
        for _ in 0..10 {
            b.record_failure(ms(0));
            b.record_success(ms(0));
        }
        assert_eq!(
            b.state(ms(0)),
            BreakerState::Closed,
            "streak keeps resetting"
        );
        tripped(&b, ms(1));
        assert!(!b.try_acquire(ms(1)), "open means no primary");
    }

    #[test]
    fn cooldown_grants_exactly_one_trial_then_recovery_closes() {
        let cfg = BreakerConfig::default();
        let open_for = cfg.open_for;
        let need = cfg.trial_successes;
        let b = CircuitBreaker::new(cfg);
        tripped(&b, ms(0));
        assert!(!b.try_acquire(open_for - ms(1)), "still cooling down");
        assert!(b.try_acquire(open_for), "first probe granted");
        assert!(!b.try_acquire(open_for), "one trial in flight at a time");
        for k in 0..need {
            b.record_success(open_for + ms(k as u64));
            if k + 1 < need {
                assert!(b.try_acquire(open_for + ms(k as u64)), "next trial");
            }
        }
        assert_eq!(b.state(open_for + ms(need as u64)), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_and_restarts_the_cooldown() {
        let cfg = BreakerConfig::default();
        let open_for = cfg.open_for;
        let b = CircuitBreaker::new(cfg);
        tripped(&b, ms(0));
        assert!(b.try_acquire(open_for));
        b.record_failure(open_for);
        assert_eq!(b.state(open_for), BreakerState::Open);
        assert!(!b.try_acquire(open_for + open_for - ms(1)), "new cool-down");
        assert!(b.try_acquire(open_for + open_for), "re-probes again");
    }

    #[test]
    fn forced_trip_is_audited_and_cools_down_normally() {
        let cfg = BreakerConfig::default();
        let open_for = cfg.open_for;
        let b = CircuitBreaker::new(cfg);
        b.trip(ms(3), "rolled_back");
        assert_eq!(b.state(ms(3)), BreakerState::Open);
        assert!(!b.try_acquire(ms(3) + open_for - ms(1)));
        // Re-tripping while Open keeps the original cool-down clock.
        b.trip(ms(5), "rolled_back");
        assert!(b.try_acquire(ms(3) + open_for), "original cool-down held");
        let reasons: Vec<&str> = b.take_transitions().iter().map(|t| t.reason).collect();
        assert_eq!(reasons, ["rolled_back", "probing"]);
    }

    #[test]
    fn transitions_are_audited_in_order() {
        let cfg = BreakerConfig::default();
        let open_for = cfg.open_for;
        let need = cfg.trial_successes;
        let b = CircuitBreaker::new(cfg);
        tripped(&b, ms(2));
        assert!(b.try_acquire(open_for + ms(2)));
        for _ in 0..need {
            b.record_success(open_for + ms(3));
            b.try_acquire(open_for + ms(3));
        }
        let reasons: Vec<&str> = b.take_transitions().iter().map(|t| t.reason).collect();
        assert_eq!(reasons, ["tripped", "probing", "recovered"]);
        assert!(b.take_transitions().is_empty(), "drained");
    }
}
