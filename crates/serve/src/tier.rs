//! Serving-tier selection: which kernel tier and weight precision the
//! service answers queries with.
//!
//! The serving layer itself is tier-agnostic — [`crate::PredictorService`]
//! coalesces onto whatever [`BatchPredictor`](lightnas_predictor::BatchPredictor)
//! it is handed. This module is the one place that choice is made:
//!
//! * [`ServingTier::Strict`] — the default. Kernels run the strict
//!   bit-reproducible path; predictions are byte-identical across runs,
//!   thread counts and batch splits.
//! * [`ServingTier::Fast`] — opt-in (`LIGHTNAS_KERNEL_MODE=fast`).
//!   FMA-contracted autotuned kernels; predictions carry the documented
//!   reduction-depth tolerance (`lightnas_tensor::tolerance`) instead of
//!   bit-identity.
//! * [`ServingTier::FastF16`] — fast kernels plus binary16 weight
//!   *storage* (`LIGHTNAS_SERVE_WEIGHTS=f16`): the deployed predictor is
//!   quantized exactly as an f16 checkpoint round trip would, halving
//!   weight bytes. Arithmetic stays `f32`.
//!
//! The tier is decided once at deploy time: [`ServingTier::activate`] flips
//! the process kernel mode, and [`ServingTier::prepare`] produces the
//! predictor the service should own for that tier.

use lightnas_predictor::MlpPredictor;
use lightnas_tensor::KernelMode;

/// Environment knob selecting the served weight precision (`"f16"` or
/// `"f32"`; anything else is ignored).
pub const WEIGHTS_ENV: &str = "LIGHTNAS_SERVE_WEIGHTS";

/// The kernel tier + weight precision a deployment serves with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServingTier {
    /// Strict kernels, f32 weights: bit-reproducible serving (default).
    #[default]
    Strict,
    /// Fast kernels, f32 weights: tolerance-bounded serving.
    Fast,
    /// Fast kernels, f16-stored weights widened on load.
    FastF16,
}

impl ServingTier {
    /// Reads the tier from the environment: `LIGHTNAS_KERNEL_MODE=fast`
    /// selects the fast tier, and `LIGHTNAS_SERVE_WEIGHTS=f16` additionally
    /// selects half-precision weight storage. f16 storage without fast
    /// kernels is not a tier — the point of strict serving is bit-identity
    /// with the searched checkpoint, which quantization would break.
    pub fn from_env() -> Self {
        let fast = std::env::var(lightnas_tensor::MODE_ENV)
            .map(|v| v.trim().eq_ignore_ascii_case("fast"))
            .unwrap_or(false);
        if !fast {
            return Self::Strict;
        }
        let f16 = std::env::var(WEIGHTS_ENV)
            .map(|v| v.trim().eq_ignore_ascii_case("f16"))
            .unwrap_or(false);
        if f16 {
            Self::FastF16
        } else {
            Self::Fast
        }
    }

    /// The kernel mode this tier runs.
    pub fn kernel_mode(self) -> KernelMode {
        match self {
            Self::Strict => KernelMode::Strict,
            Self::Fast | Self::FastF16 => KernelMode::Fast,
        }
    }

    /// Applies the tier's kernel mode to the process.
    pub fn activate(self) {
        lightnas_tensor::set_kernel_mode(self.kernel_mode());
    }

    /// The predictor the service should deploy for this tier: the trained
    /// weights as-is for f32 tiers, or the f16-quantized clone — exactly
    /// what loading an f16 checkpoint produces — for [`Self::FastF16`].
    pub fn prepare(self, trained: &MlpPredictor) -> MlpPredictor {
        match self {
            Self::Strict | Self::Fast => trained.clone(),
            Self::FastF16 => trained.quantize_f16(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tier_is_strict() {
        assert_eq!(ServingTier::default(), ServingTier::Strict);
        assert_eq!(ServingTier::Strict.kernel_mode(), KernelMode::Strict);
        assert_eq!(ServingTier::Fast.kernel_mode(), KernelMode::Fast);
        assert_eq!(ServingTier::FastF16.kernel_mode(), KernelMode::Fast);
    }
}
