//! Checkpoint round-trip contracts for the MLP predictor.
//!
//! * **f32 (strict tier)** — load(save(p)) is *the same predictor*: every
//!   prediction bit-identical, and re-serializing reproduces the same bytes
//!   (byte-compatibility, so strict checkpoints diff clean across runs).
//! * **f16 (fast tier)** — the payload halves; predictions move by at most
//!   the documented `2⁻⁸ · std` bound (each weight shifts ≤ 2⁻¹¹ relative,
//!   and three ≤154-deep layers cannot amplify that past 2⁻⁸ on the
//!   standardized scale). The quantized-in-memory predictor
//!   ([`MlpPredictor::quantize_f16`]) matches the f16 checkpoint
//!   bit-for-bit — serving can pre-commit to deployed-quantization results
//!   without touching disk.

use lightnas_hw::Xavier;
use lightnas_predictor::{Metric, MetricDataset, MlpPredictor, TrainConfig, WeightPrecision};
use lightnas_space::SearchSpace;

fn trained() -> (MlpPredictor, MetricDataset) {
    let space = SearchSpace::standard();
    let device = Xavier::maxn();
    let data = MetricDataset::sample(&device, &space, Metric::LatencyMs, 600, 17);
    let config = TrainConfig {
        epochs: 20,
        batch_size: 128,
        lr: 2e-3,
        seed: 3,
    };
    let predictor = MlpPredictor::train(&data, &config);
    (predictor, data)
}

#[test]
fn f32_round_trip_is_bit_exact_and_byte_stable() {
    let (p, data) = trained();
    let bytes = p.to_bytes(WeightPrecision::F32);
    let loaded = MlpPredictor::from_bytes(&bytes).expect("f32 checkpoint must parse");
    for (a, b) in p
        .predict_batch(data.encodings())
        .iter()
        .zip(loaded.predict_batch(data.encodings()))
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "f32 round trip changed a prediction"
        );
    }
    assert_eq!(
        bytes,
        loaded.to_bytes(WeightPrecision::F32),
        "re-serializing an f32 checkpoint must reproduce its bytes"
    );
}

#[test]
fn f16_round_trip_stays_within_the_documented_bound() {
    let (p, data) = trained();
    let bytes16 = p.to_bytes(WeightPrecision::F16);
    let loaded = MlpPredictor::from_bytes(&bytes16).expect("f16 checkpoint must parse");
    // The documented contract: ≤ 2⁻⁸ of the target scale per prediction.
    let bound = data.target_std().max(1e-6) * 2.0f64.powi(-8);
    let want = p.predict_batch(data.encodings());
    let got = loaded.predict_batch(data.encodings());
    let mut worst = 0.0f64;
    for (g, w) in got.iter().zip(&want) {
        worst = worst.max((g - w).abs());
    }
    assert!(
        worst <= bound,
        "f16 round trip moved a prediction by {worst:.3e} ms (> bound {bound:.3e} ms)"
    );
    // The bound is tight enough to mean something: the quantization must
    // actually perturb at least one prediction (weights are not f16-exact).
    assert!(
        got.iter()
            .zip(&want)
            .any(|(g, w)| g.to_bits() != w.to_bits()),
        "f16 storage unexpectedly produced bit-identical predictions"
    );
}

#[test]
fn f16_payload_is_half_the_size() {
    let (p, _) = trained();
    let f32_len = p.to_bytes(WeightPrecision::F32).len();
    let f16_len = p.to_bytes(WeightPrecision::F16).len();
    // Identical headers and names; only the weight payload halves.
    let header_overhead = 2 * f16_len as i64 - f32_len as i64;
    assert!(
        (0..1024).contains(&header_overhead),
        "expected ~half-size f16 payload: f32 {f32_len} bytes, f16 {f16_len} bytes"
    );
}

#[test]
fn quantize_f16_matches_the_f16_checkpoint_bitwise() {
    let (p, data) = trained();
    let via_bytes = MlpPredictor::from_bytes(&p.to_bytes(WeightPrecision::F16)).unwrap();
    let in_memory = p.quantize_f16();
    for (a, b) in via_bytes
        .predict_batch(data.encodings())
        .iter()
        .zip(in_memory.predict_batch(data.encodings()))
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "quantize_f16 diverged from an f16 checkpoint round trip"
        );
    }
}

#[test]
fn save_and_load_through_a_file() {
    let (p, data) = trained();
    let dir = std::env::temp_dir().join(format!("lightnas-predictor-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("predictor.lnpc");
    p.save(&path, WeightPrecision::F32).unwrap();
    let loaded = MlpPredictor::load(&path).unwrap();
    let enc = &data.encodings()[0];
    assert_eq!(
        p.predict_encoding(enc).to_bits(),
        loaded.predict_encoding(enc).to_bits()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_checkpoints_are_rejected() {
    let (p, _) = trained();
    let good = p.to_bytes(WeightPrecision::F32);
    assert!(MlpPredictor::from_bytes(&[]).is_err(), "empty must fail");
    assert!(
        MlpPredictor::from_bytes(&good[..good.len() - 1]).is_err(),
        "truncation must fail"
    );
    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xff;
    assert!(MlpPredictor::from_bytes(&bad_magic).is_err());
    let mut trailing = good.clone();
    trailing.push(0);
    assert!(
        MlpPredictor::from_bytes(&trailing).is_err(),
        "trailing bytes must fail"
    );
    let mut bad_version = good;
    bad_version[4] = 0xfe;
    assert!(MlpPredictor::from_bytes(&bad_version).is_err());
}
