//! Properties of the sharded single-flight cache: sharding is an
//! implementation detail (values and counters are layout-independent),
//! batched queries keep the sequential counter semantics at every thread
//! count, and concurrent misses compute exactly once.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use lightnas_hw::Xavier;
use lightnas_predictor::{
    BatchPredictor, CachedPredictor, Metric, MetricDataset, MlpPredictor, Predictor, TrainConfig,
};
use lightnas_space::{Architecture, SearchSpace};
use proptest::prelude::*;

fn predictor() -> &'static MlpPredictor {
    static PREDICTOR: OnceLock<MlpPredictor> = OnceLock::new();
    PREDICTOR.get_or_init(|| {
        let space = SearchSpace::standard();
        let data = MetricDataset::sample(&Xavier::maxn(), &space, Metric::LatencyMs, 400, 11);
        MlpPredictor::train(
            &data,
            &TrainConfig {
                epochs: 10,
                batch_size: 128,
                lr: 2e-3,
                seed: 0,
            },
        )
    })
}

fn arch(seed: u8) -> Architecture {
    static SPACE: OnceLock<SearchSpace> = OnceLock::new();
    Architecture::random(SPACE.get_or_init(SearchSpace::standard), u64::from(seed))
}

/// One step of an arbitrary cache workload.
#[derive(Debug, Clone)]
enum Op {
    Predict(u8),
    Gradient(u8),
    Batch(Vec<u8>),
    Clear,
}

/// Decodes one generated code into a workload step (the vendored proptest
/// has no `prop_oneof`, so the op mix is folded into an integer strategy):
/// 4/11 predicts, 3/11 gradients, 3/11 batches of 1–9 rows, 1/11 clears.
fn decode_op(code: u32) -> Op {
    let seed = |salt: u32| -> u8 {
        (code
            .wrapping_mul(2_654_435_761)
            .wrapping_add(salt.wrapping_mul(0x9e37_79b9))
            % 24) as u8
    };
    match code % 11 {
        0..=3 => Op::Predict(seed(0)),
        4..=6 => Op::Gradient(seed(1)),
        7..=9 => Op::Batch((0..1 + (code / 11) % 9).map(seed).collect()),
        _ => Op::Clear,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For ANY query sequence, an unsharded (single-lock) and a sharded
    /// cache return bit-identical values at every step and end with
    /// identical merged counters: shard layout is observably irrelevant.
    #[test]
    fn sharded_and_unsharded_caches_are_observationally_identical(
        codes in proptest::collection::vec(0u32..4400, 40)
    ) {
        let ops: Vec<Op> = codes.into_iter().map(decode_op).collect();
        let p = predictor();
        let unsharded = CachedPredictor::with_shards(p, 1);
        let sharded = CachedPredictor::with_shards(p, 8);
        prop_assert_eq!(unsharded.shard_count(), 1);
        prop_assert_eq!(sharded.shard_count(), 8);
        for op in &ops {
            match op {
                Op::Predict(s) => {
                    let a = arch(*s);
                    let u = Predictor::predict(&unsharded, &a);
                    let v = Predictor::predict(&sharded, &a);
                    prop_assert_eq!(u.to_bits(), v.to_bits());
                }
                Op::Gradient(s) => {
                    let enc = arch(*s).encode();
                    let u = Predictor::gradient(&unsharded, &enc);
                    let v = Predictor::gradient(&sharded, &enc);
                    prop_assert_eq!(u, v);
                }
                Op::Batch(seeds) => {
                    let encs: Vec<Vec<f32>> =
                        seeds.iter().map(|&s| arch(s).encode()).collect();
                    let u = unsharded.predict_encodings(&encs);
                    let v = sharded.predict_encodings(&encs);
                    prop_assert_eq!(u, v);
                }
                Op::Clear => {
                    unsharded.clear();
                    sharded.clear();
                }
            }
            // Counter semantics are sequential and layout-free, so the
            // merged stats must agree after every single step.
            prop_assert_eq!(unsharded.stats(), sharded.stats());
            prop_assert_eq!(
                unsharded.cached_predictions(),
                sharded.cached_predictions()
            );
            prop_assert_eq!(unsharded.cached_gradients(), sharded.cached_gradients());
        }
        // And within each shard, misses == occupancy holds exactly.
        for cache in [&unsharded, &sharded] {
            let snap = cache.snapshot();
            prop_assert_eq!(
                snap.stats.misses as usize,
                snap.predictions + snap.gradients
            );
        }
    }
}

/// A wrapped predictor that counts how many rows actually reach it —
/// single-flight exactness is judged against this ground truth.
struct Counting<'a> {
    inner: &'a MlpPredictor,
    rows: AtomicU64,
}

impl Predictor for Counting<'_> {
    fn predict_encoding(&self, encoding: &[f32]) -> f64 {
        self.rows.fetch_add(1, Ordering::Relaxed);
        self.inner.predict_encoding(encoding)
    }
    fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
        self.rows.fetch_add(1, Ordering::Relaxed);
        self.inner.gradient(encoding)
    }
}

impl BatchPredictor for Counting<'_> {
    fn predict_encodings(&self, encodings: &[Vec<f32>]) -> Vec<f64> {
        self.rows
            .fetch_add(encodings.len() as u64, Ordering::Relaxed);
        self.inner.predict_encodings(encodings)
    }
}

/// The batch every thread queries: 24 rows over 8 distinct architectures
/// (each repeated 3×, interleaved), so first-occurrence-miss / repeat-hit
/// accounting is exercised inside every batch.
fn mixed_batch() -> (Vec<Vec<f32>>, usize) {
    let uniques: Vec<Vec<f32>> = (0..8).map(|s| arch(s).encode()).collect();
    let batch: Vec<Vec<f32>> = (0..24).map(|i| uniques[i % 8].clone()).collect();
    (batch, 8)
}

#[test]
fn batched_counter_semantics_and_values_hold_at_1_2_and_8_threads() {
    let p = predictor();
    let (batch, distinct) = mixed_batch();
    let reference: Vec<f64> = batch.iter().map(|e| p.predict_encoding(e)).collect();
    for threads in [1usize, 2, 8] {
        let counting = Counting {
            inner: p,
            rows: AtomicU64::new(0),
        };
        let cached = CachedPredictor::new(&counting);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let got = cached.predict_encodings(&batch);
                    // Value byte-identity: every thread sees exactly the
                    // uncached per-row answers, at any thread count.
                    for (g, w) in got.iter().zip(&reference) {
                        assert_eq!(g.to_bits(), w.to_bits(), "{threads} threads");
                    }
                });
            }
        });
        // Single-flight exactness: each distinct key reached the wrapped
        // predictor exactly once, no matter how many threads missed it.
        assert_eq!(
            counting.rows.load(Ordering::Relaxed),
            distinct as u64,
            "{threads} threads"
        );
        let stats = cached.stats();
        assert_eq!(stats.misses, distinct as u64, "{threads} threads");
        // Conservation: every row of every thread's batch is accounted a
        // hit or a miss, exactly once.
        assert_eq!(
            stats.hits + stats.misses,
            (threads * batch.len()) as u64,
            "{threads} threads"
        );
        assert_eq!(cached.cached_predictions(), distinct);
    }
}

#[test]
fn sequential_batch_pins_first_occurrence_miss_then_repeat_hit() {
    let p = predictor();
    let (batch, distinct) = mixed_batch();
    let cached = CachedPredictor::new(p);
    let _ = cached.predict_encodings(&batch);
    let stats = cached.stats();
    assert_eq!(stats.misses, distinct as u64, "first occurrences miss");
    assert_eq!(
        stats.hits,
        (batch.len() - distinct) as u64,
        "in-batch repeats hit"
    );
    // Re-running the batch converts every row into a hit.
    let _ = cached.predict_encodings(&batch);
    let stats = cached.stats();
    assert_eq!(stats.misses, distinct as u64);
    assert_eq!(stats.hits, (2 * batch.len() - distinct) as u64);
}
