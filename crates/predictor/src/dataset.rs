//! Sampled (architecture encoding, measured metric) datasets.

use lightnas_hw::Xavier;
use lightnas_space::{Architecture, SearchSpace};
use rand::RngExt;

/// Which hardware metric a dataset (and the predictor fit on it) targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Inference latency in milliseconds (batch 8).
    LatencyMs,
    /// Inference energy in millijoules.
    EnergyMj,
    /// Peak inference memory in MiB (weights + largest activation set).
    PeakMemoryMib,
}

impl Metric {
    /// Unit suffix for display.
    pub fn unit(self) -> &'static str {
        match self {
            Metric::LatencyMs => "ms",
            Metric::EnergyMj => "mJ",
            Metric::PeakMemoryMib => "MiB",
        }
    }
}

/// A set of measured architectures: the predictor's training substrate.
///
/// Each row pairs the flattened `ᾱ` encoding (154 binary values) with one
/// noisy on-device measurement.
#[derive(Debug, Clone)]
pub struct MetricDataset {
    metric: Metric,
    encodings: Vec<Vec<f32>>,
    targets: Vec<f64>,
    archs: Vec<Architecture>,
}

impl MetricDataset {
    /// Samples `n` uniformly random architectures and measures each once on
    /// `device` (the paper's 10,000-architecture protocol).
    pub fn sample(
        device: &Xavier,
        space: &SearchSpace,
        metric: Metric,
        n: usize,
        seed: u64,
    ) -> Self {
        Self::collect(device, space, metric, n, seed, |space, i, _rng| {
            Architecture::random(space, seed.wrapping_add(i as u64))
        })
    }

    /// Samples a coverage-enriched corpus: 80% uniform, 10% drawn from a
    /// random two-operator pool per architecture, 10% near-homogeneous
    /// (one dominant operator with random flips).
    ///
    /// Uniform sampling almost never produces the *concentrated*
    /// architectures (e.g. all-`K7E6`) that a converged search derives, so a
    /// predictor fit on it extrapolates poorly exactly where the constraint
    /// loop operates. The enriched corpus keeps the paper's protocol for
    /// 80% of rows and spends the rest on distribution tails.
    pub fn sample_diverse(
        device: &Xavier,
        space: &SearchSpace,
        metric: Metric,
        n: usize,
        seed: u64,
    ) -> Self {
        use lightnas_space::{Operator, NUM_OPS, SEARCHABLE_LAYERS};
        Self::collect(device, space, metric, n, seed, |space, i, rng| {
            match i % 10 {
                8 => {
                    // Two-operator pool.
                    let a = rng.random_range(0..NUM_OPS);
                    let b = rng.random_range(0..NUM_OPS);
                    let ops = (0..SEARCHABLE_LAYERS)
                        .map(|_| Operator::from_index(if rng.random::<bool>() { a } else { b }))
                        .collect();
                    Architecture::new(ops)
                }
                9 => {
                    // Dominant operator with ~30% flips.
                    let dom = rng.random_range(0..NUM_OPS);
                    let ops = (0..SEARCHABLE_LAYERS)
                        .map(|_| {
                            if rng.random_range(0..10) < 3 {
                                Operator::from_index(rng.random_range(0..NUM_OPS))
                            } else {
                                Operator::from_index(dom)
                            }
                        })
                        .collect();
                    Architecture::new(ops)
                }
                _ => Architecture::random(space, seed.wrapping_add(i as u64)),
            }
        })
    }

    fn collect(
        device: &Xavier,
        space: &SearchSpace,
        metric: Metric,
        n: usize,
        seed: u64,
        mut draw: impl FnMut(&SearchSpace, usize, &mut rand::rngs::StdRng) -> Architecture,
    ) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xd1ce_5eed);
        let mut encodings = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        let mut archs = Vec::with_capacity(n);
        for i in 0..n {
            let arch = draw(space, i, &mut rng);
            let y = match metric {
                Metric::LatencyMs => device.measure_latency_ms(&arch, space, seed ^ i as u64),
                Metric::EnergyMj => device.measure_energy_mj(&arch, space, seed ^ i as u64),
                Metric::PeakMemoryMib => {
                    device.measure_peak_memory_mib(&arch, space, seed ^ i as u64)
                }
            };
            encodings.push(arch.encode());
            targets.push(y);
            archs.push(arch);
        }
        Self {
            metric,
            encodings,
            targets,
            archs,
        }
    }

    /// Builds a dataset from preexisting rows.
    ///
    /// # Panics
    ///
    /// Panics if the row counts disagree.
    pub fn from_rows(metric: Metric, archs: Vec<Architecture>, targets: Vec<f64>) -> Self {
        assert_eq!(archs.len(), targets.len(), "row count mismatch");
        let encodings = archs.iter().map(Architecture::encode).collect();
        Self {
            metric,
            encodings,
            targets,
            archs,
        }
    }

    /// Builds a dataset from raw (encoding, target) rows, decoding each
    /// encoding back to its [`Architecture`]. The online-adaptation path
    /// lives in encoding space (that is what flows through the serving
    /// layer), so this is how a live sample window becomes a fine-tuning
    /// dataset.
    ///
    /// # Panics
    ///
    /// Panics if the row counts disagree or an encoding is not a valid
    /// one-hot architecture encoding.
    pub fn from_encoding_rows(metric: Metric, encodings: &[Vec<f32>], targets: &[f64]) -> Self {
        assert_eq!(encodings.len(), targets.len(), "row count mismatch");
        let archs = encodings.iter().map(|e| Architecture::decode(e)).collect();
        Self::from_rows(metric, archs, targets.to_vec())
    }

    /// The metric this dataset measures.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// `true` when the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// The flattened encodings, row-aligned with [`targets`](Self::targets).
    pub fn encodings(&self) -> &[Vec<f32>] {
        &self.encodings
    }

    /// The measured values.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// The sampled architectures.
    pub fn archs(&self) -> &[Architecture] {
        &self.archs
    }

    /// Mean of the targets (0 if empty).
    pub fn target_mean(&self) -> f64 {
        if self.targets.is_empty() {
            return 0.0;
        }
        self.targets.iter().sum::<f64>() / self.targets.len() as f64
    }

    /// Standard deviation of the targets (0 if fewer than 2 rows).
    pub fn target_std(&self) -> f64 {
        if self.targets.len() < 2 {
            return 0.0;
        }
        let m = self.target_mean();
        (self.targets.iter().map(|t| (t - m) * (t - m)).sum::<f64>() / self.targets.len() as f64)
            .sqrt()
    }

    /// Writes the dataset as CSV (`architecture,target`) to any writer —
    /// a `&mut Vec<u8>`, a file, etc. (a `&mut W` works wherever a
    /// `W: Write` is expected). Architectures use their parseable label
    /// form (`K3E6-...`).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "architecture,target_{}", self.metric.unit())?;
        for (arch, target) in self.archs.iter().zip(&self.targets) {
            writeln!(w, "{arch},{target}")?;
        }
        Ok(())
    }

    /// The first `n` rows as a new dataset (all rows when `n >= len`).
    /// Rows are i.i.d. by construction, so a prefix is an unbiased
    /// subsample — the canonical way to cut a ≤100-row transfer budget out
    /// of a device's corpus.
    pub fn take(&self, n: usize) -> Self {
        let n = n.min(self.len());
        Self {
            metric: self.metric,
            encodings: self.encodings[..n].to_vec(),
            targets: self.targets[..n].to_vec(),
            archs: self.archs[..n].to_vec(),
        }
    }

    /// Splits into `(train, valid)` keeping the first `fraction` of rows for
    /// training (rows are i.i.d. by construction, so a prefix split is an
    /// unbiased 80/20 protocol).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1` and both folds end up non-empty.
    pub fn split(&self, fraction: f64) -> (Self, Self) {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0, 1)"
        );
        let cut = ((self.len() as f64) * fraction).round() as usize;
        assert!(cut > 0 && cut < self.len(), "split produces an empty fold");
        let take = |range: std::ops::Range<usize>| Self {
            metric: self.metric,
            encodings: self.encodings[range.clone()].to_vec(),
            targets: self.targets[range.clone()].to_vec(),
            archs: self.archs[range].to_vec(),
        };
        (take(0..cut), take(cut..self.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightnas_hw::Xavier;

    fn small() -> MetricDataset {
        MetricDataset::sample(
            &Xavier::maxn(),
            &SearchSpace::standard(),
            Metric::LatencyMs,
            64,
            3,
        )
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.targets(), b.targets());
    }

    #[test]
    fn encodings_match_archs() {
        let d = small();
        for (arch, enc) in d.archs().iter().zip(d.encodings()) {
            assert_eq!(&arch.encode(), enc);
        }
    }

    #[test]
    fn split_sizes() {
        let d = small();
        let (tr, va) = d.split(0.75);
        assert_eq!(tr.len(), 48);
        assert_eq!(va.len(), 16);
        assert_eq!(tr.metric(), Metric::LatencyMs);
    }

    #[test]
    fn latency_targets_are_in_device_range() {
        let d = small();
        for &t in d.targets() {
            assert!(t > 10.0 && t < 45.0, "latency {t} out of plausible range");
        }
    }

    #[test]
    fn energy_dataset_uses_energy_scale() {
        let d = MetricDataset::sample(
            &Xavier::maxn(),
            &SearchSpace::standard(),
            Metric::EnergyMj,
            32,
            4,
        );
        assert!(d.target_mean() > 100.0, "energy should be hundreds of mJ");
        assert_eq!(d.metric().unit(), "mJ");
    }

    #[test]
    fn target_std_is_positive_for_random_archs() {
        assert!(small().target_std() > 0.1);
    }

    #[test]
    fn take_is_a_prefix_and_saturates() {
        let d = small();
        let t = d.take(10);
        assert_eq!(t.len(), 10);
        assert_eq!(t.targets(), &d.targets()[..10]);
        assert_eq!(t.archs()[3], d.archs()[3]);
        assert_eq!(d.take(10_000).len(), d.len());
    }

    #[test]
    fn encoding_rows_round_trip_through_decode() {
        let d = small();
        let rebuilt =
            MetricDataset::from_encoding_rows(Metric::LatencyMs, d.encodings(), d.targets());
        assert_eq!(rebuilt.encodings(), d.encodings());
        assert_eq!(rebuilt.targets(), d.targets());
        assert_eq!(rebuilt.archs(), d.archs());
    }

    #[test]
    #[should_panic(expected = "empty fold")]
    fn degenerate_split_rejected() {
        let d = small();
        let _ = d.split(0.001);
    }
}
