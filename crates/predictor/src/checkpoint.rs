//! Predictor checkpoints: a self-describing binary format with a choice of
//! weight-storage precision.
//!
//! Two precisions, mirroring the kernel tiers in `lightnas-tensor`:
//!
//! * **f32** (strict) — weights stored bit-for-bit. Loading reproduces the
//!   source predictor exactly: every prediction is bit-identical, and
//!   re-saving an f32 checkpoint reproduces the same bytes (pinned by
//!   tests). This is the default and the only format the search loop
//!   writes.
//! * **f16** (fast) — weights narrowed to IEEE binary16 with round-to-
//!   nearest-even (`lightnas_tensor::f16`), halving the payload. Arithmetic
//!   still runs in `f32`: weights are widened on load. The documented
//!   accuracy contract: each weight moves by at most `2⁻¹¹` relative
//!   (half-ULP of the 11-bit significand), and for the 154→128→64→1
//!   predictor the end-to-end prediction shift stays within
//!   `2⁻⁸ · std` of the f32 prediction (std = the predictor's target
//!   standard deviation) — asserted by the round-trip tests.
//!
//! Layout (little-endian throughout):
//!
//! ```text
//! magic   b"LNPC"                     4 bytes
//! version u16 = 1
//! prec    u8 (0 = f32, 1 = f16), pad u8 = 0
//! mean    f64
//! std     f64
//! widths  u32 count, then count × u32 (e.g. 154, 128, 64, 1)
//! params  u32 count, then per parameter in registration order:
//!         name  u16 len + UTF-8 bytes        (e.g. "predictor.l0.w")
//!         ndim  u8, then ndim × u32 dims
//!         data  product(dims) × (f32 | f16) values
//! ```

use std::fmt;
use std::path::Path;

use lightnas_nn::layers::Mlp;
use lightnas_nn::ParamStore;
use lightnas_tensor::{f16, Tensor};

use crate::MlpPredictor;

const MAGIC: [u8; 4] = *b"LNPC";
const VERSION: u16 = 1;

/// Weight-storage precision of a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightPrecision {
    /// Bit-exact `f32` storage (the strict tier; default).
    F32,
    /// Half-size binary16 storage, widened to `f32` on load (the fast tier).
    F16,
}

/// A malformed or incompatible checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError(String);

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid predictor checkpoint: {}", self.0)
    }
}

impl std::error::Error for CheckpointError {}

fn err(msg: impl Into<String>) -> CheckpointError {
    CheckpointError(msg.into())
}

/// Sequential little-endian reader over the checkpoint bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| err("truncated"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl MlpPredictor {
    /// Serializes the predictor at the chosen weight precision.
    pub fn to_bytes(&self, precision: WeightPrecision) -> Vec<u8> {
        let widths = mlp_widths(&self.store);
        let mut out = Vec::with_capacity(64 + self.store.num_scalars() * 4);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(match precision {
            WeightPrecision::F32 => 0,
            WeightPrecision::F16 => 1,
        });
        out.push(0);
        out.extend_from_slice(&self.mean.to_le_bytes());
        out.extend_from_slice(&self.std.to_le_bytes());
        out.extend_from_slice(&(widths.len() as u32).to_le_bytes());
        for w in &widths {
            out.extend_from_slice(&(*w as u32).to_le_bytes());
        }
        out.extend_from_slice(&(self.store.len() as u32).to_le_bytes());
        for (_, name, value) in self.store.iter() {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            let dims = value.shape().dims();
            out.push(dims.len() as u8);
            for d in dims {
                out.extend_from_slice(&(*d as u32).to_le_bytes());
            }
            match precision {
                WeightPrecision::F32 => {
                    for v in value.as_slice() {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
                WeightPrecision::F16 => {
                    let mut half = vec![0u16; value.len()];
                    f16::narrow_slice(value.as_slice(), &mut half);
                    for h in half {
                        out.extend_from_slice(&h.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    /// Reconstructs a predictor from [`MlpPredictor::to_bytes`] output.
    /// f16 payloads are widened back to `f32`; arithmetic never runs in
    /// half precision.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] on truncation, a bad magic/version, or a
    /// parameter set that does not describe the stored layer widths.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(err("bad magic"));
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(err(format!("unsupported version {version}")));
        }
        let precision = match r.u8()? {
            0 => WeightPrecision::F32,
            1 => WeightPrecision::F16,
            p => return Err(err(format!("unknown precision tag {p}"))),
        };
        let _pad = r.u8()?;
        let mean = r.f64()?;
        let std = r.f64()?;
        let nwidths = r.u32()? as usize;
        if !(2..=64).contains(&nwidths) {
            return Err(err(format!("implausible width count {nwidths}")));
        }
        let mut widths = Vec::with_capacity(nwidths);
        for _ in 0..nwidths {
            widths.push(r.u32()? as usize);
        }
        // Rebuild the module structure, then overwrite every initialized
        // weight from the payload (the seed is irrelevant: all parameters
        // must be present, which is checked below).
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "predictor", &widths, 0);
        let nparams = r.u32()? as usize;
        if nparams != store.len() {
            return Err(err(format!(
                "checkpoint has {nparams} parameters, widths {widths:?} need {}",
                store.len()
            )));
        }
        for _ in 0..nparams {
            let name_len = r.u16()? as usize;
            let name = std::str::from_utf8(r.take(name_len)?)
                .map_err(|_| err("parameter name is not UTF-8"))?
                .to_string();
            let ndim = r.u8()? as usize;
            let mut dims = Vec::with_capacity(ndim);
            for _ in 0..ndim {
                dims.push(r.u32()? as usize);
            }
            let len: usize = dims.iter().product();
            let data = match precision {
                WeightPrecision::F32 => {
                    let raw = r.take(len * 4)?;
                    raw.chunks_exact(4)
                        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                        .collect::<Vec<f32>>()
                }
                WeightPrecision::F16 => {
                    let raw = r.take(len * 2)?;
                    let half: Vec<u16> = raw
                        .chunks_exact(2)
                        .map(|c| u16::from_le_bytes(c.try_into().unwrap()))
                        .collect();
                    let mut wide = vec![0.0f32; len];
                    f16::widen_slice(&half, &mut wide);
                    wide
                }
            };
            let id = store
                .id(&name)
                .ok_or_else(|| err(format!("unknown parameter {name:?} for widths {widths:?}")))?;
            if store.get(id).shape().dims() != dims.as_slice() {
                return Err(err(format!(
                    "parameter {name:?} has shape {dims:?}, expected {:?}",
                    store.get(id).shape().dims()
                )));
            }
            store.set(id, Tensor::from_vec(data, &dims));
        }
        if r.pos != bytes.len() {
            return Err(err("trailing bytes after the last parameter"));
        }
        Ok(Self {
            store,
            mlp,
            mean,
            std,
        })
    }

    /// Writes a checkpoint file (see [`MlpPredictor::to_bytes`]).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: impl AsRef<Path>, precision: WeightPrecision) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes(precision))
    }

    /// Reads a checkpoint file written by [`MlpPredictor::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; format errors surface as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// The predictor an f16 checkpoint round-trip produces, without the
    /// bytes: every weight narrowed to binary16 and widened back. Serving
    /// uses this to pre-commit to the quantized weights so that predictions
    /// match a deployed f16 checkpoint bit-for-bit.
    pub fn quantize_f16(&self) -> Self {
        let mut q = self.clone();
        let ids: Vec<_> = q.store.iter().map(|(id, _, _)| id).collect();
        for id in ids {
            f16::round_trip_slice(q.store.get_mut(id).as_mut_slice());
        }
        q
    }
}

/// Recovers the layer widths from the parameter shapes (`predictor.l{i}.w`
/// is `[in, out]`).
///
/// # Panics
///
/// Panics if the store does not hold a `predictor.*`-named MLP.
fn mlp_widths(store: &ParamStore) -> Vec<usize> {
    let mut widths = Vec::new();
    for i in 0.. {
        let Some(id) = store.id(&format!("predictor.l{i}.w")) else {
            break;
        };
        let dims = store.get(id).shape().dims();
        if widths.is_empty() {
            widths.push(dims[0]);
        }
        widths.push(dims[1]);
    }
    assert!(
        widths.len() >= 2,
        "parameter store holds no predictor.l*.w parameters"
    );
    widths
}
