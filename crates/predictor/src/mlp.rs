//! The MLP metric predictor (three FC layers: 128, 64, 1 — paper Sec. 3.2).

use lightnas_nn::layers::Mlp;
use lightnas_nn::optim::Adam;
use lightnas_nn::{Bindings, ParamStore};
use lightnas_space::{Architecture, NUM_OPS, TOTAL_LAYERS};
use lightnas_tensor::{Graph, Tensor};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::MetricDataset;

/// Input width of the predictor: the flattened `ᾱ` encoding.
pub const INPUT_WIDTH: usize = TOTAL_LAYERS * NUM_OPS;

thread_local! {
    /// Scratch tape reused by the frozen-network query paths (predict /
    /// gradient). [`Graph::reset`] keeps the node and pool storage warm, so
    /// repeated queries allocate nothing in steady state.
    static SCRATCH: std::cell::RefCell<(Graph, Bindings)> =
        std::cell::RefCell::new((Graph::new(), Bindings::new()));
}

/// Runs `f` with the thread-local scratch graph, reset and ready to record.
fn with_scratch<R>(f: impl FnOnce(&mut Graph, &mut Bindings) -> R) -> R {
    SCRATCH.with(|cell| {
        let (g, bind) = &mut *cell.borrow_mut();
        g.reset();
        bind.clear();
        f(g, bind)
    })
}

/// Training hyper-parameters of the predictor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Passes over the training fold.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Initialization / shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 120,
            batch_size: 256,
            lr: 1e-3,
            seed: 0,
        }
    }
}

/// The trained MLP predictor.
///
/// Targets are standardized internally (zero mean, unit variance over the
/// training fold); predictions are returned in the original unit. The
/// trained network is frozen: prediction and input-gradient queries do not
/// mutate it — and it is `Clone`, so cross-device transfer can fork a proxy
/// predictor and [`fine_tune`](Self::fine_tune) the copy.
#[derive(Debug, Clone)]
pub struct MlpPredictor {
    pub(crate) store: ParamStore,
    pub(crate) mlp: Mlp,
    pub(crate) mean: f64,
    pub(crate) std: f64,
}

/// Runs the standard Adam/mini-batch loop over `train` against standardized
/// targets, mutating `store` in place (shared by [`MlpPredictor::train`] and
/// [`MlpPredictor::fine_tune`]).
fn fit(
    store: &mut ParamStore,
    mlp: &Mlp,
    train: &MetricDataset,
    config: &TrainConfig,
    mean: f64,
    std: f64,
) {
    let n = train.len();
    let mut opt = Adam::new(config.lr, 1e-5);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed);
    let mut order: Vec<usize> = (0..n).collect();
    // One tape for the whole run: `reset` between steps keeps node and
    // buffer capacity, so steady-state steps allocate nothing.
    let mut g = Graph::new();
    let mut bind = Bindings::new();
    for _ in 0..config.epochs {
        // Fisher-Yates shuffle per epoch.
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        for chunk in order.chunks(config.batch_size) {
            let b = chunk.len();
            let mut x = Vec::with_capacity(b * INPUT_WIDTH);
            let mut y = Vec::with_capacity(b);
            for &i in chunk {
                x.extend_from_slice(&train.encodings()[i]);
                y.push(((train.targets()[i] - mean) / std) as f32);
            }
            g.reset();
            bind.clear();
            let xv = g.input(Tensor::from_vec(x, &[b, INPUT_WIDTH]));
            let pred = mlp.forward(&mut g, &mut bind, store, xv);
            let loss = g.mse_loss(pred, Tensor::from_vec(y, &[b, 1]));
            g.backward(loss);
            opt.step(store, &g, &bind);
        }
    }
}

impl MlpPredictor {
    /// Fits the 128/64/1 MLP on `train` with Adam (the paper's protocol).
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn train(train: &MetricDataset, config: &TrainConfig) -> Self {
        assert!(!train.is_empty(), "cannot train on an empty dataset");
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "predictor",
            &[INPUT_WIDTH, 128, 64, 1],
            config.seed,
        );
        let mean = train.target_mean();
        let std = train.target_std().max(1e-6);
        fit(&mut store, &mlp, train, config, mean, std);
        Self {
            store,
            mlp,
            mean,
            std,
        }
    }

    /// Continues training **from this predictor's weights** on a (typically
    /// small) dataset from another device — the few-shot transfer step of
    /// cross-device latency estimation.
    ///
    /// The returned predictor re-standardizes against `train`'s own
    /// mean/std (devices differ in scale far more than in shape), keeps the
    /// proxy's learned feature structure as the initialization, and runs the
    /// same deterministic Adam loop as [`train`](Self::train). `self` is
    /// untouched.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn fine_tune(&self, train: &MetricDataset, config: &TrainConfig) -> Self {
        assert!(!train.is_empty(), "cannot fine-tune on an empty dataset");
        let mut store = self.store.clone();
        let mlp = self.mlp.clone();
        let mean = train.target_mean();
        let std = train.target_std().max(1e-6);
        fit(&mut store, &mlp, train, config, mean, std);
        Self {
            store,
            mlp,
            mean,
            std,
        }
    }

    /// Continues training from this predictor's weights **keeping its
    /// output standardization** — the online-adaptation entry point.
    ///
    /// [`fine_tune`](Self::fine_tune) re-standardizes against the new fold,
    /// which is right for cross-*device* transfer (scales genuinely differ)
    /// but wrong for a small drift window from the *same* device: a few
    /// dozen rows mis-estimate mean/std badly, and re-anchoring to them
    /// makes successive shadow generations wander even on a stationary
    /// stream. Keeping the incumbent's (mean, std) turns drift adaptation
    /// into pure weight refinement — the linear output head absorbs any
    /// genuine scale shift — and keeps every generation's predictions
    /// directly comparable in the monitor's residual statistics.
    ///
    /// `self` is untouched; the returned predictor is the shadow candidate.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn fine_tune_incremental(&self, train: &MetricDataset, config: &TrainConfig) -> Self {
        assert!(!train.is_empty(), "cannot fine-tune on an empty dataset");
        let mut store = self.store.clone();
        let mlp = self.mlp.clone();
        fit(&mut store, &mlp, train, config, self.mean, self.std);
        Self {
            store,
            mlp,
            mean: self.mean,
            std: self.std,
        }
    }

    /// Predicts the metric for a flattened encoding.
    ///
    /// # Panics
    ///
    /// Panics if `encoding.len() != 154`.
    pub fn predict_encoding(&self, encoding: &[f32]) -> f64 {
        assert_eq!(
            encoding.len(),
            INPUT_WIDTH,
            "encoding must have {INPUT_WIDTH} values"
        );
        with_scratch(|g, bind| {
            let x = g.input(Tensor::from_vec(encoding.to_vec(), &[1, INPUT_WIDTH]));
            let out = self.mlp.forward(g, bind, &self.store, x);
            g.value(out).as_slice()[0] as f64 * self.std + self.mean
        })
    }

    /// Predicts the metric for an architecture.
    pub fn predict(&self, arch: &Architecture) -> f64 {
        self.predict_encoding(&arch.encode())
    }

    /// Predicts the metric for every encoding in one batched GEMM pass.
    ///
    /// Bit-identical to calling [`MlpPredictor::predict_encoding`] per row:
    /// rows of a matmul are independent and each output element keeps its
    /// per-row accumulation order regardless of the batch size, so batching
    /// changes throughput, never results.
    ///
    /// # Panics
    ///
    /// Panics if any encoding's length differs from 154.
    pub fn predict_batch(&self, encodings: &[Vec<f32>]) -> Vec<f64> {
        if encodings.is_empty() {
            return Vec::new();
        }
        let b = encodings.len();
        let mut x = Vec::with_capacity(b * INPUT_WIDTH);
        for enc in encodings {
            assert_eq!(
                enc.len(),
                INPUT_WIDTH,
                "encoding must have {INPUT_WIDTH} values"
            );
            x.extend_from_slice(enc);
        }
        with_scratch(|g, bind| {
            let xv = g.input(Tensor::from_vec(x, &[b, INPUT_WIDTH]));
            let out = self.mlp.forward(g, bind, &self.store, xv);
            g.value(out)
                .as_slice()
                .iter()
                .map(|&v| v as f64 * self.std + self.mean)
                .collect()
        })
    }

    /// Gradient of the prediction w.r.t. the encoding — the `∂LAT/∂ᾱ` term
    /// of Eq. 12, obtained "through a one-time backward propagation".
    ///
    /// Returned in the metric's original unit per unit encoding change.
    ///
    /// # Panics
    ///
    /// Panics if `encoding.len() != 154`.
    pub fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
        assert_eq!(
            encoding.len(),
            INPUT_WIDTH,
            "encoding must have {INPUT_WIDTH} values"
        );
        with_scratch(|g, bind| {
            // The input is registered as a parameter so backward reaches it.
            let x = g.parameter(Tensor::from_vec(encoding.to_vec(), &[1, INPUT_WIDTH]));
            let out = self.mlp.forward(g, bind, &self.store, x);
            let scalar = g.sum(out);
            g.backward(scalar);
            g.grad(x)
                .as_slice()
                .iter()
                .map(|&v| v * self.std as f32)
                .collect()
        })
    }

    /// Root-mean-square error over a dataset, in the metric's unit.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn rmse(&self, data: &MetricDataset) -> f64 {
        assert!(!data.is_empty(), "rmse over empty dataset");
        let se: f64 = self
            .predict_batch(data.encodings())
            .iter()
            .zip(data.targets())
            .map(|(p, &y)| (p - y) * (p - y))
            .sum();
        (se / data.len() as f64).sqrt()
    }

    /// Predictions for every row of a dataset (for scatter plots, Fig. 5).
    ///
    /// Runs as one batched GEMM; see [`MlpPredictor::predict_batch`].
    pub fn predict_all(&self, data: &MetricDataset) -> Vec<f64> {
        self.predict_batch(data.encodings())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metric;
    use lightnas_hw::Xavier;
    use lightnas_space::SearchSpace;

    fn train_small() -> (MlpPredictor, MetricDataset, MetricDataset) {
        let space = SearchSpace::standard();
        let device = Xavier::maxn();
        let data = MetricDataset::sample(&device, &space, Metric::LatencyMs, 1200, 1);
        let (train, valid) = data.split(0.8);
        let config = TrainConfig {
            epochs: 40,
            batch_size: 128,
            lr: 2e-3,
            seed: 0,
        };
        (MlpPredictor::train(&train, &config), train, valid)
    }

    #[test]
    fn predictor_beats_the_mean_baseline_by_a_wide_margin() {
        let (p, _, valid) = train_small();
        let rmse = p.rmse(&valid);
        let baseline = valid.target_std();
        assert!(
            rmse < baseline / 4.0,
            "predictor RMSE {rmse:.3} ms should be ≪ mean-baseline {baseline:.3} ms"
        );
    }

    #[test]
    fn predictions_track_targets_in_rank() {
        let (p, _, valid) = train_small();
        // Spearman-ish check: correlation of prediction and target > 0.9.
        let preds = p.predict_all(&valid);
        let ys = valid.targets();
        let n = preds.len() as f64;
        let (mp, my) = (preds.iter().sum::<f64>() / n, ys.iter().sum::<f64>() / n);
        let cov: f64 = preds
            .iter()
            .zip(ys)
            .map(|(a, b)| (a - mp) * (b - my))
            .sum::<f64>()
            / n;
        let sp = (preds.iter().map(|a| (a - mp) * (a - mp)).sum::<f64>() / n).sqrt();
        let sy = (ys.iter().map(|b| (b - my) * (b - my)).sum::<f64>() / n).sqrt();
        let corr = cov / (sp * sy);
        assert!(corr > 0.9, "correlation {corr:.3} too weak");
    }

    #[test]
    fn gradient_has_input_shape_and_is_nonzero() {
        let (p, _, _) = train_small();
        let space = SearchSpace::standard();
        let arch = Architecture::random(&space, 5);
        let grad = p.gradient(&arch.encode());
        assert_eq!(grad.len(), INPUT_WIDTH);
        assert!(grad.iter().any(|&g| g.abs() > 1e-6), "gradient is all zero");
    }

    #[test]
    fn gradient_points_towards_heavier_operators() {
        // Flipping a slot from Skip to MBConv-K7E6 must increase predicted
        // latency; the input gradient should reflect that direction on
        // average across slots.
        let (p, _, _) = train_small();
        let space = SearchSpace::standard();
        let arch = Architecture::random(&space, 9);
        let grad = p.gradient(&arch.encode());
        let mut heavy_minus_skip = 0.0f32;
        for l in 1..TOTAL_LAYERS {
            // index 5 = K7E6, index 6 = Skip in the canonical order.
            heavy_minus_skip += grad[l * NUM_OPS + 5] - grad[l * NUM_OPS + 6];
        }
        assert!(
            heavy_minus_skip > 0.0,
            "K7E6 direction should raise latency vs Skip (sum {heavy_minus_skip})"
        );
    }

    #[test]
    fn predict_matches_predict_encoding() {
        let (p, _, _) = train_small();
        let space = SearchSpace::standard();
        let arch = Architecture::random(&space, 3);
        assert_eq!(p.predict(&arch), p.predict_encoding(&arch.encode()));
    }

    #[test]
    fn fine_tune_adapts_to_a_shifted_metric_scale() {
        // Simulate a second device as an affine re-scale of the first: a
        // few-shot fine-tune from the proxy weights must track the new
        // scale far better than the untouched proxy does.
        let (proxy, train, valid) = train_small();
        let rescale = |d: &MetricDataset| {
            MetricDataset::from_rows(
                d.metric(),
                d.archs().to_vec(),
                d.targets().iter().map(|t| 3.5 * t + 40.0).collect(),
            )
        };
        let shifted_valid = rescale(&valid);
        let few_shot = rescale(&train).take(100);
        let arch = Architecture::random(&SearchSpace::standard(), 1);
        let before = proxy.predict(&arch);
        let tuned = proxy.fine_tune(
            &few_shot,
            &TrainConfig {
                epochs: 60,
                batch_size: 32,
                lr: 1e-3,
                seed: 0,
            },
        );
        let proxy_rmse = proxy.rmse(&shifted_valid);
        let tuned_rmse = tuned.rmse(&shifted_valid);
        assert!(
            tuned_rmse < proxy_rmse / 5.0,
            "fine-tuned RMSE {tuned_rmse:.3} should be far below the raw proxy's {proxy_rmse:.3}"
        );
        // The source predictor is frozen: fine-tuning forked a copy.
        assert_eq!(proxy.predict(&arch).to_bits(), before.to_bits());
        assert_ne!(tuned.predict(&arch).to_bits(), before.to_bits());
    }

    #[test]
    fn fine_tune_is_deterministic() {
        let (proxy, train, _) = train_small();
        let few = train.take(64);
        let cfg = TrainConfig {
            epochs: 10,
            batch_size: 32,
            lr: 1e-3,
            seed: 4,
        };
        let a = proxy.fine_tune(&few, &cfg);
        let b = proxy.fine_tune(&few, &cfg);
        let arch = Architecture::random(&SearchSpace::standard(), 7);
        assert_eq!(a.predict(&arch).to_bits(), b.predict(&arch).to_bits());
    }

    #[test]
    fn incremental_fine_tune_tracks_drift_and_keeps_the_scale_anchor() {
        // A +30% multiplicative drift on the same device: the incremental
        // path must adapt on a small window while keeping the incumbent's
        // standardization (so residual statistics stay comparable).
        let (incumbent, train, valid) = train_small();
        let drift = |d: &MetricDataset| {
            MetricDataset::from_rows(
                d.metric(),
                d.archs().to_vec(),
                d.targets().iter().map(|t| 1.3 * t).collect(),
            )
        };
        let window = drift(&train).take(128);
        let drifted_valid = drift(&valid);
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 32,
            lr: 1e-3,
            seed: 2,
        };
        let shadow = incumbent.fine_tune_incremental(&window, &cfg);
        let stale_rmse = incumbent.rmse(&drifted_valid);
        let shadow_rmse = shadow.rmse(&drifted_valid);
        assert!(
            shadow_rmse < stale_rmse / 3.0,
            "shadow RMSE {shadow_rmse:.3} should be far below the stale {stale_rmse:.3}"
        );
        // Determinism + frozen source.
        let again = incumbent.fine_tune_incremental(&window, &cfg);
        let arch = Architecture::random(&SearchSpace::standard(), 13);
        assert_eq!(
            shadow.predict(&arch).to_bits(),
            again.predict(&arch).to_bits()
        );
        assert_eq!(
            incumbent.rmse(&valid).to_bits(),
            train_small().0.rmse(&valid).to_bits(),
            "incremental fine-tune must not mutate the incumbent"
        );
    }

    #[test]
    #[should_panic(expected = "154")]
    fn wrong_input_width_rejected() {
        let (p, _, _) = train_small();
        let _ = p.predict_encoding(&[0.0; 10]);
    }

    #[test]
    fn batched_prediction_is_bit_identical_to_per_row() {
        let (p, _, valid) = train_small();
        let batched = p.predict_batch(valid.encodings());
        assert_eq!(batched.len(), valid.len());
        for (enc, b) in valid.encodings().iter().zip(&batched) {
            assert_eq!(
                b.to_bits(),
                p.predict_encoding(enc).to_bits(),
                "batched prediction diverged from the per-row path"
            );
        }
        assert!(p.predict_batch(&[]).is_empty());
    }
}
