//! Hardware-metric prediction (paper Sec. 3.2, Fig. 5, Fig. 8-left).
//!
//! Measuring every candidate on-device is impossible over a `7²¹` space, so
//! LightNAS trains a small MLP — three fully-connected layers of 128, 64 and
//! 1 neurons — that maps the sparse architecture encoding `ᾱ` (Eq. 4) to the
//! measured metric. The paper samples 10,000 random architectures, measures
//! each on the Jetson AGX Xavier, and fits the predictor on an 80/20 split,
//! reaching 0.04 ms RMSE versus 0.41 ms (plus an ≈ 11.48 ms constant gap)
//! for a per-operator look-up table.
//!
//! This crate reproduces that pipeline against the simulated device:
//!
//! * [`MetricDataset`] — seeded sampling of (encoding, measurement) pairs
//!   for latency **or** energy (the predictor "is generalizable to other
//!   hardware metrics", Sec. 3.2).
//! * [`MlpPredictor`] — the 128/64/1 MLP trained with Adam on standardized
//!   targets; exposes [`MlpPredictor::gradient`], the `∂LAT/∂ᾱ` term of
//!   Eq. 12 that makes the latency objective differentiable.
//! * [`LutPredictor`] — the look-up-table baseline built from isolated
//!   per-operator measurements, with an optional bias-corrected variant.
//!
//! # Example
//!
//! ```no_run
//! use lightnas_hw::Xavier;
//! use lightnas_predictor::{Metric, MetricDataset, MlpPredictor, TrainConfig};
//! use lightnas_space::SearchSpace;
//!
//! let space = SearchSpace::standard();
//! let device = Xavier::maxn();
//! let data = MetricDataset::sample(&device, &space, Metric::LatencyMs, 1000, 0);
//! let (train, valid) = data.split(0.8);
//! let predictor = MlpPredictor::train(&train, &TrainConfig::default());
//! println!("validation RMSE: {:.3} ms", predictor.rmse(&valid));
//! ```

mod batch;
mod cache;
mod checkpoint;
mod dataset;
mod ensemble;
mod fallback;
mod lut;
mod mlp;

pub use batch::BatchPredictor;
pub use cache::{
    architecture_key, encoding_key, CacheSnapshot, CacheStats, CachedPredictor, Predictor,
    ShardOccupancy, DEFAULT_CACHE_SHARDS,
};
pub use checkpoint::{CheckpointError, WeightPrecision};
pub use dataset::{Metric, MetricDataset};
pub use ensemble::EnsemblePredictor;
pub use fallback::{DegradeCause, FallbackPredictor};
pub use lut::LutPredictor;
pub use mlp::{MlpPredictor, TrainConfig};
