//! The [`Predictor`] abstraction, a compact encoding key, and a thread-safe
//! memoizing wrapper.
//!
//! The search engine re-evaluates `predict(argmax α)` at **every** step
//! (`LAT(α)` is defined on the derived architecture, Eq. 4), and the argmax
//! architecture changes only when a slot actually flips — so across a
//! 90-epoch search the same few hundred architectures are queried thousands
//! of times. [`CachedPredictor`] memoizes `predict`/`gradient` by the packed
//! [`encoding_key`] and exposes hit/miss counters; `lightnas-runtime` shares
//! one cache across a whole sweep of concurrent search jobs, where the hit
//! rate compounds further (neighbouring targets visit overlapping
//! architectures).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use lightnas_space::{Architecture, NUM_OPS, SEARCHABLE_LAYERS, TOTAL_LAYERS};

use crate::{EnsemblePredictor, MlpPredictor};

/// The querying interface shared by the MLP predictor, the ensemble, and
/// caching wrappers — everything a differentiable search needs from a
/// hardware-metric model.
pub trait Predictor {
    /// Predicted metric for a flattened `ᾱ` encoding (Eq. 4).
    fn predict_encoding(&self, encoding: &[f32]) -> f64;

    /// Gradient of the prediction w.r.t. the encoding (`∂LAT/∂ᾱ`, Eq. 12).
    fn gradient(&self, encoding: &[f32]) -> Vec<f32>;

    /// Predicted metric for an architecture.
    fn predict(&self, arch: &Architecture) -> f64 {
        self.predict_encoding(&arch.encode())
    }
}

impl Predictor for MlpPredictor {
    fn predict_encoding(&self, encoding: &[f32]) -> f64 {
        MlpPredictor::predict_encoding(self, encoding)
    }

    fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
        MlpPredictor::gradient(self, encoding)
    }
}

impl Predictor for EnsemblePredictor {
    fn predict_encoding(&self, encoding: &[f32]) -> f64 {
        EnsemblePredictor::predict_encoding(self, encoding)
    }

    fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
        EnsemblePredictor::gradient(self, encoding)
    }
}

impl<P: Predictor + ?Sized> Predictor for &P {
    fn predict_encoding(&self, encoding: &[f32]) -> f64 {
        (**self).predict_encoding(encoding)
    }

    fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
        (**self).gradient(encoding)
    }

    fn predict(&self, arch: &Architecture) -> f64 {
        (**self).predict(arch)
    }
}

/// Packs a one-hot `ᾱ` encoding into a single `u64` cache key: the argmax
/// operator index of each searchable row, 3 bits per slot (`K = 7 < 8`).
///
/// Equals [`architecture_key`] of the decoded architecture.
///
/// # Panics
///
/// Panics if `encoding.len() != TOTAL_LAYERS * NUM_OPS`.
pub fn encoding_key(encoding: &[f32]) -> u64 {
    assert_eq!(
        encoding.len(),
        TOTAL_LAYERS * NUM_OPS,
        "encoding must have {} values",
        TOTAL_LAYERS * NUM_OPS
    );
    let mut key = 0u64;
    for l in 1..TOTAL_LAYERS {
        let row = &encoding[l * NUM_OPS..(l + 1) * NUM_OPS];
        let mut best = 0usize;
        for (k, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = k;
            }
        }
        key = (key << 3) | best as u64;
    }
    key
}

/// The cache key of an architecture, without materializing its encoding.
pub fn architecture_key(arch: &Architecture) -> u64 {
    debug_assert_eq!(arch.ops().len(), SEARCHABLE_LAYERS);
    arch.ops()
        .iter()
        .fold(0u64, |key, op| (key << 3) | op.index() as u64)
}

/// Hit/miss counters of a [`CachedPredictor`] (one pair per query kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries forwarded to the wrapped predictor.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of queries answered from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise sum.
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

/// A thread-safe memoizing wrapper around any [`Predictor`].
///
/// Both `predict` and `gradient` results are cached by the packed
/// architecture key; concurrent readers share `RwLock`-protected maps, and a
/// simultaneous miss on two threads just computes the (deterministic) value
/// twice. The wrapped predictor is borrowed, so one cache can front the same
/// model for many search jobs at once.
///
/// Lock poisoning is recovered, not propagated: a search job that panics
/// while holding a cache lock leaves the map in a valid state (every write
/// is a single `insert` of an already-computed value), so surviving jobs in
/// the same sweep keep the cache instead of cascading the panic.
#[derive(Debug)]
pub struct CachedPredictor<'a, P: Predictor> {
    inner: &'a P,
    predictions: RwLock<HashMap<u64, f64>>,
    gradients: RwLock<HashMap<u64, Vec<f32>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'a, P: Predictor> CachedPredictor<'a, P> {
    /// Wraps `inner` with empty caches.
    pub fn new(inner: &'a P) -> Self {
        Self {
            inner,
            predictions: RwLock::new(HashMap::new()),
            gradients: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped predictor.
    pub fn inner(&self) -> &'a P {
        self.inner
    }

    /// Current hit/miss counters (aggregated over both query kinds).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct architectures with a cached prediction.
    pub fn cached_predictions(&self) -> usize {
        self.predictions
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Number of distinct architectures with a cached gradient.
    pub fn cached_gradients(&self) -> usize {
        self.gradients
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Drops all cached values and resets the counters.
    pub fn clear(&self) {
        self.predictions
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        self.gradients
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    fn predict_keyed(&self, key: u64, compute: impl FnOnce() -> f64) -> f64 {
        if let Some(&v) = self
            .predictions
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = compute();
        self.predictions
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, v);
        v
    }
}

impl<P: crate::BatchPredictor> crate::BatchPredictor for CachedPredictor<'_, P> {
    /// Batched lookup: cached rows are answered from the map, the remaining
    /// *distinct* keys go to the wrapped predictor in **one**
    /// `predict_encodings` call, and every result lands in the cache.
    ///
    /// Counter semantics match the sequential per-row loop exactly: the
    /// first occurrence of an uncached key counts as a miss, repeats of the
    /// same key inside the batch count as hits (the sequential loop would
    /// have filled the cache by then). Values are bit-identical to per-row
    /// queries because the inner batched path guarantees the same.
    fn predict_encodings(&self, encodings: &[Vec<f32>]) -> Vec<f64> {
        let mut out = vec![0.0f64; encodings.len()];
        // Rows not answered from the cache, and the first occurrence of each
        // distinct uncached key (the rows actually sent downstream).
        let mut unresolved: Vec<(usize, u64)> = Vec::new();
        let mut pending: Vec<(u64, usize)> = Vec::new();
        {
            let map = self
                .predictions
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let mut seen = std::collections::HashSet::new();
            for (i, enc) in encodings.iter().enumerate() {
                let key = encoding_key(enc);
                if let Some(&v) = map.get(&key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    out[i] = v;
                    continue;
                }
                unresolved.push((i, key));
                if seen.insert(key) {
                    pending.push((key, i));
                    self.misses.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if !pending.is_empty() {
            let miss_rows: Vec<Vec<f32>> =
                pending.iter().map(|&(_, i)| encodings[i].clone()).collect();
            let computed = self.inner.predict_encodings(&miss_rows);
            let by_key: HashMap<u64, f64> = pending
                .iter()
                .zip(&computed)
                .map(|(&(key, _), &v)| (key, v))
                .collect();
            self.predictions
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .extend(by_key.iter().map(|(&k, &v)| (k, v)));
            for &(i, key) in &unresolved {
                out[i] = by_key[&key];
            }
        }
        out
    }
}

impl<P: Predictor> Predictor for CachedPredictor<'_, P> {
    fn predict_encoding(&self, encoding: &[f32]) -> f64 {
        let key = encoding_key(encoding);
        self.predict_keyed(key, || self.inner.predict_encoding(encoding))
    }

    fn predict(&self, arch: &Architecture) -> f64 {
        // Keyed straight off the operator list — no 154-float encoding is
        // materialized on a hit.
        self.predict_keyed(architecture_key(arch), || self.inner.predict(arch))
    }

    fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
        let key = encoding_key(encoding);
        if let Some(g) = self
            .gradients
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return g.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let g = self.inner.gradient(encoding);
        self.gradients
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, g.clone());
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Metric, MetricDataset, TrainConfig};
    use lightnas_hw::Xavier;
    use lightnas_space::SearchSpace;

    fn small_predictor() -> MlpPredictor {
        let space = SearchSpace::standard();
        let device = Xavier::maxn();
        let data = MetricDataset::sample(&device, &space, Metric::LatencyMs, 400, 11);
        MlpPredictor::train(
            &data,
            &TrainConfig {
                epochs: 10,
                batch_size: 128,
                lr: 2e-3,
                seed: 0,
            },
        )
    }

    #[test]
    fn keys_agree_between_architecture_and_encoding() {
        let space = SearchSpace::standard();
        for seed in 0..32 {
            let arch = Architecture::random(&space, seed);
            assert_eq!(architecture_key(&arch), encoding_key(&arch.encode()));
        }
    }

    #[test]
    fn keys_are_distinct_across_architectures() {
        let space = SearchSpace::standard();
        let mut seen = std::collections::HashSet::new();
        for seed in 0..200 {
            seen.insert(architecture_key(&Architecture::random(&space, seed)));
        }
        assert!(seen.len() >= 199, "only {} distinct keys", seen.len());
    }

    #[test]
    fn cached_values_match_the_wrapped_predictor() {
        let p = small_predictor();
        let cached = CachedPredictor::new(&p);
        let space = SearchSpace::standard();
        for seed in 0..10 {
            let arch = Architecture::random(&space, seed);
            let enc = arch.encode();
            assert_eq!(Predictor::predict(&cached, &arch), p.predict(&arch));
            assert_eq!(Predictor::gradient(&cached, &enc), p.gradient(&enc));
            // Second round must come from the cache and stay identical.
            assert_eq!(Predictor::predict(&cached, &arch), p.predict(&arch));
            assert_eq!(Predictor::gradient(&cached, &enc), p.gradient(&enc));
        }
        let stats = cached.stats();
        assert_eq!(stats.misses, 20, "one predict + one gradient miss per arch");
        assert_eq!(stats.hits, 20);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cached.cached_predictions(), 10);
        assert_eq!(cached.cached_gradients(), 10);
    }

    #[test]
    fn batched_queries_coalesce_misses_and_serve_hits() {
        use crate::BatchPredictor;
        let p = small_predictor();
        let cached = CachedPredictor::new(&p);
        let space = SearchSpace::standard();
        // 16 rows over 6 distinct architectures, with repeats inside the
        // batch: rows 6.. cycle through the first six again.
        let uniques: Vec<Vec<f32>> = (0..6)
            .map(|s| Architecture::random(&space, s).encode())
            .collect();
        let batch: Vec<Vec<f32>> = (0..16).map(|i| uniques[i % 6].clone()).collect();
        let got = cached.predict_encodings(&batch);
        let want: Vec<f64> = batch.iter().map(|e| p.predict_encoding(e)).collect();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits(), "batched value diverged");
        }
        let stats = cached.stats();
        assert_eq!(stats.misses, 6, "one miss per distinct architecture");
        assert_eq!(stats.hits, 10, "in-batch repeats count as hits");
        assert_eq!(cached.cached_predictions(), 6);
        // A second identical batch is answered entirely from the cache.
        let again = cached.predict_encodings(&batch);
        assert_eq!(again, got);
        let stats = cached.stats();
        assert_eq!(stats.misses, 6);
        assert_eq!(stats.hits, 26);
    }

    #[test]
    fn clear_resets_everything() {
        let p = small_predictor();
        let cached = CachedPredictor::new(&p);
        let arch = Architecture::random(&SearchSpace::standard(), 1);
        let _ = Predictor::predict(&cached, &arch);
        cached.clear();
        assert_eq!(cached.stats(), CacheStats::default());
        assert_eq!(cached.cached_predictions(), 0);
    }

    #[test]
    fn concurrent_queries_are_consistent() {
        let p = small_predictor();
        let cached = CachedPredictor::new(&p);
        let space = SearchSpace::standard();
        let archs: Vec<Architecture> = (0..8).map(|s| Architecture::random(&space, s)).collect();
        let expected: Vec<f64> = archs.iter().map(|a| p.predict(a)).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for (arch, &want) in archs.iter().zip(&expected) {
                        assert_eq!(Predictor::predict(&cached, arch), want);
                    }
                });
            }
        });
        let stats = cached.stats();
        assert_eq!(stats.hits + stats.misses, 32);
        assert_eq!(cached.cached_predictions(), 8);
    }
}
