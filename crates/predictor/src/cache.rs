//! The [`Predictor`] abstraction, a compact encoding key, and a thread-safe
//! sharded memoizing wrapper.
//!
//! The search engine re-evaluates `predict(argmax α)` at **every** step
//! (`LAT(α)` is defined on the derived architecture, Eq. 4), and the argmax
//! architecture changes only when a slot actually flips — so across a
//! 90-epoch search the same few hundred architectures are queried thousands
//! of times. [`CachedPredictor`] memoizes `predict`/`gradient` by the packed
//! [`encoding_key`] and exposes hit/miss counters; `lightnas-runtime` shares
//! one cache across a whole sweep of concurrent search jobs, where the hit
//! rate compounds further (neighbouring targets visit overlapping
//! architectures), and `lightnas-serve`'s multi-tenant search service shares
//! one cache across *many* sweeps at once.
//!
//! That many-sweeps regime is why the cache is **sharded**: a single
//! `RwLock` pair serializes every hit on one cache line once eight workers
//! hammer it, so the maps are split into a power-of-two number of shards
//! keyed by a mixed encoding hash, each with its own lock and hit/miss
//! counters (merged on demand into one [`CacheStats`]). Misses are
//! **single-flight**: concurrent misses on the same key compute the value
//! once — the first arrival becomes the leader, everyone else waits for its
//! (deterministic, hence identical) answer instead of burning a redundant
//! forward pass. See DESIGN.md §16 for the full scale-out contract.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{
    Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

use lightnas_space::{Architecture, NUM_OPS, SEARCHABLE_LAYERS, TOTAL_LAYERS};

use crate::{EnsemblePredictor, MlpPredictor};

/// The querying interface shared by the MLP predictor, the ensemble, and
/// caching wrappers — everything a differentiable search needs from a
/// hardware-metric model.
pub trait Predictor {
    /// Predicted metric for a flattened `ᾱ` encoding (Eq. 4).
    fn predict_encoding(&self, encoding: &[f32]) -> f64;

    /// Gradient of the prediction w.r.t. the encoding (`∂LAT/∂ᾱ`, Eq. 12).
    fn gradient(&self, encoding: &[f32]) -> Vec<f32>;

    /// Predicted metric for an architecture.
    fn predict(&self, arch: &Architecture) -> f64 {
        self.predict_encoding(&arch.encode())
    }
}

impl Predictor for MlpPredictor {
    fn predict_encoding(&self, encoding: &[f32]) -> f64 {
        MlpPredictor::predict_encoding(self, encoding)
    }

    fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
        MlpPredictor::gradient(self, encoding)
    }
}

impl Predictor for EnsemblePredictor {
    fn predict_encoding(&self, encoding: &[f32]) -> f64 {
        EnsemblePredictor::predict_encoding(self, encoding)
    }

    fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
        EnsemblePredictor::gradient(self, encoding)
    }
}

impl<P: Predictor + ?Sized> Predictor for &P {
    fn predict_encoding(&self, encoding: &[f32]) -> f64 {
        (**self).predict_encoding(encoding)
    }

    fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
        (**self).gradient(encoding)
    }

    fn predict(&self, arch: &Architecture) -> f64 {
        (**self).predict(arch)
    }
}

/// Packs a one-hot `ᾱ` encoding into a single `u64` cache key: the argmax
/// operator index of each searchable row, 3 bits per slot (`K = 7 < 8`).
///
/// Equals [`architecture_key`] of the decoded architecture.
///
/// # Panics
///
/// Panics if `encoding.len() != TOTAL_LAYERS * NUM_OPS`.
pub fn encoding_key(encoding: &[f32]) -> u64 {
    assert_eq!(
        encoding.len(),
        TOTAL_LAYERS * NUM_OPS,
        "encoding must have {} values",
        TOTAL_LAYERS * NUM_OPS
    );
    let mut key = 0u64;
    for l in 1..TOTAL_LAYERS {
        let row = &encoding[l * NUM_OPS..(l + 1) * NUM_OPS];
        let mut best = 0usize;
        for (k, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = k;
            }
        }
        key = (key << 3) | best as u64;
    }
    key
}

/// The cache key of an architecture, without materializing its encoding.
pub fn architecture_key(arch: &Architecture) -> u64 {
    debug_assert_eq!(arch.ops().len(), SEARCHABLE_LAYERS);
    arch.ops()
        .iter()
        .fold(0u64, |key, op| (key << 3) | op.index() as u64)
}

// --- the one poison-recovering lock helper (used by every shard below).
//
// A search job that panics while holding a cache lock leaves the protected
// state valid (writes are whole inserts/clears of already-computed values),
// so poisoning is recovered, never propagated — surviving jobs keep the
// cache instead of cascading the panic.

fn rlock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

fn wlock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

fn mlock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Hit/miss counters of a [`CachedPredictor`] (merged over all shards and
/// both query kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the cache (including single-flight waiters,
    /// which ride a leader's compute instead of touching the predictor).
    pub hits: u64,
    /// Queries that computed through the wrapped predictor. With
    /// single-flight coalescing this equals the number of values ever
    /// inserted since the last [`clear`](CachedPredictor::clear).
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of queries answered from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise sum.
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }

    /// Counter-wise saturating difference — the traffic between two
    /// snapshots of the same (monotonic between clears) cache.
    pub fn since(self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

/// One shard's counters and occupancy, read under that shard's locks (so
/// the four numbers are mutually consistent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardOccupancy {
    /// Cache hits served by this shard.
    pub hits: u64,
    /// Values computed into this shard.
    pub misses: u64,
    /// Distinct cached predictions in this shard.
    pub predictions: usize,
    /// Distinct cached gradients in this shard.
    pub gradients: usize,
}

/// A per-shard-consistent view of a [`CachedPredictor`]: within every
/// shard, `misses == predictions + gradients` holds **exactly** (each miss
/// inserts exactly one value, both counted under the same write lock), so
/// the totals satisfy it too — the invariant the clear-consistency
/// regression test hammers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Merged hit/miss counters.
    pub stats: CacheStats,
    /// Total distinct cached predictions.
    pub predictions: usize,
    /// Total distinct cached gradients.
    pub gradients: usize,
    /// Per-shard breakdown, in shard order.
    pub shards: Vec<ShardOccupancy>,
}

/// What a miss-leader's in-flight computation looks like to waiters.
#[derive(Debug)]
enum FlightState<V> {
    Pending,
    Done(V),
    Aborted,
}

/// One in-flight single-flight computation: the leader completes (or
/// aborts, if it panics) the flight; waiters block on the condvar.
#[derive(Debug)]
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    ready: Condvar,
}

impl<V: Clone> Flight<V> {
    fn new() -> Self {
        Self {
            state: Mutex::new(FlightState::Pending),
            ready: Condvar::new(),
        }
    }

    /// Blocks until the leader lands: `Some(value)` on completion, `None`
    /// when the leader aborted (panicked) and the waiter must retry.
    fn wait(&self) -> Option<V> {
        let mut state = mlock(&self.state);
        loop {
            match &*state {
                FlightState::Pending => {
                    state = self
                        .ready
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                FlightState::Done(v) => return Some(v.clone()),
                FlightState::Aborted => return None,
            }
        }
    }

    fn complete(&self, value: V) {
        *mlock(&self.state) = FlightState::Done(value);
        self.ready.notify_all();
    }

    /// Marks the flight failed so waiters retry — a no-op once completed.
    fn abort(&self) {
        let mut state = mlock(&self.state);
        if matches!(*state, FlightState::Pending) {
            *state = FlightState::Aborted;
            self.ready.notify_all();
        }
    }
}

/// Unwinds a registered flight if its leader panics before landing:
/// deregisters the (still-pending) flight and wakes waiters to retry, so a
/// panicking compute can never strand other threads on the condvar.
struct FlightGuard<'a, V: Clone> {
    flights: &'a Mutex<HashMap<u64, Arc<Flight<V>>>>,
    key: u64,
    flight: &'a Arc<Flight<V>>,
    armed: bool,
}

impl<V: Clone> Drop for FlightGuard<'_, V> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut flights = mlock(self.flights);
        if flights
            .get(&self.key)
            .is_some_and(|f| Arc::ptr_eq(f, self.flight))
        {
            flights.remove(&self.key);
        }
        drop(flights);
        self.flight.abort();
    }
}

/// Memoizes `compute(key)` in `map` with single-flight miss coalescing.
///
/// Lock protocol (shared with the batched path and `clear`): the flights
/// mutex is always taken *before* the map lock, never while holding it;
/// the miss counter increments under the map's write lock together with
/// the insert, so any observer holding the read lock sees counter and
/// occupancy move together.
fn single_flight<V: Clone>(
    map: &RwLock<HashMap<u64, V>>,
    flights: &Mutex<HashMap<u64, Arc<Flight<V>>>>,
    hits: &AtomicU64,
    misses: &AtomicU64,
    key: u64,
    compute: impl Fn() -> V,
) -> V {
    loop {
        if let Some(v) = rlock(map).get(&key) {
            hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        let leader = {
            let mut in_flight = mlock(flights);
            // Double-checked under the flights mutex: a leader that landed
            // between our read miss and here is a plain hit.
            if let Some(v) = rlock(map).get(&key) {
                hits.fetch_add(1, Ordering::Relaxed);
                return v.clone();
            }
            match in_flight.get(&key) {
                Some(flight) => Err(Arc::clone(flight)),
                None => {
                    let flight = Arc::new(Flight::new());
                    in_flight.insert(key, Arc::clone(&flight));
                    Ok(flight)
                }
            }
        };
        match leader {
            Err(flight) => {
                if let Some(v) = flight.wait() {
                    hits.fetch_add(1, Ordering::Relaxed);
                    return v;
                }
                // The leader aborted; loop and possibly become the leader.
            }
            Ok(flight) => {
                let mut guard = FlightGuard {
                    flights,
                    key,
                    flight: &flight,
                    armed: true,
                };
                let v = compute();
                {
                    let mut in_flight = mlock(flights);
                    let mut m = wlock(map);
                    m.insert(key, v.clone());
                    misses.fetch_add(1, Ordering::Relaxed);
                    drop(m);
                    in_flight.remove(&key);
                }
                guard.armed = false;
                flight.complete(v.clone());
                return v;
            }
        }
    }
}

/// One cache shard: its slice of both maps, its in-flight registries, and
/// its own counters. Aligned so neighbouring shards never share a cache
/// line — the whole point of sharding is that 8 threads hitting 8 shards
/// touch 8 different lines.
#[repr(align(128))]
#[derive(Debug)]
struct Shard {
    predictions: RwLock<HashMap<u64, f64>>,
    gradients: RwLock<HashMap<u64, Vec<f32>>>,
    prediction_flights: Mutex<HashMap<u64, Arc<Flight<f64>>>>,
    gradient_flights: Mutex<HashMap<u64, Arc<Flight<Vec<f32>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Self {
            predictions: RwLock::new(HashMap::new()),
            gradients: RwLock::new(HashMap::new()),
            prediction_flights: Mutex::new(HashMap::new()),
            gradient_flights: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

/// Default shard count of [`CachedPredictor::new`]; `with_shards(1)` is the
/// single-lock layout earlier releases shipped (and the baseline the
/// `scale_bench` exhibit measures contention against).
pub const DEFAULT_CACHE_SHARDS: usize = 16;

/// A thread-safe sharded memoizing wrapper around any [`Predictor`].
///
/// Both `predict` and `gradient` results are cached by the packed
/// architecture key. The key is mixed (splitmix64 finalizer) and masked to
/// pick one of a power-of-two number of shards, each with its own
/// `RwLock`-protected maps and hit/miss counters — concurrent readers on
/// different keys contend on nothing. Concurrent misses on the *same* key
/// are single-flight: one thread computes, the rest wait for its answer,
/// so a burst of cold traffic costs one forward pass per distinct key.
///
/// Memoization never changes a value — the wrapped predictor is
/// deterministic, and waiters receive exactly the leader's result — so a
/// sharded, an unsharded, and an uncached run are byte-identical (the
/// cache property tests pin this for arbitrary query sequences).
///
/// Lock poisoning is recovered, not propagated: a search job that panics
/// while holding a cache lock leaves the maps in a valid state (every write
/// is a whole insert of an already-computed value), so surviving jobs in
/// the same sweep keep the cache instead of cascading the panic. A leader
/// that panics *mid-compute* aborts its flight and wakes waiters to retry.
#[derive(Debug)]
pub struct CachedPredictor<'a, P: Predictor> {
    inner: &'a P,
    shards: Box<[Shard]>,
    mask: u64,
}

impl<'a, P: Predictor> CachedPredictor<'a, P> {
    /// Wraps `inner` with [`DEFAULT_CACHE_SHARDS`] empty shards.
    pub fn new(inner: &'a P) -> Self {
        Self::with_shards(inner, DEFAULT_CACHE_SHARDS)
    }

    /// Wraps `inner` with `shards` shards, rounded up to the next power of
    /// two (minimum 1 — which reproduces the old single-lock layout).
    pub fn with_shards(inner: &'a P, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards: Box<[Shard]> = (0..n).map(|_| Shard::new()).collect();
        Self {
            inner,
            shards,
            mask: (n - 1) as u64,
        }
    }

    /// The wrapped predictor.
    pub fn inner(&self) -> &'a P {
        self.inner
    }

    /// How many shards the maps are split across (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key lands in. The packed key concentrates its entropy
    /// in whichever layers differ, so it is mixed (splitmix64 finalizer)
    /// before masking — neighbouring architectures spread across shards.
    fn shard_of(&self, key: u64) -> &Shard {
        let mut x = key;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        &self.shards[(x & self.mask) as usize]
    }

    /// Current hit/miss counters, merged across shards (aggregated over
    /// both query kinds).
    pub fn stats(&self) -> CacheStats {
        self.snapshot().stats
    }

    /// A per-shard-consistent snapshot: each shard's counters and map
    /// sizes are read under that shard's read locks, so within every shard
    /// `misses == predictions + gradients` exactly (see [`CacheSnapshot`]).
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut shards = Vec::with_capacity(self.shards.len());
        let mut stats = CacheStats::default();
        let (mut predictions, mut gradients) = (0usize, 0usize);
        for shard in self.shards.iter() {
            // Lock order matches `clear`: predictions before gradients.
            let p = rlock(&shard.predictions);
            let g = rlock(&shard.gradients);
            let occ = ShardOccupancy {
                hits: shard.hits.load(Ordering::Relaxed),
                misses: shard.misses.load(Ordering::Relaxed),
                predictions: p.len(),
                gradients: g.len(),
            };
            drop(g);
            drop(p);
            stats.hits += occ.hits;
            stats.misses += occ.misses;
            predictions += occ.predictions;
            gradients += occ.gradients;
            shards.push(occ);
        }
        CacheSnapshot {
            stats,
            predictions,
            gradients,
            shards,
        }
    }

    /// Number of distinct architectures with a cached prediction.
    pub fn cached_predictions(&self) -> usize {
        self.shards
            .iter()
            .map(|s| rlock(&s.predictions).len())
            .sum()
    }

    /// Number of distinct architectures with a cached gradient.
    pub fn cached_gradients(&self) -> usize {
        self.shards.iter().map(|s| rlock(&s.gradients).len()).sum()
    }

    /// Drops all cached values and resets the counters.
    ///
    /// Consistency protocol: each shard is cleared *atomically* — both
    /// maps emptied and both counters reset while holding that shard's
    /// write locks — so no observer (which reads counters under the same
    /// locks, see [`snapshot`](Self::snapshot)) can ever see a shard's
    /// maps and counters disagree. Earlier releases cleared the two maps
    /// and the counters in three separate critical sections; a concurrent
    /// writer landing between them left occupancy permanently ahead of the
    /// miss counter.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut p = wlock(&shard.predictions);
            let mut g = wlock(&shard.gradients);
            p.clear();
            g.clear();
            shard.hits.store(0, Ordering::Relaxed);
            shard.misses.store(0, Ordering::Relaxed);
        }
    }

    fn predict_keyed(&self, key: u64, compute: impl Fn() -> f64) -> f64 {
        let shard = self.shard_of(key);
        single_flight(
            &shard.predictions,
            &shard.prediction_flights,
            &shard.hits,
            &shard.misses,
            key,
            compute,
        )
    }
}

/// Unwinds the batched path's registered flights if the inner batched
/// compute panics: every still-pending flight is deregistered and aborted
/// so concurrent waiters retry instead of hanging.
struct BatchFlightsGuard<'a> {
    entries: &'a [(u64, usize, Arc<Flight<f64>>, &'a Shard)],
    armed: bool,
}

impl Drop for BatchFlightsGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        for (key, _, flight, shard) in self.entries {
            let mut flights = mlock(&shard.prediction_flights);
            if flights.get(key).is_some_and(|f| Arc::ptr_eq(f, flight)) {
                flights.remove(key);
            }
            drop(flights);
            flight.abort();
        }
    }
}

impl<P: crate::BatchPredictor> crate::BatchPredictor for CachedPredictor<'_, P> {
    /// Batched lookup: cached rows are answered from their shards, the
    /// remaining *distinct* keys this thread leads go to the wrapped
    /// predictor in **one** `predict_encodings` call, keys already in
    /// flight on other threads are waited for, and every result lands in
    /// the cache.
    ///
    /// Counter semantics match the sequential per-row loop exactly: the
    /// first occurrence of an uncached key counts as a miss, repeats of the
    /// same key inside the batch count as hits (the sequential loop would
    /// have filled the cache by then). A key computed by *another* thread's
    /// flight counts as a hit here — only actual computes count as misses,
    /// which is what makes `misses == occupancy` exact. Values are
    /// bit-identical to per-row queries because the inner batched path
    /// guarantees the same.
    fn predict_encodings(&self, encodings: &[Vec<f32>]) -> Vec<f64> {
        let mut out = vec![0.0f64; encodings.len()];
        // Rows not answered from the cache, and the first occurrence of each
        // distinct uncached key.
        let mut unresolved: Vec<(usize, u64)> = Vec::new();
        let mut pending: Vec<(u64, usize)> = Vec::new();
        let mut seen = HashSet::new();
        for (i, enc) in encodings.iter().enumerate() {
            let key = encoding_key(enc);
            let shard = self.shard_of(key);
            let cached = {
                let map = rlock(&shard.predictions);
                map.get(&key).copied().inspect(|_| {
                    shard.hits.fetch_add(1, Ordering::Relaxed);
                })
            };
            if let Some(v) = cached {
                out[i] = v;
                continue;
            }
            unresolved.push((i, key));
            if seen.insert(key) {
                pending.push((key, i));
            } else {
                shard.hits.fetch_add(1, Ordering::Relaxed);
            }
        }

        let mut resolved: HashMap<u64, f64> = HashMap::new();
        // Keys this thread leads vs. keys already in flight elsewhere.
        let mut ours: Vec<(u64, usize, Arc<Flight<f64>>, &Shard)> = Vec::new();
        let mut foreign: Vec<(u64, usize, Arc<Flight<f64>>)> = Vec::new();
        for &(key, row) in &pending {
            let shard = self.shard_of(key);
            let mut flights = mlock(&shard.prediction_flights);
            if let Some(&v) = rlock(&shard.predictions).get(&key) {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                resolved.insert(key, v);
                continue;
            }
            match flights.get(&key) {
                Some(flight) => foreign.push((key, row, Arc::clone(flight))),
                None => {
                    let flight = Arc::new(Flight::new());
                    flights.insert(key, Arc::clone(&flight));
                    ours.push((key, row, flight, shard));
                }
            }
        }

        if !ours.is_empty() {
            let mut guard = BatchFlightsGuard {
                entries: &ours,
                armed: true,
            };
            let miss_rows: Vec<Vec<f32>> = ours
                .iter()
                .map(|&(_, row, _, _)| encodings[row].clone())
                .collect();
            let computed = self.inner.predict_encodings(&miss_rows);
            for ((key, _, flight, shard), &v) in ours.iter().zip(&computed) {
                {
                    let mut flights = mlock(&shard.prediction_flights);
                    let mut map = wlock(&shard.predictions);
                    map.insert(*key, v);
                    shard.misses.fetch_add(1, Ordering::Relaxed);
                    drop(map);
                    flights.remove(key);
                }
                flight.complete(v);
                resolved.insert(*key, v);
            }
            guard.armed = false;
        }

        for (key, row, flight) in foreign {
            match flight.wait() {
                Some(v) => {
                    self.shard_of(key).hits.fetch_add(1, Ordering::Relaxed);
                    resolved.insert(key, v);
                }
                // The foreign leader aborted: compute this key ourselves
                // through the scalar single-flight path (counts its own
                // miss at insert time).
                None => {
                    let v = Predictor::predict_encoding(self, &encodings[row]);
                    resolved.insert(key, v);
                }
            }
        }

        for &(i, key) in &unresolved {
            out[i] = resolved[&key];
        }
        out
    }
}

impl<P: Predictor> Predictor for CachedPredictor<'_, P> {
    fn predict_encoding(&self, encoding: &[f32]) -> f64 {
        let key = encoding_key(encoding);
        self.predict_keyed(key, || self.inner.predict_encoding(encoding))
    }

    fn predict(&self, arch: &Architecture) -> f64 {
        // Keyed straight off the operator list — no 154-float encoding is
        // materialized on a hit.
        self.predict_keyed(architecture_key(arch), || self.inner.predict(arch))
    }

    fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
        let key = encoding_key(encoding);
        let shard = self.shard_of(key);
        single_flight(
            &shard.gradients,
            &shard.gradient_flights,
            &shard.hits,
            &shard.misses,
            key,
            || self.inner.gradient(encoding),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Metric, MetricDataset, TrainConfig};
    use lightnas_hw::Xavier;
    use lightnas_space::SearchSpace;

    fn small_predictor() -> MlpPredictor {
        let space = SearchSpace::standard();
        let device = Xavier::maxn();
        let data = MetricDataset::sample(&device, &space, Metric::LatencyMs, 400, 11);
        MlpPredictor::train(
            &data,
            &TrainConfig {
                epochs: 10,
                batch_size: 128,
                lr: 2e-3,
                seed: 0,
            },
        )
    }

    #[test]
    fn keys_agree_between_architecture_and_encoding() {
        let space = SearchSpace::standard();
        for seed in 0..32 {
            let arch = Architecture::random(&space, seed);
            assert_eq!(architecture_key(&arch), encoding_key(&arch.encode()));
        }
    }

    #[test]
    fn keys_are_distinct_across_architectures() {
        let space = SearchSpace::standard();
        let mut seen = std::collections::HashSet::new();
        for seed in 0..200 {
            seen.insert(architecture_key(&Architecture::random(&space, seed)));
        }
        assert!(seen.len() >= 199, "only {} distinct keys", seen.len());
    }

    #[test]
    fn shard_counts_round_up_to_powers_of_two() {
        let p = small_predictor();
        assert_eq!(CachedPredictor::new(&p).shard_count(), DEFAULT_CACHE_SHARDS);
        for (requested, expect) in [(0, 1), (1, 1), (2, 2), (3, 4), (5, 8), (16, 16), (17, 32)] {
            assert_eq!(
                CachedPredictor::with_shards(&p, requested).shard_count(),
                expect,
                "requested {requested}"
            );
        }
    }

    #[test]
    fn keys_spread_across_shards() {
        let p = small_predictor();
        let cached = CachedPredictor::with_shards(&p, 8);
        let space = SearchSpace::standard();
        for seed in 0..256 {
            let _ = Predictor::predict(&cached, &Architecture::random(&space, seed));
        }
        let snap = cached.snapshot();
        let populated = snap.shards.iter().filter(|s| s.predictions > 0).count();
        assert!(
            populated >= 6,
            "256 random keys landed in only {populated}/8 shards: {snap:?}"
        );
    }

    #[test]
    fn cached_values_match_the_wrapped_predictor() {
        let p = small_predictor();
        let cached = CachedPredictor::new(&p);
        let space = SearchSpace::standard();
        for seed in 0..10 {
            let arch = Architecture::random(&space, seed);
            let enc = arch.encode();
            assert_eq!(Predictor::predict(&cached, &arch), p.predict(&arch));
            assert_eq!(Predictor::gradient(&cached, &enc), p.gradient(&enc));
            // Second round must come from the cache and stay identical.
            assert_eq!(Predictor::predict(&cached, &arch), p.predict(&arch));
            assert_eq!(Predictor::gradient(&cached, &enc), p.gradient(&enc));
        }
        let stats = cached.stats();
        assert_eq!(stats.misses, 20, "one predict + one gradient miss per arch");
        assert_eq!(stats.hits, 20);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cached.cached_predictions(), 10);
        assert_eq!(cached.cached_gradients(), 10);
    }

    #[test]
    fn batched_queries_coalesce_misses_and_serve_hits() {
        use crate::BatchPredictor;
        let p = small_predictor();
        let cached = CachedPredictor::new(&p);
        let space = SearchSpace::standard();
        // 16 rows over 6 distinct architectures, with repeats inside the
        // batch: rows 6.. cycle through the first six again.
        let uniques: Vec<Vec<f32>> = (0..6)
            .map(|s| Architecture::random(&space, s).encode())
            .collect();
        let batch: Vec<Vec<f32>> = (0..16).map(|i| uniques[i % 6].clone()).collect();
        let got = cached.predict_encodings(&batch);
        let want: Vec<f64> = batch.iter().map(|e| p.predict_encoding(e)).collect();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits(), "batched value diverged");
        }
        let stats = cached.stats();
        assert_eq!(stats.misses, 6, "one miss per distinct architecture");
        assert_eq!(stats.hits, 10, "in-batch repeats count as hits");
        assert_eq!(cached.cached_predictions(), 6);
        // A second identical batch is answered entirely from the cache.
        let again = cached.predict_encodings(&batch);
        assert_eq!(again, got);
        let stats = cached.stats();
        assert_eq!(stats.misses, 6);
        assert_eq!(stats.hits, 26);
    }

    #[test]
    fn clear_resets_everything() {
        let p = small_predictor();
        let cached = CachedPredictor::new(&p);
        let arch = Architecture::random(&SearchSpace::standard(), 1);
        let _ = Predictor::predict(&cached, &arch);
        cached.clear();
        assert_eq!(cached.stats(), CacheStats::default());
        assert_eq!(cached.cached_predictions(), 0);
    }

    #[test]
    fn concurrent_queries_are_consistent() {
        let p = small_predictor();
        let cached = CachedPredictor::new(&p);
        let space = SearchSpace::standard();
        let archs: Vec<Architecture> = (0..8).map(|s| Architecture::random(&space, s)).collect();
        let expected: Vec<f64> = archs.iter().map(|a| p.predict(a)).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for (arch, &want) in archs.iter().zip(&expected) {
                        assert_eq!(Predictor::predict(&cached, arch), want);
                    }
                });
            }
        });
        let stats = cached.stats();
        assert_eq!(stats.hits + stats.misses, 32);
        assert_eq!(cached.cached_predictions(), 8);
    }

    /// A predictor that counts every genuine compute — the ground truth
    /// the single-flight contract is judged against.
    struct Counting<'a> {
        inner: &'a MlpPredictor,
        computes: AtomicU64,
    }

    impl Predictor for Counting<'_> {
        fn predict_encoding(&self, encoding: &[f32]) -> f64 {
            self.computes.fetch_add(1, Ordering::Relaxed);
            self.inner.predict_encoding(encoding)
        }
        fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
            self.computes.fetch_add(1, Ordering::Relaxed);
            self.inner.gradient(encoding)
        }
        fn predict(&self, arch: &Architecture) -> f64 {
            self.computes.fetch_add(1, Ordering::Relaxed);
            self.inner.predict(arch)
        }
    }

    #[test]
    fn single_flight_computes_each_distinct_key_once_under_contention() {
        let p = small_predictor();
        let counting = Counting {
            inner: &p,
            computes: AtomicU64::new(0),
        };
        let cached = CachedPredictor::with_shards(&counting, 8);
        let space = SearchSpace::standard();
        let archs: Vec<Architecture> = (0..24).map(|s| Architecture::random(&space, s)).collect();
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let (archs, cached, barrier) = (&archs, &cached, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    // Every thread walks all keys, each from a different
                    // starting point, so misses collide across threads.
                    for k in 0..archs.len() {
                        let arch = &archs[(k + t * 3) % archs.len()];
                        let _ = Predictor::predict(cached, arch);
                    }
                });
            }
        });
        assert_eq!(
            counting.computes.load(Ordering::Relaxed),
            24,
            "single-flight must compute each distinct key exactly once"
        );
        let snap = cached.snapshot();
        assert_eq!(snap.stats.misses, 24);
        assert_eq!(snap.predictions, 24);
        assert_eq!(snap.stats.hits + snap.stats.misses, 8 * 24);
    }

    /// A predictor whose first compute panics — the flight must be aborted
    /// so waiters retry instead of hanging, and the value must still land.
    struct PanicsOnce<'a> {
        inner: &'a MlpPredictor,
        panicked: AtomicU64,
    }

    impl Predictor for PanicsOnce<'_> {
        fn predict_encoding(&self, encoding: &[f32]) -> f64 {
            if self.panicked.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("injected compute panic");
            }
            self.inner.predict_encoding(encoding)
        }
        fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
            self.inner.gradient(encoding)
        }
    }

    #[test]
    fn a_panicking_leader_aborts_its_flight_instead_of_stranding_waiters() {
        let p = small_predictor();
        let once = PanicsOnce {
            inner: &p,
            panicked: AtomicU64::new(0),
        };
        let cached = CachedPredictor::with_shards(&once, 4);
        let arch = Architecture::random(&SearchSpace::standard(), 3);
        let enc = arch.encode();
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Predictor::predict_encoding(&cached, &enc)
        }));
        assert!(first.is_err(), "the injected panic must propagate");
        // The aborted flight must be gone: the retry leads a fresh flight
        // and lands the real value.
        let want = p.predict_encoding(&enc);
        assert_eq!(Predictor::predict_encoding(&cached, &enc), want);
        assert_eq!(cached.cached_predictions(), 1);
    }

    #[test]
    fn clear_keeps_counters_and_occupancy_consistent_under_concurrency() {
        let p = small_predictor();
        let cached = CachedPredictor::with_shards(&p, 4);
        let space = SearchSpace::standard();
        let archs: Vec<Architecture> = (0..32).map(|s| Architecture::random(&space, s)).collect();
        let stop = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..3usize {
                let (archs, cached, stop) = (&archs, &cached, &stop);
                scope.spawn(move || {
                    let mut k = t;
                    while stop.load(Ordering::Relaxed) == 0 {
                        let arch = &archs[k % archs.len()];
                        let _ = Predictor::predict(cached, arch);
                        if k % 3 == 0 {
                            let _ = Predictor::gradient(cached, &arch.encode());
                        }
                        k += 7;
                    }
                });
            }
            // The observer: under the consistent clear protocol, every
            // snapshot satisfies misses == predictions + gradients exactly,
            // no matter how clears interleave with concurrent fills. The
            // old three-critical-section clear breaks this within a few
            // iterations (a fill lands between map-clear and counter-reset).
            for round in 0..200 {
                cached.clear();
                let snap = cached.snapshot();
                for (i, shard) in snap.shards.iter().enumerate() {
                    assert_eq!(
                        shard.misses as usize,
                        shard.predictions + shard.gradients,
                        "round {round}, shard {i}: counters drifted from occupancy: {shard:?}"
                    );
                }
                assert_eq!(
                    snap.stats.misses as usize,
                    snap.predictions + snap.gradients,
                    "round {round}: {snap:?}"
                );
            }
            stop.store(1, Ordering::Relaxed);
        });
    }
}
