//! Deep-ensemble metric prediction with uncertainty.
//!
//! The paper's single MLP gives a point estimate. Deployments that make a
//! hard go/no-go decision on a predicted metric usually want an error bar;
//! the standard recipe is a small deep ensemble — several predictors
//! trained from different initializations/shuffles — whose spread estimates
//! the epistemic uncertainty. [`EnsemblePredictor`] provides that while
//! remaining a drop-in for every place a point predictor is used (same
//! `predict` / `gradient` / `rmse` surface).

use lightnas_space::Architecture;

use crate::{MetricDataset, MlpPredictor, TrainConfig};

/// An ensemble of independently trained [`MlpPredictor`]s.
#[derive(Debug)]
pub struct EnsemblePredictor {
    members: Vec<MlpPredictor>,
}

impl EnsemblePredictor {
    /// Trains `members` predictors on `train`, varying only the seed (which
    /// controls both initialization and mini-batch shuffling).
    ///
    /// # Panics
    ///
    /// Panics if `members` is zero or `train` is empty.
    pub fn train(train: &MetricDataset, config: &TrainConfig, members: usize) -> Self {
        assert!(members > 0, "ensemble needs at least one member");
        let members = (0..members)
            .map(|i| {
                let cfg = TrainConfig {
                    seed: config.seed ^ (0x5eed_0000 + i as u64),
                    ..*config
                };
                MlpPredictor::train(train, &cfg)
            })
            .collect();
        Self { members }
    }

    /// Number of ensemble members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the ensemble has no members (never constructible).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Mean prediction across members.
    pub fn predict(&self, arch: &Architecture) -> f64 {
        self.predict_encoding(&arch.encode())
    }

    /// Mean prediction for a flattened encoding.
    pub fn predict_encoding(&self, encoding: &[f32]) -> f64 {
        self.members
            .iter()
            .map(|m| m.predict_encoding(encoding))
            .sum::<f64>()
            / self.members.len() as f64
    }

    /// Mean prediction and its epistemic standard deviation.
    pub fn predict_with_uncertainty(&self, arch: &Architecture) -> (f64, f64) {
        let encoding = arch.encode();
        let preds: Vec<f64> = self
            .members
            .iter()
            .map(|m| m.predict_encoding(&encoding))
            .collect();
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        let var = preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / preds.len() as f64;
        (mean, var.sqrt())
    }

    /// Mean input gradient across members (`∂metric/∂ᾱ`, Eq. 12).
    pub fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
        let mut acc = self.members[0].gradient(encoding);
        for m in &self.members[1..] {
            for (a, g) in acc.iter_mut().zip(m.gradient(encoding)) {
                *a += g;
            }
        }
        let n = self.members.len() as f32;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }

    /// Ensemble RMSE over a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn rmse(&self, data: &MetricDataset) -> f64 {
        assert!(!data.is_empty(), "rmse over empty dataset");
        let se: f64 = data
            .encodings()
            .iter()
            .zip(data.targets())
            .map(|(enc, &y)| {
                let e = self.predict_encoding(enc) - y;
                e * e
            })
            .sum();
        (se / data.len() as f64).sqrt()
    }

    /// The individual members (e.g. for per-member diagnostics).
    pub fn members(&self) -> &[MlpPredictor] {
        &self.members
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metric;
    use lightnas_hw::Xavier;
    use lightnas_space::{Architecture, SearchSpace};
    use std::sync::OnceLock;

    struct Fix {
        ensemble: EnsemblePredictor,
        single: MlpPredictor,
        valid: MetricDataset,
        space: SearchSpace,
    }

    fn fix() -> &'static Fix {
        static FIX: OnceLock<Fix> = OnceLock::new();
        FIX.get_or_init(|| {
            let space = SearchSpace::standard();
            let device = Xavier::maxn();
            let data = MetricDataset::sample_diverse(&device, &space, Metric::LatencyMs, 1200, 5);
            let (train, valid) = data.split(0.8);
            let cfg = TrainConfig {
                epochs: 30,
                batch_size: 128,
                lr: 2e-3,
                seed: 0,
            };
            Fix {
                ensemble: EnsemblePredictor::train(&train, &cfg, 4),
                single: MlpPredictor::train(&train, &cfg),
                valid,
                space,
            }
        })
    }

    #[test]
    fn ensemble_is_at_least_as_accurate_as_one_member() {
        let f = fix();
        assert!(
            f.ensemble.rmse(&f.valid) <= f.single.rmse(&f.valid) * 1.05,
            "averaging should not hurt: {:.4} vs {:.4}",
            f.ensemble.rmse(&f.valid),
            f.single.rmse(&f.valid)
        );
    }

    #[test]
    fn uncertainty_is_finite_nonzero_and_consistent_with_members() {
        let f = fix();
        let mut any_positive = false;
        for seed in 0..10 {
            let arch = Architecture::random(&f.space, seed);
            let (mean, sigma) = f.ensemble.predict_with_uncertainty(&arch);
            assert!(mean.is_finite() && sigma.is_finite());
            assert!(sigma >= 0.0);
            // The mean ± a few sigmas must bracket every member's estimate.
            let enc = arch.encode();
            for m in f.ensemble.members() {
                let p = m.predict_encoding(&enc);
                assert!(
                    (p - mean).abs() <= 3.0 * sigma.max(1e-9) + 1e-6,
                    "member {p:.3} outside mean {mean:.3} ± 3σ ({sigma:.4})"
                );
            }
            if sigma > 1e-4 {
                any_positive = true;
            }
        }
        assert!(
            any_positive,
            "independently trained members never disagree — suspicious"
        );
    }

    #[test]
    fn gradient_matches_member_average() {
        let f = fix();
        let enc = Architecture::random(&f.space, 9).encode();
        let g = f.ensemble.gradient(&enc);
        let manual: Vec<f32> = {
            let mut acc = vec![0.0f32; enc.len()];
            for m in f.ensemble.members() {
                for (a, v) in acc.iter_mut().zip(m.gradient(&enc)) {
                    *a += v;
                }
            }
            acc.into_iter()
                .map(|v| v / f.ensemble.len() as f32)
                .collect()
        };
        for (a, b) in g.iter().zip(&manual) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_members_rejected() {
        let f = fix();
        let _ = EnsemblePredictor::train(
            &f.valid,
            &TrainConfig {
                epochs: 1,
                batch_size: 32,
                lr: 1e-3,
                seed: 0,
            },
            0,
        );
    }
}
