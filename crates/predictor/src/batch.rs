//! Batched prediction: the coalescing interface the serving layer rides on.
//!
//! A serving layer that pulls several queued requests at once wants to
//! answer them in **one** forward pass — [`MlpPredictor::predict_batch`]
//! turns a batch into a single GEMM and is bit-identical to the per-row
//! path, so coalescing changes throughput, never values. [`BatchPredictor`]
//! abstracts exactly that capability over the [`Predictor`] vocabulary: the
//! default method is the per-row loop (correct for any predictor), and
//! models with a genuine batched path override it.

use crate::{EnsemblePredictor, LutPredictor, MlpPredictor, Predictor};

/// A [`Predictor`] that can answer many encodings in one call.
///
/// The contract is strict: `predict_encodings(encs)[i]` must be
/// **bit-identical** to `predict_encoding(&encs[i])` — batching is a
/// throughput optimization, never a semantic one. The default
/// implementation trivially satisfies this by looping.
pub trait BatchPredictor: Predictor {
    /// Predicted metric for every encoding, in order.
    fn predict_encodings(&self, encodings: &[Vec<f32>]) -> Vec<f64> {
        encodings.iter().map(|e| self.predict_encoding(e)).collect()
    }
}

impl BatchPredictor for MlpPredictor {
    /// One batched GEMM over all rows; see [`MlpPredictor::predict_batch`]
    /// for the bit-identity argument.
    fn predict_encodings(&self, encodings: &[Vec<f32>]) -> Vec<f64> {
        self.predict_batch(encodings)
    }
}

/// The LUT sum is already a handful of flops per row; the default loop *is*
/// the batched path.
impl BatchPredictor for LutPredictor {}

/// Member MLPs batch internally per [`EnsemblePredictor::predict_encoding`];
/// the loop keeps member-averaging order identical to the scalar path.
impl BatchPredictor for EnsemblePredictor {}

impl<P: BatchPredictor + ?Sized> BatchPredictor for &P {
    fn predict_encodings(&self, encodings: &[Vec<f32>]) -> Vec<f64> {
        (**self).predict_encodings(encodings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Metric, MetricDataset, TrainConfig};
    use lightnas_hw::Xavier;
    use lightnas_space::SearchSpace;

    #[test]
    fn batched_trait_path_matches_per_row_for_mlp_and_lut() {
        let space = SearchSpace::standard();
        let device = Xavier::maxn();
        let data = MetricDataset::sample(&device, &space, Metric::LatencyMs, 300, 7);
        let mlp = MlpPredictor::train(
            &data,
            &TrainConfig {
                epochs: 5,
                batch_size: 128,
                lr: 2e-3,
                seed: 0,
            },
        );
        let lut = LutPredictor::build(&device, &space);
        let encs: Vec<Vec<f32>> = data.encodings()[..16].to_vec();
        for p in [&mlp as &dyn BatchPredictorDyn, &lut] {
            let batched = p.predict_encodings_dyn(&encs);
            for (enc, got) in encs.iter().zip(&batched) {
                assert_eq!(got.to_bits(), p.predict_encoding_dyn(enc).to_bits());
            }
        }
    }

    /// Object-safe shim so the test can iterate heterogeneous predictors.
    trait BatchPredictorDyn {
        fn predict_encodings_dyn(&self, encs: &[Vec<f32>]) -> Vec<f64>;
        fn predict_encoding_dyn(&self, enc: &[f32]) -> f64;
    }
    impl<P: BatchPredictor> BatchPredictorDyn for P {
        fn predict_encodings_dyn(&self, encs: &[Vec<f32>]) -> Vec<f64> {
            self.predict_encodings(encs)
        }
        fn predict_encoding_dyn(&self, enc: &[f32]) -> f64 {
            self.predict_encoding(enc)
        }
    }
}
