//! The latency look-up-table baseline (paper Sec. 3.2, Fig. 5 right).
//!
//! Recent NAS works (FBNet, ProxylessNAS, OFA) estimate network latency by
//! summing per-operator latencies measured in isolation. The paper shows two
//! failure modes the LUT cannot escape:
//!
//! 1. a **consistent gap** (≈ 11.48 ms on their Xavier) because isolated
//!    measurements miss the network-level runtime overhead, and
//! 2. a **residual RMSE** (0.41 ms) even after bias correction, because
//!    per-op additivity cannot express cross-layer effects (cache reuse,
//!    occupancy interactions).
//!
//! [`LutPredictor`] reproduces exactly that construction against the
//! simulated device.

use lightnas_hw::Xavier;
use lightnas_space::{
    Architecture, Operator, SearchSpace, NUM_OPS, SEARCHABLE_LAYERS, TOTAL_LAYERS,
};

use crate::MetricDataset;

/// Per-(layer, operator) latency table built from isolated measurements.
#[derive(Debug, Clone)]
pub struct LutPredictor {
    /// `table[layer][op]` in ms, for the searchable slots.
    table: Vec<[f64; NUM_OPS]>,
    /// Isolated latency of the fixed stem + head.
    fixed_ms: f64,
    /// Additive correction (0 for the raw LUT; set by `bias_corrected`).
    bias_ms: f64,
}

impl LutPredictor {
    /// Builds the LUT by "measuring" every operator of every slot in
    /// isolation on the device, exactly as FBNet-style works do.
    pub fn build(device: &Xavier, space: &SearchSpace) -> Self {
        let table = (0..SEARCHABLE_LAYERS)
            .map(|l| {
                let mut row = [0.0; NUM_OPS];
                for (k, slot) in row.iter_mut().enumerate() {
                    *slot = device.isolated_op_latency_ms(l, Operator::from_index(k), space);
                }
                row
            })
            .collect();
        Self {
            table,
            fixed_ms: device.isolated_fixed_latency_ms(space),
            bias_ms: 0.0,
        }
    }

    /// Predicted latency: the sum of the architecture's per-op entries plus
    /// the fixed parts (plus any bias correction).
    pub fn predict(&self, arch: &Architecture) -> f64 {
        let ops_sum: f64 = arch
            .ops()
            .iter()
            .enumerate()
            .map(|(l, op)| self.table[l][op.index()])
            .sum();
        ops_sum + self.fixed_ms + self.bias_ms
    }

    /// The raw table entry for `(layer, op)` in ms.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn entry(&self, layer: usize, op: Operator) -> f64 {
        self.table[layer][op.index()]
    }

    /// Current additive correction in ms.
    pub fn bias_ms(&self) -> f64 {
        self.bias_ms
    }

    /// Returns a copy whose constant bias is fitted on `data` (the "even
    /// though the above prediction gap is eliminated" variant of Fig. 5).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn bias_corrected(&self, data: &MetricDataset) -> Self {
        assert!(!data.is_empty(), "cannot fit bias on empty dataset");
        let mean_err: f64 = data
            .archs()
            .iter()
            .zip(data.targets())
            .map(|(arch, &y)| y - self.predict(arch))
            .sum::<f64>()
            / data.len() as f64;
        Self {
            table: self.table.clone(),
            fixed_ms: self.fixed_ms,
            bias_ms: self.bias_ms + mean_err,
        }
    }

    /// Mean signed error (`measured − predicted`) over a dataset: the
    /// "consistent gap" of Fig. 5 (right).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn mean_gap(&self, data: &MetricDataset) -> f64 {
        assert!(!data.is_empty(), "gap over empty dataset");
        data.archs()
            .iter()
            .zip(data.targets())
            .map(|(arch, &y)| y - self.predict(arch))
            .sum::<f64>()
            / data.len() as f64
    }

    /// Root-mean-square error over a dataset, in ms.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn rmse(&self, data: &MetricDataset) -> f64 {
        assert!(!data.is_empty(), "rmse over empty dataset");
        let se: f64 = data
            .archs()
            .iter()
            .zip(data.targets())
            .map(|(arch, &y)| {
                let e = y - self.predict(arch);
                e * e
            })
            .sum();
        (se / data.len() as f64).sqrt()
    }

    /// Predictions for every row (for the Fig. 5 scatter).
    pub fn predict_all(&self, data: &MetricDataset) -> Vec<f64> {
        data.archs().iter().map(|a| self.predict(a)).collect()
    }
}

/// The LUT as a [`Predictor`](crate::Predictor): the table sum is *linear*
/// in the `ᾱ` encoding, so it has an exact, input-independent gradient —
/// which is what makes it a drop-in degradation target for the MLP (see
/// [`FallbackPredictor`](crate::FallbackPredictor)). On a one-hot encoding
/// `predict_encoding` equals [`LutPredictor::predict`] of the decoded
/// architecture.
impl crate::Predictor for LutPredictor {
    fn predict_encoding(&self, encoding: &[f32]) -> f64 {
        assert_eq!(
            encoding.len(),
            TOTAL_LAYERS * NUM_OPS,
            "encoding must have {} values",
            TOTAL_LAYERS * NUM_OPS
        );
        // Accumulate the op terms first and add the constants last — the
        // same float-summation order as the inherent `predict`, so one-hot
        // encodings agree bit-for-bit.
        let mut ops_sum = 0.0;
        for (l, row) in self.table.iter().enumerate() {
            for (k, &entry) in row.iter().enumerate() {
                // Row l+1 of the encoding: row 0 is the fixed stem block.
                ops_sum += encoding[(l + 1) * NUM_OPS + k] as f64 * entry;
            }
        }
        ops_sum + self.fixed_ms + self.bias_ms
    }

    fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
        assert_eq!(
            encoding.len(),
            TOTAL_LAYERS * NUM_OPS,
            "encoding must have {} values",
            TOTAL_LAYERS * NUM_OPS
        );
        let mut g = vec![0.0f32; TOTAL_LAYERS * NUM_OPS];
        for (l, row) in self.table.iter().enumerate() {
            for (k, &entry) in row.iter().enumerate() {
                g[(l + 1) * NUM_OPS + k] = entry as f32;
            }
        }
        g
    }

    fn predict(&self, arch: &Architecture) -> f64 {
        LutPredictor::predict(self, arch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metric;
    use lightnas_hw::Xavier;

    fn setup() -> (Xavier, SearchSpace, LutPredictor, MetricDataset) {
        let device = Xavier::maxn();
        let space = SearchSpace::standard();
        let lut = LutPredictor::build(&device, &space);
        let data = MetricDataset::sample(&device, &space, Metric::LatencyMs, 400, 7);
        (device, space, lut, data)
    }

    #[test]
    fn lut_underestimates_by_a_consistent_gap() {
        let (device, _, lut, data) = setup();
        let gap = lut.mean_gap(&data);
        let overhead = device.config().runtime_overhead_ms;
        // The gap is the runtime overhead plus the mean of the transition
        // stalls isolated measurements also miss — ≈ 11 ms, matching the
        // paper's "consistent gap (about 11.48 ms)".
        assert!(
            gap > overhead && gap < 14.0,
            "gap {gap:.2} ms should exceed the {overhead:.2} ms runtime overhead"
        );
    }

    #[test]
    fn gap_is_consistent_across_architectures() {
        // The gap's standard deviation is small relative to its mean —
        // that's what makes it "consistent" in Fig. 5.
        let (_, _, lut, data) = setup();
        let errs: Vec<f64> = data
            .archs()
            .iter()
            .zip(data.targets())
            .map(|(a, &y)| y - lut.predict(a))
            .collect();
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let std =
            (errs.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / errs.len() as f64).sqrt();
        assert!(
            std < mean / 5.0,
            "gap std {std:.3} vs mean {mean:.3}: not consistent"
        );
    }

    #[test]
    fn predictor_trait_agrees_with_inherent_predict() {
        use crate::Predictor as _;
        let (_, space, lut, _) = setup();
        for seed in 0..16 {
            let arch = Architecture::random(&space, seed);
            let enc = arch.encode();
            assert_eq!(
                lut.predict_encoding(&enc),
                LutPredictor::predict(&lut, &arch)
            );
            let g = crate::Predictor::gradient(&lut, &enc);
            assert_eq!(g.len(), enc.len());
            // Row 0 is the fixed block: no searchable entry, zero gradient.
            assert!(g[..NUM_OPS].iter().all(|&v| v == 0.0));
            assert_eq!(g[NUM_OPS], lut.entry(0, Operator::from_index(0)) as f32);
        }
    }

    #[test]
    fn bias_correction_removes_the_gap_but_not_the_rmse() {
        let (_, _, lut, data) = setup();
        let corrected = lut.bias_corrected(&data);
        assert!(corrected.mean_gap(&data).abs() < 1e-6);
        // Residual error stays bounded away from zero: additivity cannot
        // express the cross-layer cache term.
        assert!(
            corrected.rmse(&data) > 0.05,
            "rmse {} suspiciously low",
            corrected.rmse(&data)
        );
    }

    #[test]
    fn identity_skip_entries_are_zero() {
        let (_, space, lut, _) = setup();
        for (l, spec) in space.layers().iter().enumerate() {
            if spec.skip_is_identity() {
                assert_eq!(lut.entry(l, Operator::SkipConnect), 0.0, "layer {l}");
            } else {
                assert!(lut.entry(l, Operator::SkipConnect) > 0.0, "layer {l}");
            }
        }
    }

    #[test]
    fn heavier_ops_have_larger_entries() {
        let (_, _, lut, _) = setup();
        for l in 0..SEARCHABLE_LAYERS {
            let k3e3 = lut.entry(l, Operator::from_index(0));
            let k7e6 = lut.entry(l, Operator::from_index(5));
            assert!(
                k7e6 > k3e3,
                "layer {l}: K7E6 {k7e6} should exceed K3E3 {k3e3}"
            );
        }
    }
}
