//! Graceful predictor degradation: route around a failing primary model.
//!
//! Predictor-based NAS systems treat predictor failure as a first-class
//! case (BRP-NAS falls back to cheaper estimators rather than aborting a
//! search). [`FallbackPredictor`] reproduces that posture for this stack:
//! it forwards every query to a primary model (typically the trained
//! [`MlpPredictor`](crate::MlpPredictor)) and, whenever the answer is
//! non-finite, transparently re-answers from a fallback (typically the
//! [`LutPredictor`](crate::LutPredictor) baseline, which is closed-form and
//! cannot produce NaN from finite tables), counting every degraded call.
//!
//! The wrapper is value-transparent while the primary is healthy — a
//! search driven through it is byte-identical to one driven by the primary
//! directly — and keeps a sweep *alive* (with honestly worse, LUT-grade
//! estimates) when the primary is persistently broken.

use std::sync::atomic::{AtomicU64, Ordering};

use lightnas_space::Architecture;

use crate::Predictor;

/// A [`Predictor`] that answers from `primary` and degrades to `fallback`
/// whenever the primary returns a non-finite value (NaN/∞ prediction, or a
/// gradient with any non-finite component).
///
/// Degraded calls are counted ([`degraded`](Self::degraded)), so a runtime
/// can surface how much of a run actually rode on the fallback.
#[derive(Debug)]
pub struct FallbackPredictor<'a, P, F> {
    primary: &'a P,
    fallback: &'a F,
    degraded: AtomicU64,
}

impl<'a, P: Predictor, F: Predictor> FallbackPredictor<'a, P, F> {
    /// Wraps `primary` with `fallback` as the degradation target.
    pub fn new(primary: &'a P, fallback: &'a F) -> Self {
        Self {
            primary,
            fallback,
            degraded: AtomicU64::new(0),
        }
    }

    /// The primary model.
    pub fn primary(&self) -> &'a P {
        self.primary
    }

    /// The degradation target.
    pub fn fallback(&self) -> &'a F {
        self.fallback
    }

    /// How many queries the fallback had to answer so far.
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    fn note_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }
}

impl<P: Predictor, F: Predictor> Predictor for FallbackPredictor<'_, P, F> {
    fn predict_encoding(&self, encoding: &[f32]) -> f64 {
        let v = self.primary.predict_encoding(encoding);
        if v.is_finite() {
            v
        } else {
            self.note_degraded();
            self.fallback.predict_encoding(encoding)
        }
    }

    fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
        let g = self.primary.gradient(encoding);
        if g.iter().all(|v| v.is_finite()) {
            g
        } else {
            self.note_degraded();
            self.fallback.gradient(encoding)
        }
    }

    fn predict(&self, arch: &Architecture) -> f64 {
        let v = self.primary.predict(arch);
        if v.is_finite() {
            v
        } else {
            self.note_degraded();
            self.fallback.predict(arch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LutPredictor;
    use lightnas_hw::Xavier;
    use lightnas_space::SearchSpace;

    /// A primary that is broken for every query.
    struct BrokenPrimary;
    impl Predictor for BrokenPrimary {
        fn predict_encoding(&self, _encoding: &[f32]) -> f64 {
            f64::NAN
        }
        fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
            let mut g = vec![0.0; encoding.len()];
            g[0] = f32::INFINITY;
            g
        }
    }

    /// A primary that glitches on its first `n` predictions only.
    struct Glitchy {
        n: u64,
        calls: AtomicU64,
    }
    impl Predictor for Glitchy {
        fn predict_encoding(&self, _encoding: &[f32]) -> f64 {
            if self.calls.fetch_add(1, Ordering::Relaxed) < self.n {
                f64::NAN
            } else {
                21.5
            }
        }
        fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
            vec![0.25; encoding.len()]
        }
    }

    #[test]
    fn healthy_primary_passes_through_unchanged() {
        let space = SearchSpace::standard();
        let lut = LutPredictor::build(&Xavier::maxn(), &space);
        let glitchy = Glitchy {
            n: 0,
            calls: AtomicU64::new(0),
        };
        let fb = FallbackPredictor::new(&glitchy, &lut);
        let arch = Architecture::random(&space, 1);
        assert_eq!(fb.predict_encoding(&arch.encode()), 21.5);
        assert_eq!(
            fb.gradient(&arch.encode()),
            glitchy.gradient(&arch.encode())
        );
        assert_eq!(fb.degraded(), 0);
    }

    #[test]
    fn broken_primary_routes_to_the_lut_and_counts() {
        let space = SearchSpace::standard();
        let lut = LutPredictor::build(&Xavier::maxn(), &space);
        let fb = FallbackPredictor::new(&BrokenPrimary, &lut);
        let arch = Architecture::random(&space, 2);
        let enc = arch.encode();
        assert_eq!(fb.predict_encoding(&enc), lut.predict_encoding(&enc));
        assert!((Predictor::predict(&fb, &arch) - LutPredictor::predict(&lut, &arch)).abs() == 0.0);
        assert_eq!(fb.gradient(&enc), Predictor::gradient(&lut, &enc));
        assert!(
            fb.gradient(&enc).iter().all(|v| v.is_finite()),
            "degraded gradients must be finite"
        );
        assert_eq!(fb.degraded(), 4, "predict_encoding + predict + gradient×2");
    }

    #[test]
    fn transient_glitch_degrades_then_recovers() {
        let space = SearchSpace::standard();
        let lut = LutPredictor::build(&Xavier::maxn(), &space);
        let glitchy = Glitchy {
            n: 2,
            calls: AtomicU64::new(0),
        };
        let fb = FallbackPredictor::new(&glitchy, &lut);
        let arch = Architecture::random(&space, 3);
        let enc = arch.encode();
        let lut_v = lut.predict_encoding(&enc);
        assert_eq!(fb.predict_encoding(&enc), lut_v);
        assert_eq!(fb.predict_encoding(&enc), lut_v);
        assert_eq!(fb.predict_encoding(&enc), 21.5, "primary healthy again");
        assert_eq!(fb.degraded(), 2);
    }
}
