//! Graceful predictor degradation: route around a failing primary model.
//!
//! Predictor-based NAS systems treat predictor failure as a first-class
//! case (BRP-NAS falls back to cheaper estimators rather than aborting a
//! search). [`FallbackPredictor`] reproduces that posture for this stack:
//! it forwards every query to a primary model (typically the trained
//! [`MlpPredictor`](crate::MlpPredictor)) and, whenever the answer is
//! non-finite **or the primary panics mid-query**, transparently re-answers
//! from a fallback (typically the [`LutPredictor`](crate::LutPredictor)
//! baseline, which is closed-form and cannot produce NaN from finite
//! tables), counting every degraded call by its cause.
//!
//! The wrapper is value-transparent while the primary is healthy — a
//! search driven through it is byte-identical to one driven by the primary
//! directly — and keeps a sweep *alive* (with honestly worse, LUT-grade
//! estimates) when the primary is persistently broken.
//!
//! The serving layer (`lightnas-serve`) additionally routes entire request
//! batches around an open circuit breaker via
//! [`degrade_encoding`](FallbackPredictor::degrade_encoding), so its
//! telemetry counters and [`degraded`](FallbackPredictor::degraded) agree
//! by construction.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

use lightnas_space::Architecture;

use crate::Predictor;

/// Why a query was answered by the fallback instead of the primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeCause {
    /// The primary answered NaN/∞ (or a gradient with a non-finite lane).
    NonFinite,
    /// The primary panicked mid-query.
    Panic,
    /// A caller routed the query straight to the fallback (e.g. a serving
    /// layer whose circuit breaker is open) without consulting the primary.
    Routed,
}

/// A [`Predictor`] that answers from `primary` and degrades to `fallback`
/// whenever the primary returns a non-finite value (NaN/∞ prediction, or a
/// gradient with any non-finite component) **or panics**.
///
/// Degraded calls are counted per cause ([`degraded_nonfinite`],
/// [`degraded_panics`], [`degraded_routed`], and their sum [`degraded`]),
/// so a runtime can surface how much of a run actually rode on the
/// fallback — and why.
///
/// Panic recovery uses [`catch_unwind`]; the primary is only read, never
/// mutated, by `Predictor` queries (trained predictors are frozen), so a
/// caught panic cannot leave it in a broken state.
///
/// [`degraded_nonfinite`]: Self::degraded_nonfinite
/// [`degraded_panics`]: Self::degraded_panics
/// [`degraded_routed`]: Self::degraded_routed
/// [`degraded`]: Self::degraded
#[derive(Debug)]
pub struct FallbackPredictor<'a, P, F> {
    primary: &'a P,
    fallback: &'a F,
    nonfinite: AtomicU64,
    panics: AtomicU64,
    routed: AtomicU64,
}

impl<'a, P: Predictor, F: Predictor> FallbackPredictor<'a, P, F> {
    /// Wraps `primary` with `fallback` as the degradation target.
    pub fn new(primary: &'a P, fallback: &'a F) -> Self {
        Self {
            primary,
            fallback,
            nonfinite: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            routed: AtomicU64::new(0),
        }
    }

    /// The primary model.
    pub fn primary(&self) -> &'a P {
        self.primary
    }

    /// The degradation target.
    pub fn fallback(&self) -> &'a F {
        self.fallback
    }

    /// How many queries the fallback had to answer so far (all causes).
    pub fn degraded(&self) -> u64 {
        self.degraded_nonfinite() + self.degraded_panics() + self.degraded_routed()
    }

    /// Degraded calls caused by a non-finite primary answer.
    pub fn degraded_nonfinite(&self) -> u64 {
        self.nonfinite.load(Ordering::Relaxed)
    }

    /// Degraded calls caused by a primary panic.
    pub fn degraded_panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Degraded calls a caller routed directly to the fallback.
    pub fn degraded_routed(&self) -> u64 {
        self.routed.load(Ordering::Relaxed)
    }

    fn note_degraded(&self, cause: DegradeCause) {
        let counter = match cause {
            DegradeCause::NonFinite => &self.nonfinite,
            DegradeCause::Panic => &self.panics,
            DegradeCause::Routed => &self.routed,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Answers `encoding` from the fallback *without* consulting the
    /// primary, counting the call under `cause`.
    ///
    /// This is the degradation path a serving layer takes when its circuit
    /// breaker is open (`cause` = [`DegradeCause::Routed`]) or when it has
    /// already observed the primary fault itself and exhausted its retry
    /// budget ([`DegradeCause::NonFinite`] / [`DegradeCause::Panic`]).
    pub fn degrade_encoding(&self, encoding: &[f32], cause: DegradeCause) -> f64 {
        self.note_degraded(cause);
        self.fallback.predict_encoding(encoding)
    }

    /// Runs one primary query under [`catch_unwind`], folding a panic into
    /// `None` so every caller treats it exactly like a bad value.
    fn primary_query<T>(&self, query: impl FnOnce() -> T) -> Option<T> {
        catch_unwind(AssertUnwindSafe(query)).ok()
    }
}

impl<P: Predictor, F: Predictor> Predictor for FallbackPredictor<'_, P, F> {
    fn predict_encoding(&self, encoding: &[f32]) -> f64 {
        match self.primary_query(|| self.primary.predict_encoding(encoding)) {
            Some(v) if v.is_finite() => v,
            Some(_) => {
                self.note_degraded(DegradeCause::NonFinite);
                self.fallback.predict_encoding(encoding)
            }
            None => {
                self.note_degraded(DegradeCause::Panic);
                self.fallback.predict_encoding(encoding)
            }
        }
    }

    fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
        match self.primary_query(|| self.primary.gradient(encoding)) {
            Some(g) if g.iter().all(|v| v.is_finite()) => g,
            Some(_) => {
                self.note_degraded(DegradeCause::NonFinite);
                self.fallback.gradient(encoding)
            }
            None => {
                self.note_degraded(DegradeCause::Panic);
                self.fallback.gradient(encoding)
            }
        }
    }

    fn predict(&self, arch: &Architecture) -> f64 {
        match self.primary_query(|| self.primary.predict(arch)) {
            Some(v) if v.is_finite() => v,
            Some(_) => {
                self.note_degraded(DegradeCause::NonFinite);
                self.fallback.predict(arch)
            }
            None => {
                self.note_degraded(DegradeCause::Panic);
                self.fallback.predict(arch)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LutPredictor;
    use lightnas_hw::Xavier;
    use lightnas_space::SearchSpace;

    /// A primary that is broken for every query.
    struct BrokenPrimary;
    impl Predictor for BrokenPrimary {
        fn predict_encoding(&self, _encoding: &[f32]) -> f64 {
            f64::NAN
        }
        fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
            let mut g = vec![0.0; encoding.len()];
            g[0] = f32::INFINITY;
            g
        }
    }

    /// A primary that panics on every query.
    struct PanickyPrimary;
    impl Predictor for PanickyPrimary {
        fn predict_encoding(&self, _encoding: &[f32]) -> f64 {
            panic!("predictor weights corrupted")
        }
        fn gradient(&self, _encoding: &[f32]) -> Vec<f32> {
            panic!("predictor weights corrupted")
        }
    }

    /// A primary that glitches on its first `n` predictions only.
    struct Glitchy {
        n: u64,
        calls: AtomicU64,
    }
    impl Predictor for Glitchy {
        fn predict_encoding(&self, _encoding: &[f32]) -> f64 {
            if self.calls.fetch_add(1, Ordering::Relaxed) < self.n {
                f64::NAN
            } else {
                21.5
            }
        }
        fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
            vec![0.25; encoding.len()]
        }
    }

    /// Silences the default panic hook around `f` so injected-panic tests
    /// don't spray backtraces; restores the hook afterwards.
    fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn healthy_primary_passes_through_unchanged() {
        let space = SearchSpace::standard();
        let lut = LutPredictor::build(&Xavier::maxn(), &space);
        let glitchy = Glitchy {
            n: 0,
            calls: AtomicU64::new(0),
        };
        let fb = FallbackPredictor::new(&glitchy, &lut);
        let arch = Architecture::random(&space, 1);
        assert_eq!(fb.predict_encoding(&arch.encode()), 21.5);
        assert_eq!(
            fb.gradient(&arch.encode()),
            glitchy.gradient(&arch.encode())
        );
        assert_eq!(fb.degraded(), 0);
    }

    #[test]
    fn broken_primary_routes_to_the_lut_and_counts() {
        let space = SearchSpace::standard();
        let lut = LutPredictor::build(&Xavier::maxn(), &space);
        let fb = FallbackPredictor::new(&BrokenPrimary, &lut);
        let arch = Architecture::random(&space, 2);
        let enc = arch.encode();
        assert_eq!(fb.predict_encoding(&enc), lut.predict_encoding(&enc));
        assert!((Predictor::predict(&fb, &arch) - LutPredictor::predict(&lut, &arch)).abs() == 0.0);
        assert_eq!(fb.gradient(&enc), Predictor::gradient(&lut, &enc));
        assert!(
            fb.gradient(&enc).iter().all(|v| v.is_finite()),
            "degraded gradients must be finite"
        );
        assert_eq!(fb.degraded(), 4, "predict_encoding + predict + gradient×2");
        assert_eq!(fb.degraded_nonfinite(), 4, "all four were NaN/∞, no panics");
        assert_eq!(fb.degraded_panics(), 0);
    }

    #[test]
    fn panicking_primary_degrades_and_counts_separately() {
        let space = SearchSpace::standard();
        let lut = LutPredictor::build(&Xavier::maxn(), &space);
        let fb = FallbackPredictor::new(&PanickyPrimary, &lut);
        let arch = Architecture::random(&space, 4);
        let enc = arch.encode();
        quiet_panics(|| {
            assert_eq!(fb.predict_encoding(&enc), lut.predict_encoding(&enc));
            assert_eq!(fb.gradient(&enc), Predictor::gradient(&lut, &enc));
            assert_eq!(
                Predictor::predict(&fb, &arch),
                LutPredictor::predict(&lut, &arch)
            );
        });
        assert_eq!(fb.degraded_panics(), 3, "every query panicked");
        assert_eq!(fb.degraded_nonfinite(), 0);
        assert_eq!(fb.degraded(), 3);
    }

    #[test]
    fn transient_glitch_degrades_then_recovers() {
        let space = SearchSpace::standard();
        let lut = LutPredictor::build(&Xavier::maxn(), &space);
        let glitchy = Glitchy {
            n: 2,
            calls: AtomicU64::new(0),
        };
        let fb = FallbackPredictor::new(&glitchy, &lut);
        let arch = Architecture::random(&space, 3);
        let enc = arch.encode();
        let lut_v = lut.predict_encoding(&enc);
        assert_eq!(fb.predict_encoding(&enc), lut_v);
        assert_eq!(fb.predict_encoding(&enc), lut_v);
        assert_eq!(fb.predict_encoding(&enc), 21.5, "primary healthy again");
        assert_eq!(fb.degraded(), 2);
        assert_eq!(fb.degraded_nonfinite(), 2);
    }

    #[test]
    fn routed_degradation_never_touches_the_primary() {
        let space = SearchSpace::standard();
        let lut = LutPredictor::build(&Xavier::maxn(), &space);
        // A panicking primary proves `degrade_encoding` skips it entirely.
        let fb = FallbackPredictor::new(&PanickyPrimary, &lut);
        let enc = Architecture::random(&space, 5).encode();
        let v = fb.degrade_encoding(&enc, DegradeCause::Routed);
        assert_eq!(v.to_bits(), lut.predict_encoding(&enc).to_bits());
        assert_eq!(fb.degraded_routed(), 1);
        assert_eq!(fb.degraded_panics(), 0);
        assert_eq!(fb.degraded(), 1);
    }
}
