//! Property-based invariants of the monotone transfer map (proptest).
//!
//! The transfer path's whole value rests on one promise: recalibrating a
//! proxy predictor to a target device's scale must never scramble the
//! proxy's ranking. Hammered here with arbitrary (including adversarial,
//! anti-monotone) training pairs:
//!
//! * Kendall τ between training inputs and mapped outputs is exactly 1.0 —
//!   the map is strictly increasing on its own training points;
//! * on *held-out* inputs (any reals, including far outside the fitted
//!   range), `x1 < x2` implies `apply(x1) < apply(x2)`;
//! * fitting is permutation-invariant: the map is a function of the pair
//!   *set*, not the order the samples arrived in.

use proptest::prelude::*;

use lightnas_fleet::{kendall_tau, MonotoneMap};

/// Builds `n` training pairs with distinct inputs (index spread + jitter)
/// and arbitrary — possibly rank-breaking — outputs.
fn make_pairs(jitters: &[f64], ys: &[f64], n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|i| (i as f64 * 2.0 + jitters[i], ys[i]))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn training_pairs_keep_kendall_tau_of_exactly_one(
        jitters in proptest::collection::vec(0.0f64..1.0, 40),
        ys in proptest::collection::vec(-50.0f64..50.0, 40),
        n in 2usize..=40,
    ) {
        let pairs = make_pairs(&jitters, &ys, n);
        let map = MonotoneMap::fit(&pairs);
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let mapped: Vec<f64> = xs.iter().map(|&x| map.apply(x)).collect();
        let tau = kendall_tau(&xs, &mapped);
        prop_assert!(
            (tau - 1.0).abs() < 1e-12,
            "map must preserve the training ranking exactly, got τ = {}", tau
        );
    }

    #[test]
    fn held_out_inputs_never_decrease(
        jitters in proptest::collection::vec(0.0f64..1.0, 40),
        ys in proptest::collection::vec(-50.0f64..50.0, 40),
        n in 2usize..=40,
        probes in proptest::collection::vec(-100.0f64..200.0, 24),
    ) {
        let map = MonotoneMap::fit(&make_pairs(&jitters, &ys, n));
        let mut sorted = probes;
        sorted.sort_by(f64::total_cmp);
        sorted.dedup();
        for w in sorted.windows(2) {
            let (lo, hi) = (map.apply(w[0]), map.apply(w[1]));
            prop_assert!(
                lo < hi,
                "apply({}) = {} must be below apply({}) = {}",
                w[0], lo, w[1], hi
            );
        }
    }

    #[test]
    fn fit_is_permutation_invariant(
        jitters in proptest::collection::vec(0.0f64..1.0, 40),
        ys in proptest::collection::vec(-50.0f64..50.0, 40),
        n in 2usize..=40,
        rot in 0usize..40,
    ) {
        let pairs = make_pairs(&jitters, &ys, n);
        let mut rotated = pairs.clone();
        let k = rot % rotated.len();
        rotated.rotate_left(k);
        prop_assert_eq!(MonotoneMap::fit(&pairs), MonotoneMap::fit(&rotated));
    }

    #[test]
    fn slope_is_positive_everywhere(
        jitters in proptest::collection::vec(0.0f64..1.0, 40),
        ys in proptest::collection::vec(-50.0f64..50.0, 40),
        n in 2usize..=40,
        probes in proptest::collection::vec(-100.0f64..200.0, 12),
    ) {
        let map = MonotoneMap::fit(&make_pairs(&jitters, &ys, n));
        for &x in &probes {
            prop_assert!(map.slope_at(x) > 0.0, "slope at {} must be positive", x);
        }
    }
}
