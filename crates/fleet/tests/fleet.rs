//! End-to-end properties of the fleet layer: transfer accuracy against the
//! per-device-trained reference, worker-count byte-identity of fleet
//! sweeps, and telemetry attribution.

use std::sync::OnceLock;

use lightnas::SearchConfig;
use lightnas_eval::AccuracyOracle;
use lightnas_fleet::{
    predictor_rmse, quantile_targets, spearman, transfer_predictor, DeviceFleet, DeviceSpec,
    FleetSearch, TransferOptions,
};
use lightnas_predictor::{Metric, MetricDataset, MlpPredictor, Predictor, TrainConfig};
use lightnas_runtime::Telemetry;
use lightnas_space::SearchSpace;

struct Fixture {
    space: SearchSpace,
    oracle: AccuracyOracle,
    fleet: DeviceFleet,
    proxy: MlpPredictor,
}

fn train_config() -> TrainConfig {
    TrainConfig {
        epochs: 30,
        batch_size: 128,
        lr: 2e-3,
        seed: 0,
    }
}

fn device_corpus(spec: &DeviceSpec, space: &SearchSpace, n: usize) -> MetricDataset {
    MetricDataset::sample_diverse(&spec.device(), space, Metric::LatencyMs, n, 5)
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let space = SearchSpace::standard();
        let oracle = AccuracyOracle::imagenet();
        let fleet = DeviceFleet::standard();
        let data = device_corpus(fleet.proxy(), &space, 1000);
        let proxy = MlpPredictor::train(&data.split(0.8).0, &train_config());
        Fixture {
            space,
            oracle,
            fleet,
            proxy,
        }
    })
}

/// A schedule small enough for CI, long enough to exercise the λ loop.
fn tiny_config() -> SearchConfig {
    SearchConfig {
        epochs: 8,
        steps_per_epoch: 10,
        warmup_epochs: 2,
        ..SearchConfig::fast()
    }
}

#[test]
fn transfer_meets_the_rmse_bar_against_per_device_training() {
    let f = fixture();
    let target = f.fleet.get("jetson-nano").expect("registered");
    let data = device_corpus(target, &f.space, 1000);
    let (train, valid) = data.split(0.8);

    let per_device = MlpPredictor::train(&train, &train_config());
    let transferred = transfer_predictor(&f.proxy, &train, &TransferOptions::default());

    let reference = per_device.rmse(&valid);
    let transfer = predictor_rmse(&transferred, &valid);
    assert!(
        transfer <= 1.5 * reference,
        "transfer RMSE {transfer:.3} ms must be within 1.5x of the \
         per-device-trained {reference:.3} ms"
    );

    // And the transferred predictor must rank the target device correctly.
    let preds: Vec<f64> = valid
        .encodings()
        .iter()
        .map(|e| transferred.predict_encoding(e))
        .collect();
    let rho = spearman(&preds, valid.targets());
    assert!(rho > 0.9, "transferred rank correlation {rho:.3} too weak");
}

#[test]
fn transfer_consumes_at_most_its_budget() {
    let f = fixture();
    let target = f.fleet.get("server-gpu").expect("registered");
    let data = device_corpus(target, &f.space, 300);
    // Identical transfers from the 100-row budget prefix and from the full
    // corpus: the budget cap must make them indistinguishable.
    let opts = TransferOptions::default();
    assert_eq!(opts.budget, 100);
    let a = transfer_predictor(&f.proxy, &data, &opts);
    let b = transfer_predictor(&f.proxy, &data.take(100), &opts);
    let probe = lightnas_space::Architecture::random(&f.space, 42);
    assert_eq!(
        a.predict(&probe).to_bits(),
        b.predict(&probe).to_bits(),
        "rows beyond the budget must never influence the transfer"
    );
}

#[test]
fn fleet_sweeps_are_byte_identical_across_worker_counts() {
    let f = fixture();
    let spec = f.fleet.proxy();
    let targets = quantile_targets(&spec.device(), &f.space, 2, 32, 0);
    let fronts: Vec<_> = [1, 2, 4]
        .iter()
        .map(|&workers| {
            FleetSearch::new(&f.space, &f.oracle, tiny_config(), workers).search_device(
                spec,
                &f.proxy,
                &targets,
                &[0],
                None,
            )
        })
        .collect();
    assert_eq!(fronts[0], fronts[1], "1 vs 2 workers diverged");
    assert_eq!(fronts[0], fronts[2], "1 vs 4 workers diverged");
    assert_eq!(fronts[0].points.len(), targets.len());
    assert!(!fronts[0].front.is_empty());
}

#[test]
fn fleet_sweep_telemetry_is_attributed_to_the_device() {
    let f = fixture();
    let target = f.fleet.get("jetson-nano").expect("registered");
    let data = device_corpus(target, &f.space, 120);
    let transferred = transfer_predictor(
        &f.proxy,
        &data,
        &TransferOptions {
            budget: 100,
            fine_tune: None,
        },
    );
    let dir = std::env::temp_dir().join(format!("lightnas-fleet-telemetry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let telemetry = Telemetry::create(&dir, "fleet").expect("sink");
    let targets = quantile_targets(&target.device(), &f.space, 2, 32, 0);
    let front = FleetSearch::new(&f.space, &f.oracle, tiny_config(), 2).search_device(
        target,
        &transferred,
        &targets,
        &[0],
        Some(&telemetry),
    );
    assert_eq!(front.device, "jetson-nano");
    let text = std::fs::read_to_string(telemetry.path()).expect("jsonl");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(!text.is_empty());
    for line in text.lines() {
        assert!(
            line.contains("\"device\":\"jetson-nano\""),
            "unattributed fleet telemetry line: {line}"
        );
    }
}

#[test]
fn pareto_front_is_sorted_and_non_dominated() {
    let f = fixture();
    let spec = f.fleet.proxy();
    let targets = quantile_targets(&spec.device(), &f.space, 3, 32, 0);
    let front = FleetSearch::new(&f.space, &f.oracle, tiny_config(), 2).search_device(
        spec,
        &f.proxy,
        &targets,
        &[0, 1],
        None,
    );
    assert_eq!(front.points.len(), 6);
    let pareto: Vec<_> = front.pareto_points().collect();
    assert!(!pareto.is_empty());
    for w in pareto.windows(2) {
        assert!(w[0].true_ms <= w[1].true_ms, "front must be latency-sorted");
        assert!(w[0].top1 < w[1].top1, "front must strictly improve top-1");
    }
}
