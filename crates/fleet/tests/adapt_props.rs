//! Property-based invariants of fleet-wide adaptation (proptest).
//!
//! Three contract clauses the fleet drift soak leans on, hammered over
//! arbitrary signal scales, drift magnitudes, noise shapes, and pool
//! budgets:
//!
//! * a correlated drift ramp on devices {A, B} **never** promotes an
//!   unvalidated shadow on a stationary bystander C — warm hints lower the
//!   trigger bar, they never bypass a device's own evidence or its
//!   validation gate;
//! * saturating the retrain pool (more simultaneous flags than workers,
//!   plus a chaos starvation window) never deadlocks: the queue drains and
//!   every admission wait stays bounded;
//! * a warm-started retrain and a cold one converge to rank-compatible
//!   predictors (Spearman ≥ 0.9 over a probe set) — the warm start is a
//!   head start, not a different answer.

use proptest::prelude::*;

use lightnas_predictor::{BatchPredictor, Predictor};
use lightnas_serve::{AdaptConfig, ModelSlot, VirtualClock};

use lightnas_fleet::{
    fleet_audit_is_well_formed, spearman, FleetAdaptEvent, FleetAdaptOptions, FleetAdaptation,
};

/// Deterministic per-index value in [1, 2) — the "architecture" signal.
fn lane(i: u64) -> f64 {
    1.0 + (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40) as f64 / 16_777_216.0
}

/// Smooth bounded noise with a stable RMS.
fn noise(i: u64, amplitude: f64, phase: f64) -> f64 {
    amplitude * (0.7 * i as f64 + phase).sin()
}

/// Linear fake: `scale * enc[0]`; retraining refits by least squares.
#[derive(Debug, Clone)]
struct LinearModel {
    scale: f64,
}
impl Predictor for LinearModel {
    fn predict_encoding(&self, e: &[f32]) -> f64 {
        self.scale * f64::from(e[0])
    }
    fn gradient(&self, e: &[f32]) -> Vec<f32> {
        vec![0.0; e.len()]
    }
}
impl BatchPredictor for LinearModel {}

fn refit(encs: &[Vec<f32>], obs: &[f64]) -> LinearModel {
    let (mut num, mut den) = (0.0, 0.0);
    for (e, o) in encs.iter().zip(obs) {
        let x = f64::from(e[0]);
        num += x * o;
        den += x * x;
    }
    LinearModel { scale: num / den }
}

fn enc(i: u64) -> Vec<f32> {
    vec![lane(i) as f32, 0.0]
}

fn quick_options() -> FleetAdaptOptions {
    FleetAdaptOptions {
        adapt: AdaptConfig {
            window: 16,
            min_samples: 8,
            rmse_ratio_bar: 1.5,
            spearman_bar: 0.5,
            promote_margin: 0.95,
            validation_pairs: 8,
            probation: 8,
            rollback_ratio: 1.4,
            cooldown: 8,
        },
        max_concurrent_retrains: 1,
        correlated: Vec::new(),
        warm_starts: true,
        warm_ratio_bar: 1.15,
    }
}

/// The count of deployment-moving events (promotions + rollbacks) in the
/// fleet audit, projected on one device.
fn audited_deployments(audit: &[FleetAdaptEvent], device: usize) -> u64 {
    audit
        .iter()
        .filter(|e| {
            matches!(
                e,
                FleetAdaptEvent::Device { device: d, event, .. }
                    if *d == device
                        && matches!(
                            event,
                            lightnas_serve::AdaptEvent::Promoted { .. }
                                | lightnas_serve::AdaptEvent::RolledBack { .. }
                        )
            )
        })
        .count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Devices A and B ramp together; C stays stationary (honest model,
    /// bounded noise). A→C and B→C warm hints are armed on purpose — the
    /// adversarial wiring — and still C must never retrain, never promote,
    /// and keep generation 0. A and B must both adapt.
    #[test]
    fn correlated_ramp_never_promotes_an_unvalidated_bystander(
        base_a in 5.0f64..40.0,
        base_b in 5.0f64..40.0,
        base_c in 5.0f64..40.0,
        drift in 1.4f64..2.0,
        noise_frac in 0.0f64..0.04,
        phase in 0.0f64..std::f64::consts::TAU,
    ) {
        let clock = VirtualClock::new();
        let slots = [
            ModelSlot::new(LinearModel { scale: base_a }),
            ModelSlot::new(LinearModel { scale: base_b }),
            ModelSlot::new(LinearModel { scale: base_c }),
        ];
        let mut options = quick_options();
        // Adversarial: everything correlates with the bystander.
        options.correlated = vec![(0, 1), (1, 0), (0, 2), (1, 2)];
        let mut fleet = FleetAdaptation::new(
            &slots,
            vec!["a".into(), "b".into(), "c".into()],
            &clock,
            options,
            |_d, _m: &LinearModel, encs, obs| refit(encs, obs),
        )
        .with_warm_trainer(|_s, _sm: &LinearModel, _t, _inc: &LinearModel, encs, obs| {
            refit(encs, obs)
        });
        let bases = [base_a, base_b, base_c];
        for t in 0..360u64 {
            let samples: Vec<(Vec<f32>, f64)> = (0..3usize)
                .map(|i| {
                    let e = enc(t.wrapping_mul(3) + i as u64);
                    let scale = if i < 2 && t >= 60 { bases[i] * drift } else { bases[i] };
                    let truth = scale * f64::from(e[0]);
                    let obs = truth + noise(t * 3 + i as u64, noise_frac * bases[i], phase);
                    (e, obs)
                })
                .collect();
            fleet.ingest_tick(&samples);
            // The bystander's generation can only ever move through audited
            // deployments — checked every tick, not just at the end.
            prop_assert_eq!(
                slots[2].generation(),
                audited_deployments(fleet.audit(), 2),
                "bystander generation moved without an audited deployment at tick {}", t
            );
        }
        prop_assert!(fleet_audit_is_well_formed(3, fleet.audit()));
        prop_assert_eq!(slots[2].generation(), 0, "stationary bystander must stay on gen 0");
        prop_assert!(
            !fleet.audit().iter().any(|e| matches!(
                e,
                FleetAdaptEvent::RetrainQueued { device: 2, .. }
            )),
            "a healthy window must not cross even the lowered warm bar"
        );
        prop_assert!(slots[0].generation() >= 1, "drifted A adapts");
        prop_assert!(slots[1].generation() >= 1, "drifted B adapts");
        // Every device's generation equals its audited deployments.
        for (d, slot) in slots.iter().enumerate() {
            prop_assert_eq!(slot.generation(), audited_deployments(fleet.audit(), d));
        }
    }

    /// All devices flag at once against a 1-worker pool, with a chaos
    /// starvation window on top: the queue must drain, waits must stay
    /// bounded, and every device must still converge.
    #[test]
    fn pool_saturation_never_deadlocks(
        devices in 2usize..6,
        drift in 1.4f64..2.0,
        starve in 0u64..60,
    ) {
        let clock = VirtualClock::new();
        let slots: Vec<ModelSlot<LinearModel>> = (0..devices)
            .map(|i| ModelSlot::new(LinearModel { scale: 10.0 + 5.0 * i as f64 }))
            .collect();
        let mut options = quick_options();
        options.max_concurrent_retrains = 1;
        let mut fleet = FleetAdaptation::new(
            &slots,
            (0..devices).map(|i| format!("d{i}")).collect(),
            &clock,
            options,
            |_d, _m: &LinearModel, encs, obs| refit(encs, obs),
        );
        for t in 0..40u64 {
            let samples: Vec<(Vec<f32>, f64)> = (0..devices)
                .map(|i| {
                    let e = enc(t.wrapping_mul(devices as u64) + i as u64);
                    let obs = (10.0 + 5.0 * i as f64) * f64::from(e[0]);
                    (e, obs)
                })
                .collect();
            fleet.ingest_tick(&samples);
        }
        fleet.starve_pool(starve);
        for t in 40..400u64 {
            let samples: Vec<(Vec<f32>, f64)> = (0..devices)
                .map(|i| {
                    let e = enc(t.wrapping_mul(devices as u64) + i as u64);
                    let obs = (10.0 + 5.0 * i as f64) * drift * f64::from(e[0]);
                    (e, obs)
                })
                .collect();
            fleet.ingest_tick(&samples);
        }
        prop_assert_eq!(fleet.queue_len(), 0, "queue must drain — no deadlock");
        for (i, slot) in slots.iter().enumerate() {
            prop_assert!(slot.generation() >= 1, "device {} starved forever", i);
        }
        // Bounded wait: starvation window + one pool round per queued
        // device ahead, with validation/cooldown slack.
        let bound = starve + 64 + 48 * devices as u64;
        prop_assert!(
            fleet.max_admission_wait() <= bound,
            "admission wait {} exceeds bound {}",
            fleet.max_admission_wait(),
            bound
        );
        prop_assert!(fleet_audit_is_well_formed(devices, fleet.audit()));
    }

    /// Warm and cold retrains see the same window and must land on
    /// rank-compatible predictors: Spearman ≥ 0.9 across a probe set.
    /// (With the linear fake the ranks are identical; the property pins
    /// the *contract* the MLP-backed soak asserts statistically.)
    #[test]
    fn warm_and_cold_starts_converge_rank_compatibly(
        base in 5.0f64..40.0,
        drift in 1.4f64..2.0,
        source_excess in 0.9f64..1.1,
        noise_frac in 0.0f64..0.04,
        phase in 0.0f64..std::f64::consts::TAU,
    ) {
        let run = |warm_starts: bool| -> Vec<f64> {
            let clock = VirtualClock::new();
            let slots = [
                ModelSlot::new(LinearModel { scale: base }),
                ModelSlot::new(LinearModel { scale: base * 2.0 }),
            ];
            let mut options = quick_options();
            options.correlated = vec![(0, 1)];
            options.warm_starts = warm_starts;
            let mut fleet = FleetAdaptation::new(
                &slots,
                vec!["src".into(), "tgt".into()],
                &clock,
                options,
                |_d, _m: &LinearModel, encs, obs| refit(encs, obs),
            )
            .with_warm_trainer(move |_s, sm: &LinearModel, _t, inc: &LinearModel, _e, _o| {
                // Transfer the source's corrected drift factor, imperfectly
                // (source_excess models transfer error); validation and any
                // follow-up retrains polish it on the target's own traffic.
                LinearModel { scale: inc.scale * (sm.scale / base) * source_excess }
            });
            for t in 0..420u64 {
                let samples: Vec<(Vec<f32>, f64)> = (0..2usize)
                    .map(|i| {
                        let e = enc(t.wrapping_mul(2) + i as u64);
                        let b = if i == 0 { base } else { base * 2.0 };
                        let scale = if t >= 60 { b * drift } else { b };
                        let truth = scale * f64::from(e[0]);
                        let obs = truth + noise(t * 2 + i as u64, noise_frac * b, phase);
                        (e, obs)
                    })
                    .collect();
                fleet.ingest_tick(&samples);
            }
            // Probe the target's final model over a fixed encoding set.
            (0..64u64)
                .map(|i| slots[1].with_current(|m| m.predict_encoding(&enc(i * 7))))
                .collect()
        };
        let warm = run(true);
        let cold = run(false);
        let rho = spearman(&warm, &cold);
        prop_assert!(
            rho >= 0.9,
            "warm and cold predictors disagree on ranks: rho = {}",
            rho
        );
    }
}
