//! The device registry: parameterized roofline specs for a fleet of
//! embedded (and one server-class) targets.
//!
//! A [`DeviceSpec`] is a named [`XavierConfig`] — the roofline calibration
//! that `lightnas-hw` already interprets (peak compute, memory bandwidth,
//! launch/runtime overheads, cache-reuse and stall cross-layer terms, noise
//! and power envelopes) — so every device in the fleet reuses the single
//! simulator implementation. [`DeviceFleet::standard`] registers the five
//! classes the fleet exhibit sweeps; the Xavier-MAXN entry is calibrated
//! identically to [`Xavier::maxn`] and serves as the *proxy* device whose
//! predictor is transferred to the rest (see [`crate::transfer`]).

use lightnas_hw::{device_seed_salt, Xavier, XavierConfig};

/// Coarse hardware class of a fleet device (display / grouping only; the
/// numbers live in the [`XavierConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Mobile SoC: modest compute and bandwidth, thermally noisy.
    Phone,
    /// Edge accelerator: systolic compute over a small on-chip SRAM, tiny
    /// overheads, very quiet measurements.
    EdgeTpu,
    /// Entry-level embedded GPU (Jetson-Nano-class).
    EmbeddedGpu,
    /// The paper's Jetson AGX Xavier (MAXN) — the fleet's proxy device.
    Xavier,
    /// Datacenter inference GPU (T4-class): the fastest device in the
    /// fleet, though still compute-bound enough at batch 8 to rank
    /// architectures.
    Server,
}

/// One named device of the fleet: a roofline calibration plus the identity
/// under which it measures ([`Xavier::named`], so its noise streams are
/// decorrelated from every other device via [`device_seed_salt`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Registry name (stable: telemetry attribution and seed salting key
    /// on it).
    pub name: String,
    /// Coarse class, for display.
    pub class: DeviceClass,
    /// The roofline calibration the simulator interprets.
    pub config: XavierConfig,
}

impl DeviceSpec {
    /// A new spec.
    pub fn new(name: impl Into<String>, class: DeviceClass, config: XavierConfig) -> Self {
        Self {
            name: name.into(),
            class,
            config,
        }
    }

    /// Instantiates the simulated device (named, so measurement noise is
    /// salted per device).
    pub fn device(&self) -> Xavier {
        Xavier::named(self.name.clone(), self.config)
    }

    /// The salt this device mixes into every measurement seed.
    pub fn seed_salt(&self) -> u64 {
        device_seed_salt(&self.name)
    }
}

/// The registry of fleet devices, with one designated *proxy* — the device
/// whose (expensive, 10k-sample) predictor the transfer path adapts to
/// every other target.
#[derive(Debug, Clone)]
pub struct DeviceFleet {
    devices: Vec<DeviceSpec>,
    proxy: usize,
}

impl DeviceFleet {
    /// Builds a fleet from explicit specs.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty, `proxy` is out of range, or two
    /// devices share a name.
    pub fn new(devices: Vec<DeviceSpec>, proxy: usize) -> Self {
        assert!(!devices.is_empty(), "fleet must have at least one device");
        assert!(proxy < devices.len(), "proxy index out of range");
        for (i, a) in devices.iter().enumerate() {
            for b in &devices[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate device name {:?}", a.name);
            }
        }
        Self { devices, proxy }
    }

    /// The standard five-device fleet of the `fleet_pareto` exhibit:
    ///
    /// | name          | class        | character                                  |
    /// |---------------|--------------|--------------------------------------------|
    /// | `phone-a76`   | phone        | low compute/bandwidth, thermally noisy     |
    /// | `edge-tpu`    | edge TPU     | big on-chip SRAM, tiny overheads, quiet    |
    /// | `jetson-nano` | embedded GPU | [`XavierConfig::nano_class`]               |
    /// | `xavier-maxn` | Xavier       | [`XavierConfig::maxn`] — the proxy         |
    /// | `server-gpu`  | server       | T4-class inference card, fleet's fastest   |
    ///
    /// All entries keep the paper's batch of 8 so latencies are comparable
    /// across the fleet.
    pub fn standard() -> Self {
        let phone = XavierConfig {
            peak_tmadds: 0.35,
            mem_bandwidth_gbs: 31.8,
            bandwidth_efficiency: 0.60,
            kernel_launch_ms: 0.025,
            runtime_overhead_ms: 5.5,
            l2_cache_bytes: 2 * 1024 * 1024,
            cache_reuse_discount: 0.30,
            transition_stall_ms: 0.09,
            noise_std_ms: 0.12,
            compute_power_w: 6.0,
            memory_power_w: 3.5,
            static_power_w: 1.2,
            energy_noise_frac: 0.05,
            ..XavierConfig::maxn()
        };
        let edge_tpu = XavierConfig {
            peak_tmadds: 1.6,
            mem_bandwidth_gbs: 64.0,
            bandwidth_efficiency: 0.95,
            kernel_launch_ms: 0.004,
            runtime_overhead_ms: 1.8,
            l2_cache_bytes: 8 * 1024 * 1024,
            cache_reuse_discount: 0.75,
            transition_stall_ms: 0.015,
            // The accelerator itself is deterministic, but latency is
            // measured through the host interface, whose jitter dominates.
            noise_std_ms: 0.08,
            compute_power_w: 2.0,
            memory_power_w: 1.2,
            static_power_w: 0.4,
            energy_noise_frac: 0.01,
            ..XavierConfig::maxn()
        };
        // T4-class inference card: the fleet's fastest device, but kept in
        // a regime where the search space still spans a real latency range
        // (a 30+ TMADD/s part at batch 8 is pure launch overhead — every
        // architecture collapses to the same latency and constrained search
        // degenerates to ties).
        let server = XavierConfig {
            peak_tmadds: 4.0,
            mem_bandwidth_gbs: 320.0,
            bandwidth_efficiency: 0.85,
            kernel_launch_ms: 0.008,
            runtime_overhead_ms: 3.0,
            l2_cache_bytes: 6 * 1024 * 1024,
            cache_reuse_discount: 0.45,
            transition_stall_ms: 0.025,
            noise_std_ms: 0.02,
            compute_power_w: 70.0,
            memory_power_w: 40.0,
            static_power_w: 20.0,
            energy_noise_frac: 0.01,
            ..XavierConfig::maxn()
        };
        Self::new(
            vec![
                DeviceSpec::new("phone-a76", DeviceClass::Phone, phone),
                DeviceSpec::new("edge-tpu", DeviceClass::EdgeTpu, edge_tpu),
                DeviceSpec::new(
                    "jetson-nano",
                    DeviceClass::EmbeddedGpu,
                    XavierConfig::nano_class(),
                ),
                DeviceSpec::new("xavier-maxn", DeviceClass::Xavier, XavierConfig::maxn()),
                DeviceSpec::new("server-gpu", DeviceClass::Server, server),
            ],
            3,
        )
    }

    /// Every device, registry order.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// The proxy device (whose predictor gets transferred).
    pub fn proxy(&self) -> &DeviceSpec {
        &self.devices[self.proxy]
    }

    /// The non-proxy devices, registry order.
    pub fn targets(&self) -> impl Iterator<Item = &DeviceSpec> {
        let proxy = self.proxy;
        self.devices
            .iter()
            .enumerate()
            .filter(move |(i, _)| *i != proxy)
            .map(|(_, d)| d)
    }

    /// Looks a device up by name.
    pub fn get(&self, name: &str) -> Option<&DeviceSpec> {
        self.devices.iter().find(|d| d.name == name)
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// `true` when no devices are registered (never for [`standard`](Self::standard)).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightnas_space::{mobilenet_v2, SearchSpace};

    #[test]
    fn standard_fleet_has_five_distinct_devices() {
        let fleet = DeviceFleet::standard();
        assert_eq!(fleet.len(), 5);
        let mut salts: Vec<u64> = fleet.devices().iter().map(DeviceSpec::seed_salt).collect();
        salts.sort_unstable();
        salts.dedup();
        assert_eq!(salts.len(), 5, "seed salts must be pairwise distinct");
        assert_eq!(fleet.targets().count(), 4);
    }

    #[test]
    fn proxy_is_the_calibrated_xavier_maxn() {
        let fleet = DeviceFleet::standard();
        assert_eq!(fleet.proxy().name, "xavier-maxn");
        assert_eq!(fleet.proxy().config, XavierConfig::maxn());
        // Same deterministic roofline as the anonymous paper device — only
        // the noise salt differs.
        let space = SearchSpace::standard();
        let m = mobilenet_v2();
        assert_eq!(
            fleet.proxy().device().true_latency_ms(&m, &space),
            Xavier::maxn().true_latency_ms(&m, &space)
        );
    }

    #[test]
    fn fleet_latencies_order_by_hardware_class() {
        // Deterministic rooflines must separate the classes on a reference
        // network: server < xavier < {nano, phone}, and every device stays
        // in a sane embedded range.
        let fleet = DeviceFleet::standard();
        let space = SearchSpace::standard();
        let m = mobilenet_v2();
        let ms = |name: &str| {
            fleet
                .get(name)
                .unwrap()
                .device()
                .true_latency_ms(&m, &space)
        };
        let (phone, nano, xavier, server) = (
            ms("phone-a76"),
            ms("jetson-nano"),
            ms("xavier-maxn"),
            ms("server-gpu"),
        );
        assert!(server < xavier, "server {server:.1} vs xavier {xavier:.1}");
        assert!(xavier < nano, "xavier {xavier:.1} vs nano {nano:.1}");
        assert!(xavier < phone, "xavier {xavier:.1} vs phone {phone:.1}");
        for d in fleet.devices() {
            let l = d.device().true_latency_ms(&m, &space);
            assert!(l > 1.0 && l < 400.0, "{}: {l:.1} ms out of range", d.name);
        }
    }

    #[test]
    fn lookup_and_duplicate_rejection() {
        let fleet = DeviceFleet::standard();
        assert!(fleet.get("edge-tpu").is_some());
        assert!(fleet.get("missing").is_none());
        let dup = vec![
            DeviceSpec::new("a", DeviceClass::Phone, XavierConfig::maxn()),
            DeviceSpec::new("a", DeviceClass::Server, XavierConfig::maxn()),
        ];
        assert!(std::panic::catch_unwind(|| DeviceFleet::new(dup, 0)).is_err());
    }
}
