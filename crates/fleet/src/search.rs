//! The "search once, deploy everywhere" driver: one λ-driven constrained
//! search per (device, target) pair through the existing runtime, reduced
//! to a per-device Pareto front.
//!
//! [`FleetSearch`] owns nothing new mechanically — every search runs as a
//! [`SearchJob`] through [`run_sweep`]'s scheduler/supervisor/cache stack,
//! with [`SweepOptions::device`] set so the JSONL telemetry attributes each
//! sweep to its target device. What the fleet layer adds is the reduction:
//! true (deterministic) target-device latency and oracle accuracy per
//! derived architecture, and the non-dominated subset over
//! `(true latency, top-1)` per device.

use lightnas::pareto::pareto_indices;
use lightnas::SearchConfig;
use lightnas_eval::{AccuracyOracle, TrainingProtocol};
use lightnas_hw::Xavier;
use lightnas_predictor::Predictor;
use lightnas_runtime::{run_sweep, SearchJob, SweepOptions, Telemetry};
use lightnas_space::{Architecture, SearchSpace};

use crate::DeviceSpec;

/// One searched point of a device's trade-off curve.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPoint {
    /// The latency constraint the search targeted (ms, device scale).
    pub target_ms: f64,
    /// The search seed.
    pub seed: u64,
    /// The derived architecture.
    pub architecture: Architecture,
    /// What the driving predictor claimed for the derived architecture.
    pub predicted_ms: f64,
    /// Deterministic roofline latency on the target device.
    pub true_ms: f64,
    /// Oracle top-1 under the full training protocol.
    pub top1: f64,
}

/// A device's searched points plus its Pareto-front indices.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceFront {
    /// The device the sweep targeted.
    pub device: String,
    /// All searched points, job order (targets-major, then seeds).
    pub points: Vec<FleetPoint>,
    /// Indices into `points` of the non-dominated `(true_ms, top1)` subset,
    /// sorted by latency.
    pub front: Vec<usize>,
}

impl DeviceFront {
    /// The non-dominated points, cheapest first.
    pub fn pareto_points(&self) -> impl Iterator<Item = &FleetPoint> {
        self.front.iter().map(|&i| &self.points[i])
    }
}

/// Runs per-device constrained-search sweeps over shared space/oracle.
#[derive(Debug, Clone, Copy)]
pub struct FleetSearch<'a> {
    space: &'a SearchSpace,
    oracle: &'a AccuracyOracle,
    config: SearchConfig,
    workers: usize,
}

impl<'a> FleetSearch<'a> {
    /// A new driver; `workers` is the scheduler pool per sweep (0/1 =
    /// serial — results are byte-identical at any worker count).
    pub fn new(
        space: &'a SearchSpace,
        oracle: &'a AccuracyOracle,
        config: SearchConfig,
        workers: usize,
    ) -> Self {
        Self {
            space,
            oracle,
            config,
            workers,
        }
    }

    /// Sweeps `targets × seeds` on one device, driven by `predictor`
    /// (per-device-trained or proxy-transferred — anything that predicts in
    /// the device's latency scale), and reduces to the device's front.
    /// Telemetry lines, when a sink is given, carry the device's name.
    ///
    /// # Panics
    ///
    /// Panics if any job fails (searches are deterministic and unbudgeted
    /// here, so a failure is a bug, not an operational condition).
    pub fn search_device<P: Predictor + Sync>(
        &self,
        spec: &DeviceSpec,
        predictor: &P,
        targets: &[f64],
        seeds: &[u64],
        telemetry: Option<&Telemetry>,
    ) -> DeviceFront {
        let jobs = SearchJob::grid(targets, seeds, self.config);
        let opts = SweepOptions {
            workers: self.workers,
            device: Some(spec.name.clone()),
            ..SweepOptions::default()
        };
        let report = run_sweep(self.oracle, predictor, &jobs, &opts, telemetry);
        let device = spec.device();
        let points: Vec<FleetPoint> = report
            .statuses
            .iter()
            .map(|s| {
                let r = s
                    .completed()
                    .unwrap_or_else(|| panic!("fleet job failed on {}: {s:?}", spec.name));
                let architecture = r.outcome.architecture.clone();
                FleetPoint {
                    target_ms: r.job.target,
                    seed: r.job.seed,
                    predicted_ms: predictor.predict(&architecture),
                    true_ms: device.true_latency_ms(&architecture, self.space),
                    top1: self
                        .oracle
                        .top1(&architecture, TrainingProtocol::full(), r.job.seed),
                    architecture,
                }
            })
            .collect();
        let coords: Vec<(f64, f64)> = points.iter().map(|p| (p.true_ms, p.top1)).collect();
        DeviceFront {
            device: spec.name.clone(),
            points,
            front: pareto_indices(&coords),
        }
    }
}

/// Evenly spaced latency targets for one device, derived from the
/// quantiles of its *deterministic* latency distribution over `samples`
/// random architectures: `n` targets at the 20th…80th percentiles.
///
/// Fleet devices differ in latency scale by an order of magnitude, so
/// absolute targets cannot be shared; quantile targets put every device's
/// sweep in the meat of its own trade-off curve. Deterministic in
/// `(device config, space, samples, seed)` — measurement noise is not
/// involved.
///
/// # Panics
///
/// Panics if `n == 0` or `samples < n`.
pub fn quantile_targets(
    device: &Xavier,
    space: &SearchSpace,
    n: usize,
    samples: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(n > 0, "need at least one target");
    assert!(samples >= n, "need at least as many samples as targets");
    let mut lat: Vec<f64> = (0..samples)
        .map(|i| {
            let arch = Architecture::random(space, seed.wrapping_add(i as u64));
            device.true_latency_ms(&arch, space)
        })
        .collect();
    lat.sort_by(f64::total_cmp);
    (0..n)
        .map(|i| {
            let q = if n == 1 {
                0.5
            } else {
                0.2 + 0.6 * i as f64 / (n - 1) as f64
            };
            let pos = q * (samples - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            lat[lo] * (1.0 - frac) + lat[hi] * frac
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceFleet;

    #[test]
    fn quantile_targets_are_increasing_and_in_range() {
        let fleet = DeviceFleet::standard();
        let space = SearchSpace::standard();
        for spec in fleet.devices() {
            let device = spec.device();
            let targets = quantile_targets(&device, &space, 5, 64, 0);
            assert_eq!(targets.len(), 5);
            for w in targets.windows(2) {
                assert!(
                    w[0] < w[1],
                    "{}: targets must increase: {targets:?}",
                    spec.name
                );
            }
            assert!(
                targets[0] > device.config().runtime_overhead_ms,
                "{}: target below overhead floor",
                spec.name
            );
        }
    }

    #[test]
    fn quantile_targets_are_deterministic() {
        let fleet = DeviceFleet::standard();
        let space = SearchSpace::standard();
        let device = fleet.proxy().device();
        let a = quantile_targets(&device, &space, 3, 32, 7);
        let b = quantile_targets(&device, &space, 3, 32, 7);
        assert_eq!(a, b);
    }
}
