//! The proxy→target transfer path: a deterministic monotone recalibration
//! of a proxy device's predictor, optionally composed with a few-shot
//! fine-tune of the proxy weights.
//!
//! "One Proxy Device Is Enough" observes that latency is strongly monotone
//! *across* devices: if architecture A is slower than B on the proxy, it is
//! almost always slower on the target too. So instead of sampling another
//! 10k-architecture corpus per target, the fleet measures a small budget
//! (≤ 100 samples) on the target and fits a **monotone piecewise-linear
//! map** from proxy predictions to target measurements — isotonic
//! regression by pool-adjacent-violators, then strictified so the map never
//! collapses ranks. The map is closed-form and deterministic: same pairs
//! in, same breakpoints out, bit for bit.
//!
//! When devices differ in *shape* (compute- vs memory-bound operators
//! reorder), rank transfer alone saturates; [`TransferOptions::fine_tune`]
//! first adapts the proxy MLP's weights on the same ≤ 100 samples (the
//! PR 5 fast training step makes this cheap) and the monotone map then
//! recalibrates the fine-tuned predictor's residual scale.

use lightnas_predictor::{BatchPredictor, MetricDataset, MlpPredictor, Predictor, TrainConfig};

/// Minimum separation enforced between consecutive fitted values, as a
/// fraction of the fitted range: keeps the map *strictly* increasing so it
/// preserves the proxy's ranking exactly (Kendall τ = 1 on training pairs).
const STRICT_EPS: f64 = 1e-9;

/// A strictly increasing piecewise-linear map `proxy prediction → target
/// metric`, fit by isotonic regression (pool-adjacent-violators).
///
/// Outside the fitted breakpoint range the map extrapolates linearly with
/// the slope of the nearest segment, so it stays strictly increasing on all
/// of ℝ — the property the search relies on: optimizing the mapped
/// prediction optimizes the proxy prediction's ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct MonotoneMap {
    /// Breakpoint inputs, strictly increasing.
    xs: Vec<f64>,
    /// Fitted outputs, strictly increasing.
    ys: Vec<f64>,
}

impl MonotoneMap {
    /// The identity map (`y = x`): wraps a predictor in a
    /// [`TransferredPredictor`] without recalibrating it — how the proxy
    /// device itself enters a fleet of transferred predictors with one
    /// uniform model type.
    pub fn identity() -> Self {
        Self::fit(&[(0.0, 0.0), (1.0, 1.0)])
    }

    /// Fits the map on `(proxy prediction, target measurement)` pairs.
    ///
    /// Duplicate inputs are pooled (weighted mean target) before the PAV
    /// pass; after PAV the fitted values are nudged apart by a relative
    /// epsilon so the map is strictly — not just weakly — increasing.
    ///
    /// # Panics
    ///
    /// Panics with fewer than 2 pairs of distinct finite inputs.
    pub fn fit(pairs: &[(f64, f64)]) -> Self {
        assert!(
            pairs.iter().all(|(x, y)| x.is_finite() && y.is_finite()),
            "monotone map requires finite pairs"
        );
        let mut sorted: Vec<(f64, f64)> = pairs.to_vec();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        // Pool exact-duplicate inputs: one (x, mean y, weight) per distinct x.
        let mut xs: Vec<f64> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        let mut ws: Vec<f64> = Vec::new();
        for &(x, y) in &sorted {
            if xs.last() == Some(&x) {
                let w = ws.last_mut().expect("parallel");
                let m = ys.last_mut().expect("parallel");
                *m += (y - *m) / (*w + 1.0);
                *w += 1.0;
            } else {
                xs.push(x);
                ys.push(y);
                ws.push(1.0);
            }
        }
        assert!(xs.len() >= 2, "monotone map needs >= 2 distinct inputs");
        // Pool-adjacent-violators: merge neighbouring blocks until the
        // weighted block means are non-decreasing. `blocks` holds
        // (last distinct-x index, weight, mean).
        let mut blocks: Vec<(usize, f64, f64)> = Vec::with_capacity(xs.len());
        for i in 0..xs.len() {
            blocks.push((i, ws[i], ys[i]));
            while blocks.len() >= 2 {
                let (_, w2, m2) = blocks[blocks.len() - 1];
                let (_, w1, m1) = blocks[blocks.len() - 2];
                if m1 <= m2 {
                    break;
                }
                let merged = (
                    blocks[blocks.len() - 1].0,
                    w1 + w2,
                    (w1 * m1 + w2 * m2) / (w1 + w2),
                );
                blocks.pop();
                *blocks.last_mut().expect("non-empty") = merged;
            }
        }
        // Expand the block means back to one fitted value per distinct x,
        // then strictify with a range-relative epsilon.
        let mut fitted = Vec::with_capacity(xs.len());
        let mut start = 0;
        for &(end, _, mean) in &blocks {
            for _ in start..=end {
                fitted.push(mean);
            }
            start = end + 1;
        }
        let span = (fitted[fitted.len() - 1] - fitted[0]).abs().max(1.0);
        let eps = span * STRICT_EPS;
        for i in 1..fitted.len() {
            if fitted[i] <= fitted[i - 1] {
                fitted[i] = fitted[i - 1] + eps;
            }
        }
        Self { xs, ys: fitted }
    }

    /// The fitted breakpoints `(input, output)`, strictly increasing in
    /// both coordinates.
    pub fn breakpoints(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.xs.iter().copied().zip(self.ys.iter().copied())
    }

    /// Evaluates the map: piecewise-linear between breakpoints, linear
    /// extrapolation (nearest segment's slope) outside them.
    pub fn apply(&self, x: f64) -> f64 {
        let n = self.xs.len();
        let seg = match self.xs.binary_search_by(|p| p.total_cmp(&x)) {
            Ok(i) => return self.ys[i],
            // Clamp to the edge segments for extrapolation.
            Err(i) => i.clamp(1, n - 1),
        };
        let (x0, x1) = (self.xs[seg - 1], self.xs[seg]);
        let (y0, y1) = (self.ys[seg - 1], self.ys[seg]);
        y0 + (x - x0) * (y1 - y0) / (x1 - x0)
    }

    /// The map's slope at `x` (the segment slope; edge-segment slope
    /// outside the breakpoint range). Always positive — the chain-rule
    /// factor for [`TransferredPredictor`]'s gradients.
    pub fn slope_at(&self, x: f64) -> f64 {
        let n = self.xs.len();
        let seg = match self.xs.binary_search_by(|p| p.total_cmp(&x)) {
            Ok(i) => i.clamp(1, n - 1),
            Err(i) => i.clamp(1, n - 1),
        };
        (self.ys[seg] - self.ys[seg - 1]) / (self.xs[seg] - self.xs[seg - 1])
    }
}

/// How a proxy predictor is adapted to a target device.
#[derive(Debug, Clone)]
pub struct TransferOptions {
    /// Maximum target-device samples the transfer may consume (the paper
    /// protocol measures 10,000 per device; the fleet budget is ≤ 100).
    pub budget: usize,
    /// When set, first fine-tune the proxy MLP's weights on the budget
    /// samples ([`MlpPredictor::fine_tune`]); the monotone map then
    /// recalibrates the fine-tuned predictor. `None` maps the raw proxy.
    pub fine_tune: Option<TrainConfig>,
}

impl Default for TransferOptions {
    /// The calibrated few-shot recipe: a *short, gentle* fine-tune. With
    /// only 100 target samples the proxy's weights are the regularizer —
    /// long or aggressive fine-tunes overfit the budget fold and transfer
    /// *worse* (measured in the `fleet_pareto` exhibit's grid: ratios
    /// degrade monotonically with epochs beyond ~100 at lr 1e-3).
    fn default() -> Self {
        Self {
            budget: 100,
            fine_tune: Some(TrainConfig {
                epochs: 100,
                batch_size: 32,
                lr: 3e-4,
                seed: 0,
            }),
        }
    }
}

/// A proxy predictor composed with a fitted [`MonotoneMap`]: predicts in
/// the *target* device's latency scale while ranking architectures exactly
/// as its base predictor does.
#[derive(Debug, Clone)]
pub struct TransferredPredictor<P> {
    base: P,
    map: MonotoneMap,
}

impl<P: Predictor> TransferredPredictor<P> {
    /// Composes an already-fitted map over a base predictor.
    pub fn new(base: P, map: MonotoneMap) -> Self {
        Self { base, map }
    }

    /// The base predictor.
    pub fn base(&self) -> &P {
        &self.base
    }

    /// The fitted recalibration map.
    pub fn map(&self) -> &MonotoneMap {
        &self.map
    }
}

impl<P: Predictor> Predictor for TransferredPredictor<P> {
    fn predict_encoding(&self, encoding: &[f32]) -> f64 {
        self.map.apply(self.base.predict_encoding(encoding))
    }

    fn gradient(&self, encoding: &[f32]) -> Vec<f32> {
        // Chain rule through the piecewise-linear map: the segment slope
        // scales the base gradient.
        let slope = self.map.slope_at(self.base.predict_encoding(encoding)) as f32;
        self.base
            .gradient(encoding)
            .into_iter()
            .map(|g| g * slope)
            .collect()
    }
}

impl<P: Predictor> BatchPredictor for TransferredPredictor<P> {}

/// Adapts `proxy` to the device that produced `target_samples`: takes the
/// first [`TransferOptions::budget`] rows, optionally fine-tunes the proxy
/// weights on them, and fits the monotone recalibration map from the
/// (possibly fine-tuned) predictions to the measured targets.
///
/// Fully deterministic: prefix budget, seeded fine-tune, closed-form map.
///
/// # Panics
///
/// Panics if the budget cuts fewer than 2 samples.
pub fn transfer_predictor(
    proxy: &MlpPredictor,
    target_samples: &MetricDataset,
    opts: &TransferOptions,
) -> TransferredPredictor<MlpPredictor> {
    let fold = target_samples.take(opts.budget);
    let base = match &opts.fine_tune {
        Some(cfg) => proxy.fine_tune(&fold, cfg),
        None => proxy.clone(),
    };
    let pairs: Vec<(f64, f64)> = base
        .predict_all(&fold)
        .into_iter()
        .zip(fold.targets().iter().copied())
        .collect();
    TransferredPredictor::new(base, MonotoneMap::fit(&pairs))
}

/// Root-mean-square error of any [`Predictor`] over a dataset, in the
/// metric's unit (the trait-level counterpart of [`MlpPredictor::rmse`]).
///
/// # Panics
///
/// Panics on an empty dataset.
pub fn predictor_rmse<P: Predictor>(predictor: &P, data: &MetricDataset) -> f64 {
    assert!(!data.is_empty(), "rmse over empty dataset");
    let se: f64 = data
        .encodings()
        .iter()
        .zip(data.targets())
        .map(|(e, &y)| {
            let p = predictor.predict_encoding(e);
            (p - y) * (p - y)
        })
        .sum();
    (se / data.len() as f64).sqrt()
}

/// Kendall rank correlation τ between two equal-length sequences: the
/// normalized excess of concordant over discordant pairs (ties count as
/// neither). 1.0 means identical ranking.
///
/// # Panics
///
/// Panics on length mismatch or fewer than 2 items.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "kendall_tau length mismatch");
    assert!(a.len() >= 2, "kendall_tau needs >= 2 items");
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..a.len() {
        for j in i + 1..a.len() {
            let da = a[j] - a[i];
            let db = b[j] - b[i];
            let s = da * db;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (a.len() * (a.len() - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Spearman rank correlation ρ between two equal-length sequences
/// (Pearson correlation over average-tie ranks).
///
/// # Panics
///
/// Panics on length mismatch or fewer than 2 items.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "spearman length mismatch");
    assert!(a.len() >= 2, "spearman needs >= 2 items");
    let ra = ranks(a);
    let rb = ranks(b);
    let n = ra.len() as f64;
    let (ma, mb) = (ra.iter().sum::<f64>() / n, rb.iter().sum::<f64>() / n);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va * vb).sqrt()
}

/// Average-tie ranks of a sequence (1-based).
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&i, &j| values[i].total_cmp(&values[j]));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_a_monotone_relation_exactly() {
        let pairs: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 2.0 * i as f64 + 5.0)).collect();
        let map = MonotoneMap::fit(&pairs);
        for &(x, y) in &pairs {
            assert!((map.apply(x) - y).abs() < 1e-12);
        }
        // Interpolation and extrapolation follow the line.
        assert!((map.apply(3.5) - 12.0).abs() < 1e-12);
        assert!((map.apply(-2.0) - 1.0).abs() < 1e-12);
        assert!((map.apply(25.0) - 55.0).abs() < 1e-12);
        assert!((map.slope_at(7.3) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pav_pools_violators_to_the_weighted_mean() {
        // A decreasing middle: isotonic fit must pool it.
        let pairs = [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0), (3.0, 4.0)];
        let map = MonotoneMap::fit(&pairs);
        // Block {3.0, 2.0} pools to 2.5 at both x=1 and x=2 (then the
        // strictness epsilon separates them infinitesimally).
        assert!((map.apply(1.0) - 2.5).abs() < 1e-6);
        assert!((map.apply(2.0) - 2.5).abs() < 1e-6);
        assert!(map.apply(2.0) > map.apply(1.0), "strictly increasing");
    }

    #[test]
    fn duplicate_inputs_are_pooled_not_rejected() {
        let pairs = [(1.0, 2.0), (1.0, 4.0), (2.0, 5.0)];
        let map = MonotoneMap::fit(&pairs);
        assert!((map.apply(1.0) - 3.0).abs() < 1e-9, "mean of duplicates");
        assert!((map.apply(2.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn map_is_strictly_increasing_even_on_anti_monotone_data() {
        let pairs: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, -(i as f64))).collect();
        let map = MonotoneMap::fit(&pairs);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..10 {
            let y = map.apply(i as f64);
            assert!(y > prev, "x={i}: {y} <= {prev}");
            prev = y;
        }
    }

    #[test]
    fn fit_is_deterministic_under_input_order() {
        let mut pairs: Vec<(f64, f64)> = (0..30)
            .map(|i| ((i * 7 % 30) as f64, (i % 5) as f64))
            .collect();
        let a = MonotoneMap::fit(&pairs);
        pairs.reverse();
        let b = MonotoneMap::fit(&pairs);
        assert_eq!(a, b);
    }

    #[test]
    fn rank_statistics_agree_on_clean_orderings() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let up = [10.0, 20.0, 30.0, 40.0, 50.0];
        let down = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&a, &up) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&a, &down) + 1.0).abs() < 1e-12);
        assert!((spearman(&a, &up) - 1.0).abs() < 1e-12);
        assert!((spearman(&a, &down) + 1.0).abs() < 1e-12);
        // One adjacent swap on five items: τ = 0.8, ρ = 0.9.
        let swapped = [1.0, 2.0, 4.0, 3.0, 5.0];
        assert!((kendall_tau(&a, &swapped) - 0.8).abs() < 1e-12);
        assert!((spearman(&a, &swapped) - 0.9).abs() < 1e-12);
    }
}
