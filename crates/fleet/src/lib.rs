//! **lightnas-fleet** — the device-fleet layer of the LightNAS
//! reproduction: "search once, deploy everywhere".
//!
//! The paper searches under a latency constraint for *one* embedded target
//! (a Jetson AGX Xavier). Real deployments ship to a fleet — phones, edge
//! accelerators, several Jetson generations, servers — and profiling a
//! 10,000-architecture corpus per device is exactly the cost the paper set
//! out to avoid. This crate closes that gap in three layers:
//!
//! * [`DeviceSpec`] / [`DeviceFleet`] — a registry of named roofline
//!   calibrations over the existing `lightnas-hw` simulator, five device
//!   classes strong, with per-device measurement-noise salting.
//! * [`MonotoneMap`] / [`transfer_predictor`] — the proxy-transfer path:
//!   adapt the proxy device's MLP predictor to a target from ≤ 100 target
//!   samples (optional few-shot fine-tune, then a deterministic isotonic
//!   piecewise-linear recalibration that preserves the proxy's ranking).
//! * [`FleetSearch`] — one λ-driven constrained search per (device,
//!   target) pair through the runtime's scheduler/supervisor machinery,
//!   reduced to a per-device Pareto front over (true latency, top-1).
//! * [`FleetAdaptation`] — fleet-wide drift survival: one deferred
//!   adaptation loop per device over a shared bounded retrain pool, with
//!   correlated-drift warm starts through the transfer path and a typed
//!   cross-device audit ([`FleetAdaptEvent`]).
//!
//! The `fleet_pareto` exhibit (`lightnas-bench`) narrates the whole story
//! and asserts its acceptance bars: transfer RMSE ≤ 1.5× the
//! per-device-trained predictor on every non-proxy target, and searched
//! architectures whose true-latency ranking agrees (ρ ≥ 0.9) between the
//! transferred and the per-device-trained search.

mod adapt;
mod search;
mod spec;
mod transfer;

pub use adapt::{
    fleet_audit_is_well_formed, ColdTrainer, FleetAdaptEvent, FleetAdaptOptions, FleetAdaptation,
    WarmTrainer,
};
pub use search::{quantile_targets, DeviceFront, FleetPoint, FleetSearch};
pub use spec::{DeviceClass, DeviceFleet, DeviceSpec};
pub use transfer::{
    kendall_tau, predictor_rmse, spearman, transfer_predictor, MonotoneMap, TransferOptions,
    TransferredPredictor,
};
