//! Fleet-wide drift adaptation: one adaptation loop per device, one
//! bounded retrain pool, cross-device warm starts.
//!
//! PR 7's [`AdaptationController`] keeps a *single* device honest. A fleet
//! breaks that design in two ways:
//!
//! * **Drift is correlated.** A thermal event on the Xavier proxy predicts
//!   one on the phone-class target (the same physics, the same datacenter,
//!   the same DVFS policy push). Waiting for each device to independently
//!   re-derive the same conclusion wastes exactly the evidence the
//!   proxy→target structure of One-Proxy-Device-Is-Enough provides.
//! * **Retraining is a shared resource.** N devices flagging at once must
//!   not spawn N simultaneous retrains (the thundering herd); they queue
//!   against a bounded worker pool and are admitted under a retrain budget.
//!
//! [`FleetAdaptation`] owns one *deferred* controller per device: a
//! staleness flag parks the device in `awaiting_retrain` instead of
//! training inline, and this layer snapshots the device's sample window,
//! trains the shadow on the shared [`JobScheduler`] pool, and hands it back
//! through `install_shadow`. Everything downstream of the handoff — paired
//! validation, promotion, probation, rollback — is the unchanged PR 7
//! machinery, per device: **a shadow still never serves before its
//! verdict, and one device's rollback never touches another's slot.**
//!
//! Warm starts are an *evidence* transfer, not a gate bypass. When device S
//! flags (or promotes a corrected model), each correlated target T gets a
//! warm hint: T's retrain may be requested **early**, as soon as T's own
//! windowed-RMSE ratio exceeds [`FleetAdaptOptions::warm_ratio_bar`] — a
//! lower bar than T's own staleness flag, justified by S's corroborating
//! flag — and T's shadow is fit by the *warm trainer* (canonically the
//! PR 6 transfer path: S's adapted model through a refit [`MonotoneMap`],
//! with T's window as the recalibration fold) instead of a cold fine-tune.
//! A stationary target never crosses even the lowered bar, and every warm
//! candidate must still win its paired validation on the target's own live
//! traffic before serving.
//!
//! Every cross-device decision is a typed [`FleetAdaptEvent`]; the
//! per-device [`AdaptEvent`] streams are folded into the same trail (tagged
//! with their device), so [`fleet_audit_is_well_formed`] can check that
//! each device's projected audit obeys the single-device invariant *and*
//! that pool admissions never exceed queue entries. All control flow is a
//! pure function of the ingested sample sequence — the fleet soak
//! byte-compares two same-seed runs.
//!
//! [`MonotoneMap`]: crate::MonotoneMap

use std::collections::VecDeque;

use lightnas_predictor::BatchPredictor;
use lightnas_runtime::{events, Field, JobScheduler, Telemetry};
use lightnas_serve::{
    audit_is_well_formed, AdaptConfig, AdaptEvent, AdaptationController, Clock, DeviceGeneration,
    ModelSlot,
};

fn us(d: std::time::Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// Fleet-level adaptation policy.
#[derive(Debug, Clone)]
pub struct FleetAdaptOptions {
    /// Per-device detection/validation thresholds (shared by all devices).
    pub adapt: AdaptConfig,
    /// Retrain-pool budget: at most this many retrains are admitted per
    /// tick (and run concurrently on the pool). Clamped to ≥ 1.
    pub max_concurrent_retrains: usize,
    /// Directed correlation pairs `(source, target)` by fleet index: a
    /// flag or promotion on `source` arms a warm start on `target`.
    pub correlated: Vec<(usize, usize)>,
    /// Master switch for warm starts (off = every retrain is cold; the
    /// soak's control arm).
    pub warm_starts: bool,
    /// Early-trigger bar for a warm-hinted device: its retrain is
    /// requested once its own windowed-RMSE ratio reaches this, without
    /// waiting for the full [`AdaptConfig::rmse_ratio_bar`]. Must sit
    /// below the flag bar to buy any head start. Default: 1.15.
    pub warm_ratio_bar: f64,
}

impl Default for FleetAdaptOptions {
    fn default() -> Self {
        Self {
            adapt: AdaptConfig::default(),
            max_concurrent_retrains: 2,
            correlated: Vec::new(),
            warm_starts: true,
            warm_ratio_bar: 1.15,
        }
    }
}

/// One entry in the cross-device audit trail.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetAdaptEvent {
    /// A per-device [`AdaptEvent`], tagged with its fleet index. The fleet
    /// folds every controller's audit into this trail in tick order, so
    /// projecting on `device` recovers each device's full history.
    Device {
        /// Fleet index of the device the event belongs to.
        device: usize,
        /// Fleet tick at which the fleet absorbed the event.
        at_tick: u64,
        /// The device-level event.
        event: AdaptEvent,
    },
    /// `source`'s flag/promotion armed a warm start on `target`.
    WarmStartArmed {
        /// Device whose evidence armed the hint.
        source: usize,
        /// Device that will retrain warm (and possibly early).
        target: usize,
        /// Fleet tick of the arming.
        at_tick: u64,
    },
    /// A device joined the retrain-pool queue.
    RetrainQueued {
        /// Queued device.
        device: usize,
        /// Fleet tick it queued at.
        at_tick: u64,
    },
    /// The pool admitted a queued device's retrain.
    RetrainAdmitted {
        /// Admitted device.
        device: usize,
        /// Fleet tick of admission.
        at_tick: u64,
        /// Ticks spent waiting in the queue.
        waited_ticks: u64,
    },
    /// The pool admitted nothing this tick despite a non-empty queue
    /// (starved by chaos).
    PoolStarved {
        /// Fleet tick of the starvation.
        at_tick: u64,
        /// Devices left waiting.
        queued: usize,
    },
}

/// Checks the cross-device audit invariants:
///
/// 1. each device's projected [`AdaptEvent`] stream satisfies the
///    single-device [`audit_is_well_formed`] contract (no generation ever
///    serves without a passing verdict, no rollback without a promotion);
/// 2. per device, pool admissions never exceed queue entries (nothing
///    trains that never queued).
pub fn fleet_audit_is_well_formed(devices: usize, audit: &[FleetAdaptEvent]) -> bool {
    let mut queued = vec![0u64; devices];
    let mut admitted = vec![0u64; devices];
    let mut per_device: Vec<Vec<AdaptEvent>> = vec![Vec::new(); devices];
    for entry in audit {
        match entry {
            FleetAdaptEvent::Device { device, event, .. } => {
                if *device >= devices {
                    return false;
                }
                per_device[*device].push(event.clone());
            }
            FleetAdaptEvent::RetrainQueued { device, .. } => {
                if *device >= devices {
                    return false;
                }
                queued[*device] += 1;
            }
            FleetAdaptEvent::RetrainAdmitted { device, .. } => {
                if *device >= devices || admitted[*device] >= queued[*device] {
                    return false;
                }
                admitted[*device] += 1;
            }
            FleetAdaptEvent::WarmStartArmed { source, target, .. } => {
                if *source >= devices || *target >= devices {
                    return false;
                }
            }
            FleetAdaptEvent::PoolStarved { .. } => {}
        }
    }
    per_device.iter().all(|a| audit_is_well_formed(a))
}

/// The cold trainer: `(device, incumbent, window encodings, window
/// observations) → shadow`. Canonically a fine-tune of the incumbent on
/// the device's own recent window.
pub type ColdTrainer<'a, P> = Box<dyn Fn(usize, &P, &[Vec<f32>], &[f64]) -> P + Sync + 'a>;

/// The warm trainer: `(source device, source's current model, target
/// device, target incumbent, window encodings, window observations) →
/// shadow`. Canonically the PR 6 transfer path: the source's *already
/// corrected* model recalibrated onto the target's window.
pub type WarmTrainer<'a, P> =
    Box<dyn Fn(usize, &P, usize, &P, &[Vec<f32>], &[f64]) -> P + Sync + 'a>;

/// One [`AdaptationController`] per fleet device, a shared bounded retrain
/// pool, and the warm-start wiring between them. See the module docs for
/// the control loop; drive it with [`ingest_tick`](Self::ingest_tick).
pub struct FleetAdaptation<'a, P: BatchPredictor + Clone + Send + Sync> {
    controllers: Vec<AdaptationController<'a, P>>,
    slots: &'a [ModelSlot<P>],
    names: Vec<String>,
    clock: &'a dyn Clock,
    options: FleetAdaptOptions,
    pool: JobScheduler,
    cold: ColdTrainer<'a, P>,
    warm: Option<WarmTrainer<'a, P>>,
    telemetry: Option<&'a Telemetry>,
    audit: Vec<FleetAdaptEvent>,
    /// Absolute per-device audit cursor: events absorbed so far, counting
    /// ones the controller itself has since dropped at its cap.
    audit_seen: Vec<u64>,
    queue: VecDeque<usize>,
    in_queue: Vec<bool>,
    queued_at: Vec<u64>,
    /// Armed warm hint per device: the source whose evidence armed it.
    warm_from: Vec<Option<usize>>,
    last_generation: Vec<u64>,
    samples_since_swap: Vec<u64>,
    tick: u64,
    starved_until: u64,
    max_wait: u64,
}

impl<'a, P: BatchPredictor + Clone + Send + Sync> FleetAdaptation<'a, P> {
    /// A fleet over `slots` (one serving slot per device, caller-owned),
    /// retraining cold with `cold` on a pool of
    /// [`FleetAdaptOptions::max_concurrent_retrains`] workers.
    pub fn new(
        slots: &'a [ModelSlot<P>],
        names: Vec<String>,
        clock: &'a dyn Clock,
        options: FleetAdaptOptions,
        cold: impl Fn(usize, &P, &[Vec<f32>], &[f64]) -> P + Sync + 'a,
    ) -> Self {
        assert_eq!(slots.len(), names.len(), "one name per device slot");
        let n = slots.len();
        let controllers = slots
            .iter()
            .map(|slot| AdaptationController::deferred(slot, clock, options.adapt.clone()))
            .collect();
        let pool = JobScheduler::new(options.max_concurrent_retrains.max(1));
        Self {
            controllers,
            slots,
            names,
            clock,
            options,
            pool,
            cold: Box::new(cold),
            warm: None,
            telemetry: None,
            audit: Vec::new(),
            audit_seen: vec![0; n],
            queue: VecDeque::new(),
            in_queue: vec![false; n],
            queued_at: vec![0; n],
            warm_from: vec![None; n],
            last_generation: vec![0; n],
            samples_since_swap: vec![0; n],
            tick: 0,
            starved_until: 0,
            max_wait: 0,
        }
    }

    /// Wires the warm trainer — without one, armed hints still lower the
    /// trigger bar but the shadow is fit cold.
    pub fn with_warm_trainer(
        mut self,
        warm: impl Fn(usize, &P, usize, &P, &[Vec<f32>], &[f64]) -> P + Sync + 'a,
    ) -> Self {
        self.warm = Some(Box::new(warm));
        self
    }

    /// Narrates device-tagged `adapt_*` and `fleet_*` telemetry events.
    /// (Per-device controllers stay silent; the fleet re-emits their audit
    /// events with the device index attached, keeping one deterministic
    /// interleaving.)
    pub fn with_telemetry(mut self, telemetry: &'a Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Pre-calibrates each device's healthy live-residual baseline
    /// (index-aligned with the slots).
    pub fn with_baselines(mut self, baselines: &[f64]) -> Self {
        assert_eq!(baselines.len(), self.controllers.len());
        self.controllers = self
            .controllers
            .drain(..)
            .zip(baselines)
            .map(|(c, &b)| c.with_baseline_rmse(b))
            .collect();
        self
    }

    /// Devices in the fleet.
    pub fn len(&self) -> usize {
        self.controllers.len()
    }

    /// `true` for an empty fleet.
    pub fn is_empty(&self) -> bool {
        self.controllers.is_empty()
    }

    /// Fleet ticks ingested so far.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// The cross-device audit trail (see [`fleet_audit_is_well_formed`]).
    pub fn audit(&self) -> &[FleetAdaptEvent] {
        &self.audit
    }

    /// Device `i`'s controller, for inspection.
    pub fn controller(&self, i: usize) -> &AdaptationController<'a, P> {
        &self.controllers[i]
    }

    /// Devices currently waiting for pool admission.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The longest any retrain has waited between queueing and admission,
    /// in ticks — the bounded-wait quantity the no-deadlock property pins.
    pub fn max_admission_wait(&self) -> u64 {
        self.max_wait
    }

    /// Chaos `PoolStarvation`: the pool admits nothing for the next
    /// `ticks` ticks. Queued devices keep waiting (and keep serving their
    /// incumbents); nothing is dropped.
    pub fn starve_pool(&mut self, ticks: u64) {
        self.starved_until = self.tick + ticks;
    }

    /// Chaos `BadDeploy` against one device: its *next* promotion deploys
    /// corrupted. Other devices' promotions are untouched — the
    /// independence the fleet soak proves.
    pub fn arm_bad_deploy(&mut self, device: usize, bias_ms: f64) {
        self.controllers[device].arm_bad_deploy(bias_ms);
    }

    /// The per-device generation/staleness rollup for a fleet-level
    /// [`HealthSnapshot`](lightnas_serve::HealthSnapshot) (its `fleet`
    /// field).
    pub fn device_generations(&self) -> Vec<DeviceGeneration> {
        (0..self.len())
            .map(|i| DeviceGeneration {
                device: self.names[i].clone(),
                model_generation: self.slots[i].generation(),
                staleness_samples: self.samples_since_swap[i],
            })
            .collect()
    }

    fn emit(&self, event: &str, fields: &[(&str, Field)]) {
        if let Some(t) = self.telemetry {
            let mut all = vec![("t_us", Field::U(us(self.clock.now())))];
            all.extend_from_slice(fields);
            t.emit(event, &all);
        }
    }

    fn emit_device_event(&self, device: usize, event: &AdaptEvent) {
        let d = ("device", Field::U(device as u64));
        match event {
            AdaptEvent::StalenessDetected {
                at_sample,
                rmse_ratio,
                spearman,
            } => self.emit(
                events::ADAPT_STALENESS,
                &[
                    d,
                    ("sample", Field::U(*at_sample)),
                    ("rmse_ratio", Field::F(*rmse_ratio)),
                    ("spearman", Field::F(*spearman)),
                ],
            ),
            AdaptEvent::RetrainStarted { at_sample, window } => self.emit(
                events::ADAPT_RETRAIN,
                &[
                    d,
                    ("sample", Field::U(*at_sample)),
                    ("window", Field::U(*window as u64)),
                ],
            ),
            AdaptEvent::ShadowValidated {
                at_sample,
                shadow_rmse,
                incumbent_rmse,
                passed,
            } => self.emit(
                events::ADAPT_VALIDATED,
                &[
                    d,
                    ("sample", Field::U(*at_sample)),
                    ("shadow_rmse", Field::F(*shadow_rmse)),
                    ("incumbent_rmse", Field::F(*incumbent_rmse)),
                    ("passed", Field::B(*passed)),
                ],
            ),
            AdaptEvent::Promoted {
                at_sample,
                generation,
            } => self.emit(
                events::ADAPT_PROMOTED,
                &[
                    d,
                    ("sample", Field::U(*at_sample)),
                    ("generation", Field::U(*generation)),
                ],
            ),
            AdaptEvent::RolledBack {
                at_sample,
                demoted,
                generation,
                probation_rmse,
                validated_rmse,
            } => self.emit(
                events::ADAPT_ROLLBACK,
                &[
                    d,
                    ("sample", Field::U(*at_sample)),
                    ("demoted", Field::U(*demoted)),
                    ("generation", Field::U(*generation)),
                    ("probation_rmse", Field::F(*probation_rmse)),
                    ("validated_rmse", Field::F(*validated_rmse)),
                ],
            ),
        }
    }

    /// Folds each controller's newly appended audit events into the fleet
    /// trail (device-tagged, registry order) and returns, per device,
    /// whether it flagged and whether it promoted in this batch.
    fn absorb_audits(&mut self) -> (Vec<bool>, Vec<bool>) {
        let n = self.len();
        let (mut flagged, mut promoted) = (vec![false; n], vec![false; n]);
        for i in 0..n {
            let ctl = &self.controllers[i];
            let total = ctl.audit_dropped() + ctl.audit().len() as u64;
            let new = (total - self.audit_seen[i]) as usize;
            debug_assert!(
                new <= ctl.audit().len(),
                "audit events dropped before the fleet absorbed them"
            );
            let fresh: Vec<AdaptEvent> = ctl.audit()[ctl.audit().len() - new..].to_vec();
            self.audit_seen[i] = total;
            for event in fresh {
                match &event {
                    AdaptEvent::StalenessDetected { .. } => flagged[i] = true,
                    AdaptEvent::Promoted { .. } => promoted[i] = true,
                    _ => {}
                }
                self.emit_device_event(i, &event);
                self.audit.push(FleetAdaptEvent::Device {
                    device: i,
                    at_tick: self.tick,
                    event,
                });
            }
        }
        (flagged, promoted)
    }

    /// Ingests one fleet tick: one live `(encoding, observed latency)`
    /// sample per device, index-aligned with the slots. Returns each
    /// device's served prediction.
    ///
    /// Order within the tick is fixed (and is what the same-seed soak
    /// byte-compares): every device ingests, warm hints arm off fresh
    /// flags/promotions, hinted devices early-trigger, awaiting devices
    /// queue, then the pool admits up to the budget in FIFO order, trains
    /// the admitted shadows concurrently, and installs them in admission
    /// order.
    pub fn ingest_tick(&mut self, samples: &[(Vec<f32>, f64)]) -> Vec<f64> {
        assert_eq!(samples.len(), self.len(), "one sample per device");
        let served: Vec<f64> = samples
            .iter()
            .enumerate()
            .map(|(i, (enc, obs))| self.controllers[i].ingest(enc, *obs))
            .collect();
        for i in 0..self.len() {
            self.samples_since_swap[i] += 1;
            let gen = self.slots[i].generation();
            if gen != self.last_generation[i] {
                self.last_generation[i] = gen;
                self.samples_since_swap[i] = 0;
            }
        }
        let (flagged, promoted) = self.absorb_audits();

        // Arm warm hints: a source's flag (it sees drift) or promotion (it
        // has a corrected model worth transferring) is evidence for every
        // correlated target that is not already mid-cycle.
        if self.options.warm_starts {
            let pairs = self.options.correlated.clone();
            for (source, target) in pairs {
                if (flagged[source] || promoted[source])
                    && self.warm_from[target].is_none()
                    && !self.in_queue[target]
                    && !self.controllers[target].awaiting_retrain()
                {
                    self.warm_from[target] = Some(source);
                    self.audit.push(FleetAdaptEvent::WarmStartArmed {
                        source,
                        target,
                        at_tick: self.tick,
                    });
                    self.emit(
                        events::FLEET_WARM_START,
                        &[
                            ("source", Field::U(source as u64)),
                            ("target", Field::U(target as u64)),
                        ],
                    );
                }
            }
        }

        // Early trigger: a hinted device retrains as soon as its own window
        // shows elevated (not yet flag-worthy) error. The hint never
        // triggers a device whose window looks healthy — that is what keeps
        // bystanders out of the pool.
        for i in 0..self.len() {
            if self.warm_from[i].is_some()
                && !self.controllers[i].awaiting_retrain()
                && self.controllers[i]
                    .staleness_ratio()
                    .is_some_and(|r| r >= self.options.warm_ratio_bar)
            {
                self.controllers[i].request_retrain();
            }
        }

        // Queue every freshly parked device, FIFO.
        for i in 0..self.len() {
            if self.controllers[i].awaiting_retrain() && !self.in_queue[i] {
                self.in_queue[i] = true;
                self.queued_at[i] = self.tick;
                self.queue.push_back(i);
                self.audit.push(FleetAdaptEvent::RetrainQueued {
                    device: i,
                    at_tick: self.tick,
                });
                self.emit(
                    events::FLEET_RETRAIN_QUEUED,
                    &[
                        ("device", Field::U(i as u64)),
                        ("queued", Field::U(self.queue.len() as u64)),
                    ],
                );
            }
        }

        // Pool round: admit up to the budget (zero while starved), snapshot
        // the admitted windows, train concurrently, install in admission
        // order. Controllers keep serving their incumbents throughout.
        let budget = if self.tick < self.starved_until {
            0
        } else {
            self.options.max_concurrent_retrains.max(1)
        };
        if budget == 0 && !self.queue.is_empty() {
            self.audit.push(FleetAdaptEvent::PoolStarved {
                at_tick: self.tick,
                queued: self.queue.len(),
            });
            self.emit(
                events::FLEET_POOL_STARVED,
                &[("queued", Field::U(self.queue.len() as u64))],
            );
        } else if !self.queue.is_empty() {
            struct Job<P> {
                device: usize,
                incumbent: P,
                encs: Vec<Vec<f32>>,
                obs: Vec<f64>,
                warm: Option<(usize, P)>,
            }
            let mut jobs: Vec<Job<P>> = Vec::new();
            while jobs.len() < budget {
                let Some(device) = self.queue.pop_front() else {
                    break;
                };
                let (encs, obs) = self.controllers[device].retrain_window();
                let warm = self.warm_from[device].take().and_then(|source| {
                    self.warm.as_ref()?;
                    Some((source, self.slots[source].with_current(P::clone)))
                });
                jobs.push(Job {
                    device,
                    incumbent: self.slots[device].with_current(P::clone),
                    encs,
                    obs,
                    warm,
                });
            }
            let shadows: Vec<P> = self.pool.run(jobs.len(), |k| {
                let job = &jobs[k];
                match (&job.warm, &self.warm) {
                    (Some((source, source_model)), Some(warm)) => warm(
                        *source,
                        source_model,
                        job.device,
                        &job.incumbent,
                        &job.encs,
                        &job.obs,
                    ),
                    _ => (self.cold)(job.device, &job.incumbent, &job.encs, &job.obs),
                }
            });
            for (job, shadow) in jobs.iter().zip(shadows) {
                let device = job.device;
                self.controllers[device].install_shadow(shadow);
                self.in_queue[device] = false;
                let waited_ticks = self.tick - self.queued_at[device];
                self.max_wait = self.max_wait.max(waited_ticks);
                self.audit.push(FleetAdaptEvent::RetrainAdmitted {
                    device,
                    at_tick: self.tick,
                    waited_ticks,
                });
                self.emit(
                    events::FLEET_RETRAIN_ADMITTED,
                    &[
                        ("device", Field::U(device as u64)),
                        ("waited_ticks", Field::U(waited_ticks)),
                    ],
                );
            }
            // install_shadow audited RetrainStarted on each admitted device.
            self.absorb_audits();
        }
        self.tick += 1;
        served
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightnas_predictor::Predictor;
    use lightnas_serve::VirtualClock;

    /// The same linear fake the serve-side tests use: `scale * enc[0]`,
    /// refit by least squares.
    #[derive(Debug, Clone)]
    struct LinearModel {
        scale: f64,
    }
    impl Predictor for LinearModel {
        fn predict_encoding(&self, e: &[f32]) -> f64 {
            self.scale * f64::from(e[0])
        }
        fn gradient(&self, e: &[f32]) -> Vec<f32> {
            vec![0.0; e.len()]
        }
    }
    impl BatchPredictor for LinearModel {}

    fn refit(encs: &[Vec<f32>], obs: &[f64]) -> LinearModel {
        let (mut num, mut den) = (0.0, 0.0);
        for (e, o) in encs.iter().zip(obs) {
            let x = f64::from(e[0]);
            num += x * o;
            den += x * x;
        }
        LinearModel { scale: num / den }
    }

    fn quick_options() -> FleetAdaptOptions {
        FleetAdaptOptions {
            adapt: AdaptConfig {
                window: 16,
                min_samples: 8,
                rmse_ratio_bar: 1.5,
                spearman_bar: 0.5,
                promote_margin: 0.95,
                validation_pairs: 8,
                probation: 8,
                rollback_ratio: 1.4,
                cooldown: 8,
            },
            max_concurrent_retrains: 1,
            correlated: vec![(0, 1)],
            warm_starts: true,
            warm_ratio_bar: 1.15,
        }
    }

    fn enc(i: u64) -> Vec<f32> {
        let x = 1.0 + (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40) as f32 / 16_777_216.0;
        vec![x, 0.0]
    }

    #[test]
    fn correlated_drift_adapts_both_devices_through_one_worker_pool() {
        let clock = VirtualClock::new();
        let slots = [
            ModelSlot::new(LinearModel { scale: 10.0 }),
            ModelSlot::new(LinearModel { scale: 20.0 }),
            ModelSlot::new(LinearModel { scale: 30.0 }),
        ];
        let mut fleet = FleetAdaptation::new(
            &slots,
            vec!["a".into(), "b".into(), "c".into()],
            &clock,
            quick_options(),
            |_d, _m: &LinearModel, encs, obs| refit(encs, obs),
        )
        .with_warm_trainer(
            |_s, source: &LinearModel, _t, incumbent: &LinearModel, _e, _o| {
                // Transfer the source's corrected drift factor onto the target.
                LinearModel {
                    scale: incumbent.scale * (source.scale / 10.0),
                }
            },
        );
        let scale_at = |i: usize, t: u64| -> f64 {
            let base = [10.0, 20.0, 30.0][i];
            // Devices 0 and 1 drift together ×1.6 at tick 60; device 2
            // stays stationary.
            if i < 2 && t >= 60 {
                base * 1.6
            } else {
                base
            }
        };
        for t in 0..400u64 {
            let samples: Vec<(Vec<f32>, f64)> = (0..3)
                .map(|i| {
                    let e = enc(t.wrapping_mul(3) + i as u64);
                    let obs = scale_at(i, t) * f64::from(e[0]);
                    (e, obs)
                })
                .collect();
            fleet.ingest_tick(&samples);
        }
        assert!(slots[0].generation() >= 1, "drifted device 0 promotes");
        assert!(slots[1].generation() >= 1, "drifted device 1 promotes");
        assert_eq!(slots[2].generation(), 0, "stationary bystander untouched");
        assert!(fleet_audit_is_well_formed(3, fleet.audit()));
        assert!(
            fleet.audit().iter().any(|e| matches!(
                e,
                FleetAdaptEvent::WarmStartArmed {
                    source: 0,
                    target: 1,
                    ..
                }
            )),
            "correlated flag must arm the warm start"
        );
        assert!(
            (slots[0].with_current(|m| m.scale) - 16.0).abs() < 0.5,
            "device 0 converged, got {}",
            slots[0].with_current(|m| m.scale)
        );
        assert!(
            (slots[1].with_current(|m| m.scale) - 32.0).abs() < 1.0,
            "device 1 converged, got {}",
            slots[1].with_current(|m| m.scale)
        );
        let gens = fleet.device_generations();
        assert_eq!(gens.len(), 3);
        assert_eq!(gens[2].device, "c");
        assert_eq!(gens[2].model_generation, 0);
    }

    #[test]
    fn starved_pool_queues_without_deadlock_and_never_serves_unvalidated() {
        let clock = VirtualClock::new();
        let slots = [
            ModelSlot::new(LinearModel { scale: 10.0 }),
            ModelSlot::new(LinearModel { scale: 20.0 }),
        ];
        let mut options = quick_options();
        options.correlated = vec![];
        let mut fleet = FleetAdaptation::new(
            &slots,
            vec!["a".into(), "b".into()],
            &clock,
            options,
            |_d, _m: &LinearModel, encs, obs| refit(encs, obs),
        );
        for t in 0..40u64 {
            let samples: Vec<(Vec<f32>, f64)> = (0..2)
                .map(|i| {
                    let e = enc(t.wrapping_mul(2) + i as u64);
                    ([10.0, 20.0][i] * f64::from(e[0]), e)
                })
                .map(|(obs, e)| (e, obs))
                .collect();
            fleet.ingest_tick(&samples);
        }
        fleet.starve_pool(50);
        for t in 40..300u64 {
            let samples: Vec<(Vec<f32>, f64)> = (0..2)
                .map(|i| {
                    let e = enc(t.wrapping_mul(2) + i as u64);
                    let obs = [10.0, 20.0][i] * 1.6 * f64::from(e[0]);
                    (e, obs)
                })
                .collect();
            fleet.ingest_tick(&samples);
        }
        assert!(
            fleet
                .audit()
                .iter()
                .any(|e| matches!(e, FleetAdaptEvent::PoolStarved { .. })),
            "starvation window must be audited"
        );
        assert_eq!(fleet.queue_len(), 0, "queue drains once the pool recovers");
        assert!(slots[0].generation() >= 1 && slots[1].generation() >= 1);
        assert!(
            fleet.max_admission_wait() >= 1,
            "someone must actually have waited"
        );
        assert!(
            fleet.max_admission_wait() < 120,
            "waits stay bounded, got {}",
            fleet.max_admission_wait()
        );
        assert!(fleet_audit_is_well_formed(2, fleet.audit()));
    }
}
