//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//! header, range and [`collection::vec`] strategies, [`Strategy::prop_map`],
//! and the `prop_assert*` macros. Cases are generated from a fixed seed, so
//! failures reproduce; there is no shrinking — the failing inputs are printed
//! instead.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{RngExt, SampleUniform, SeedableRng};

pub mod prelude {
    //! The glob-importable surface, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed `prop_assert*` inside a generated case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value: fmt::Debug;

    /// Draws one value from the seeded stream.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `Strategy::prop_map`).
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + fmt::Debug,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + fmt::Debug,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{fmt, StdRng, Strategy};

    /// A strategy yielding `Vec`s of exactly `len` elements of `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The [`vec`] strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs one property body over `config.cases` generated cases.
///
/// Used by the [`proptest!`] expansion; not part of the public proptest API.
#[doc(hidden)]
pub fn run_cases(
    config: ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut StdRng) -> Result<(), (TestCaseError, String)>,
) {
    // Stable per-test seed so failures reproduce run-to-run.
    let mut seed = 0xcafe_f00d_u64;
    for b in test_name.bytes() {
        seed = seed.wrapping_mul(0x100_0000_01b3).wrapping_add(b as u64);
    }
    for i in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9));
        if let Err((err, inputs)) = case(&mut rng) {
            panic!(
                "proptest `{test_name}` failed at case {i}/{}: {err}\n  inputs: {inputs}",
                config.cases
            );
        }
    }
}

/// The `proptest!` block macro: wraps each `fn name(arg in strategy, ..)` in
/// a `#[test]` that replays it over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($config, stringify!($name), |__proptest_rng| {
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);
                    )+
                    // Rendered before the body runs: the body may move the
                    // generated values.
                    let mut __proptest_inputs = ::std::string::String::new();
                    $(
                        __proptest_inputs.push_str(&::std::format!(
                            "{} = {:?}; ", stringify!($arg), &$arg
                        ));
                    )+
                    let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __proptest_result.map_err(|e| (e, __proptest_inputs))
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -2.0f64..2.0, z in 1u64..=5) {
            prop_assert!(x < 10);
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..=5).contains(&z));
        }

        #[test]
        fn vec_strategy_makes_fixed_length(v in crate::collection::vec(0..7usize, 21)) {
            prop_assert_eq!(v.len(), 21);
            prop_assert!(v.iter().all(|&k| k < 7));
        }

        #[test]
        fn prop_map_applies(d in (0..5usize).prop_map(|k| k * 2)) {
            prop_assert_eq!(d % 2, 0);
            prop_assert_ne!(d, 9);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failures_report_inputs() {
        crate::run_cases(ProptestConfig::with_cases(4), "always_fails", |_| {
            Err((TestCaseError::fail("boom"), "x = 1".into()))
        });
    }
}
