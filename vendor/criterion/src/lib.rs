//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — [`Criterion`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`] and
//! [`black_box`] — backed by a plain wall-clock harness: each routine is
//! warmed up, then timed over `sample_size` samples, and the per-iteration
//! mean, minimum and maximum are printed. No statistics machinery, no
//! reports on disk.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness configuration and runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iters_per_sample: 0,
        };
        // Warm-up plus auto-calibration of iterations per sample.
        b.calibrate(&mut f);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let per_iter: Vec<f64> = b
            .samples
            .iter()
            .map(|d| d.as_secs_f64() * 1e9 / b.iters_per_sample.max(1) as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
        let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().copied().fold(0.0f64, f64::max);
        println!(
            "{id:<40} {:>12} /iter  (min {}, max {}, {} samples x {} iters)",
            format_ns(mean),
            format_ns(min),
            format_ns(max),
            self.sample_size,
            b.iters_per_sample
        );
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Passed to the closure given to [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Runs the routine once to pick an iteration count that makes one
    /// sample last roughly a millisecond (so fast routines get averaged).
    fn calibrate<F: FnMut(&mut Bencher)>(&mut self, f: &mut F) {
        self.iters_per_sample = 1;
        f(self);
        let once = self.samples.last().copied().unwrap_or(Duration::ZERO);
        let target = Duration::from_millis(1);
        if once < target && !once.is_zero() {
            self.iters_per_sample =
                (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        }
    }

    /// Times `routine`, repeating it `iters_per_sample` times per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample.max(1) {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

/// Declares a group of benchmarks as a callable function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("tiny_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = tiny
    }

    #[test]
    fn harness_runs_and_times() {
        benches();
    }

    #[test]
    fn short_form_group_compiles() {
        criterion_group!(quick, tiny);
        quick();
    }

    #[test]
    #[should_panic(expected = "sample size must be positive")]
    fn zero_sample_size_rejected() {
        let _ = Criterion::default().sample_size(0);
    }
}
