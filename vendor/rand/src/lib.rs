//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the exact subset of the `rand` 0.10 API the workspace uses:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic PRNG (xoshiro256++ here;
//!   the real crate uses ChaCha12 — any fixed high-quality stream works, the
//!   workspace only relies on determinism per seed),
//! * [`SeedableRng::seed_from_u64`],
//! * [`RngExt::random`] for `f32` / `f64` / `bool`,
//! * [`RngExt::random_range`] over half-open and inclusive numeric ranges.
//!
//! One deliberate extension beyond the upstream API: [`rngs::StdRng::state`]
//! and [`rngs::StdRng::from_state`] expose the generator state so search
//! checkpoints can capture and restore the exact stream position
//! (`lightnas-runtime` relies on this for bit-identical resume).

use std::ops::{Range, RangeInclusive};

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value-producing interface (merges upstream `RngCore` + `Rng`).
pub trait RngExt {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of one 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random value of a supported type (`f32`/`f64` in `[0, 1)`,
    /// `bool` fair coin, integers over their full range).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform sample from `range` (half-open `lo..hi` or inclusive
    /// `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngExt + ?Sized> RngExt for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types [`RngExt::random`] can produce.
pub trait Standard: Sized {
    /// Draws one uniform value from the generator.
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngExt + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types [`RngExt::random_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). The bounds are already validated non-empty.
    fn sample_between<R: RngExt + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngExt + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // Width as u64 of the value count minus one.
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                let count = if inclusive { span.checked_add(1) } else { Some(span) };
                match count {
                    // Full 2^64 span (only reachable for 64-bit inclusive
                    // ranges): every draw is valid.
                    None => (lo as $wide).wrapping_add(rng.next_u64() as $wide) as $t,
                    Some(n) => {
                        // Debiased multiply-shift (Lemire); the retry loop
                        // terminates with overwhelming probability.
                        let threshold = n.wrapping_neg() % n;
                        loop {
                            let wide = rng.next_u64() as u128 * n as u128;
                            if (wide as u64) >= threshold {
                                let offset = (wide >> 64) as u64;
                                return (lo as $wide).wrapping_add(offset as $wide) as $t;
                            }
                        }
                    }
                }
            }
        }
    )*};
}
sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngExt + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                // Standard scale-and-shift; for floats the inclusive and
                // half-open variants are indistinguishable in practice.
                let u: $t = rng.random();
                lo + (hi - lo) * u
            }
        }
    )*};
}
sample_uniform_float!(f32, f64);

/// Range shapes accepted by [`RngExt::random_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngExt + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngExt + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngExt + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngExt, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256++.
    ///
    /// Statistically strong, tiny state, and — unlike the upstream ChaCha12
    /// `StdRng` — with an inspectable state ([`state`](Self::state) /
    /// [`from_state`](Self::from_state)) so checkpoints can freeze and
    /// restore the exact stream position.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw generator state (for checkpoint serialization).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator mid-stream from a captured state.
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which xoshiro cannot leave.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64 (the xoshiro authors' method).
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range_and_cover_it() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut lo, mut hi) = (1.0f64, 0.0f64);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn integer_ranges_hit_every_value_without_bias() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 7];
        let n = 70_000;
        for _ in 0..n {
            counts[rng.random_range(0..7usize)] += 1;
        }
        for &c in &counts {
            let expected = n / 7;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "count {c} far from {expected}"
            );
        }
    }

    #[test]
    fn inclusive_ranges_reach_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw = [false; 3];
        for _ in 0..1000 {
            let v: i32 = rng.random_range(-1..=1);
            saw[(v + 1) as usize] = true;
        }
        assert!(saw.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: f32 = rng.random_range(0.7..1.3);
            assert!((0.7..1.3).contains(&x));
            let y: f64 = rng.random_range(f64::EPSILON..1.0);
            assert!(y > 0.0 && y < 1.0);
        }
    }

    #[test]
    fn state_round_trip_resumes_the_exact_stream() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..17 {
            rng.next_u64();
        }
        let saved = rng.state();
        let tail: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
        let mut resumed = StdRng::from_state(saved);
        let resumed_tail: Vec<u64> = (0..32).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, resumed_tail);
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: RngExt + ?Sized>(rng: &mut R) -> (f32, bool, usize) {
            (rng.random(), rng.random(), rng.random_range(0..10))
        }
        let mut rng = StdRng::seed_from_u64(6);
        let (f, _, i) = draw(&mut rng);
        assert!((0.0..1.0).contains(&f));
        assert!(i < 10);
    }
}
