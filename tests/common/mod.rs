//! Shared fixture for the cross-crate integration tests: substrate stack
//! built once per test binary.

use std::sync::OnceLock;

use lightnas_repro::prelude::*;

// Each integration-test binary compiles this module independently and uses
// a different subset of the fields.
#[allow(dead_code)]
pub struct Stack {
    pub space: SearchSpace,
    pub device: Xavier,
    pub oracle: AccuracyOracle,
    pub predictor: MlpPredictor,
    pub lut: LutPredictor,
}

static STACK: OnceLock<Stack> = OnceLock::new();

pub fn stack() -> &'static Stack {
    STACK.get_or_init(|| {
        let space = SearchSpace::standard();
        let device = Xavier::maxn();
        let oracle = AccuracyOracle::imagenet();
        let data = MetricDataset::sample_diverse(&device, &space, Metric::LatencyMs, 2500, 42);
        let (train, _) = data.split(0.9);
        let predictor = MlpPredictor::train(
            &train,
            &TrainConfig {
                epochs: 60,
                batch_size: 128,
                lr: 2e-3,
                seed: 0,
            },
        );
        let lut = LutPredictor::build(&device, &space);
        Stack {
            space,
            device,
            oracle,
            predictor,
            lut,
        }
    })
}
