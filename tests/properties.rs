//! Property-based tests on cross-crate invariants (proptest).

use proptest::prelude::*;

use lightnas_repro::prelude::*;
use lightnas_repro::space::{NUM_OPS, SEARCHABLE_LAYERS};

fn arb_arch() -> impl Strategy<Value = Architecture> {
    proptest::collection::vec(0..NUM_OPS, SEARCHABLE_LAYERS)
        .prop_map(|idx| Architecture::new(idx.into_iter().map(Operator::from_index).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encoding_round_trips(arch in arb_arch()) {
        let enc = arch.encode();
        prop_assert_eq!(Architecture::decode(&enc), arch);
    }

    #[test]
    fn encoding_has_exactly_l_ones(arch in arb_arch()) {
        let ones = arch.encode().iter().filter(|&&v| v == 1.0).count();
        prop_assert_eq!(ones, SEARCHABLE_LAYERS + 1); // + the fixed block row
    }

    #[test]
    fn latency_is_positive_and_bounded(arch in arb_arch()) {
        let space = SearchSpace::standard();
        let device = Xavier::maxn();
        let ms = device.true_latency_ms(&arch, &space);
        prop_assert!(ms > 5.0 && ms < 60.0, "latency {} out of physical range", ms);
    }

    #[test]
    fn energy_exceeds_static_floor(arch in arb_arch()) {
        let space = SearchSpace::standard();
        let device = Xavier::maxn();
        let ms = device.true_latency_ms(&arch, &space);
        let mj = device.true_energy_mj(&arch, &space);
        // Energy can never be below static power x total time.
        prop_assert!(mj >= device.config().static_power_w * ms - 1e-6);
    }

    #[test]
    fn upgrading_one_op_never_reduces_flops(arch in arb_arch(), slot in 0..SEARCHABLE_LAYERS) {
        let space = SearchSpace::standard();
        let mut ops = arch.ops().to_vec();
        // K7E6 is the superset operator: replacing anything with it cannot
        // reduce the analytic cost.
        ops[slot] = Operator::from_index(5);
        let upgraded = Architecture::new(ops);
        prop_assert!(
            upgraded.flops(&space).total_flops() >= arch.flops(&space).total_flops()
        );
    }

    #[test]
    fn upgrading_one_op_never_reduces_true_latency(arch in arb_arch(), slot in 0..SEARCHABLE_LAYERS) {
        let space = SearchSpace::standard();
        let device = Xavier::maxn();
        let mut ops = arch.ops().to_vec();
        if ops[slot] == Operator::from_index(5) {
            return Ok(()); // already maximal
        }
        ops[slot] = Operator::from_index(5);
        let upgraded = Architecture::new(ops);
        // Allow a small tolerance: the transition-stall term is not strictly
        // monotone in op size (a heavier op can smooth a workload cliff).
        prop_assert!(
            device.true_latency_ms(&upgraded, &space)
                >= device.true_latency_ms(&arch, &space) - 0.05
        );
    }

    #[test]
    fn oracle_quality_is_deterministic(arch in arb_arch()) {
        let oracle = AccuracyOracle::imagenet();
        prop_assert_eq!(oracle.quality(&arch), oracle.quality(&arch));
    }

    #[test]
    fn top1_is_within_the_physical_range(arch in arb_arch(), seed in 0u64..1000) {
        let oracle = AccuracyOracle::imagenet();
        let t = oracle.top1(&arch, TrainingProtocol::full(), seed);
        prop_assert!((5.0..78.0).contains(&t), "top-1 {} out of range", t);
    }

    #[test]
    fn quick_protocol_never_beats_full(arch in arb_arch()) {
        let oracle = AccuracyOracle::imagenet();
        let quick = oracle.top1(&arch, TrainingProtocol::quick(), 0);
        let full = oracle.top1(&arch, TrainingProtocol::full(), 0);
        prop_assert!(quick <= full + 1e-9);
    }

    #[test]
    fn top5_always_at_least_top1(top1 in 10.0f64..77.0) {
        let oracle = AccuracyOracle::imagenet();
        prop_assert!(oracle.top5_from_top1(top1) >= top1);
    }

    #[test]
    fn se_tail_monotonically_helps_accuracy(arch in arb_arch(), tail in 1usize..=21) {
        let oracle = AccuracyOracle::imagenet();
        let with = oracle.asymptotic_top1(&arch.with_se_tail(tail));
        let without = oracle.asymptotic_top1(&arch);
        prop_assert!(with >= without - 1e-9);
    }

    #[test]
    fn se_tail_monotonically_costs_latency(arch in arb_arch(), tail in 1usize..=21) {
        let space = SearchSpace::standard();
        let device = Xavier::maxn();
        let with = device.true_latency_ms(&arch.with_se_tail(tail), &space);
        let without = device.true_latency_ms(&arch, &space);
        prop_assert!(with >= without - 1e-9);
    }

    #[test]
    fn selection_probabilities_are_normalized(
        logits in proptest::collection::vec(-3.0f64..3.0, SEARCHABLE_LAYERS * NUM_OPS)
    ) {
        let mut params = ArchParams::new();
        for (l, row) in params.alpha_mut().iter_mut().enumerate() {
            for (k, v) in row.iter_mut().enumerate() {
                *v = logits[l * NUM_OPS + k];
            }
        }
        for row in params.probabilities() {
            let sum: f64 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(row.iter().all(|&p| p > 0.0));
        }
        // The strongest arch always has the highest selection probability
        // among single-op swaps of itself.
        let strongest = params.strongest();
        let p_star = params.selection_probability(&strongest);
        let mut ops = strongest.ops().to_vec();
        for l in 0..SEARCHABLE_LAYERS {
            let orig = ops[l];
            for k in 0..NUM_OPS {
                ops[l] = Operator::from_index(k);
                let p = params.selection_probability(&Architecture::new(ops.clone()));
                prop_assert!(p <= p_star + 1e-12);
            }
            ops[l] = orig;
        }
    }

    #[test]
    fn lut_never_overestimates_by_much(arch in arb_arch()) {
        // The LUT misses the runtime overhead and stalls, so its prediction
        // sits consistently BELOW the true latency.
        let space = SearchSpace::standard();
        let device = Xavier::maxn();
        let lut = LutPredictor::build(&device, &space);
        let predicted = lut.predict(&arch);
        let truth = device.true_latency_ms(&arch, &space);
        prop_assert!(truth > predicted, "LUT {} >= truth {}", predicted, truth);
        prop_assert!(truth - predicted < 16.0, "gap {} implausible", truth - predicted);
    }

    #[test]
    fn width_scaling_moves_flops_monotonically(arch in arb_arch()) {
        let narrow = SearchSpace::with_config(SpaceConfig { resolution: 224, width_mult: 0.75 });
        let standard = SearchSpace::standard();
        let wide = SearchSpace::with_config(SpaceConfig { resolution: 224, width_mult: 1.4 });
        let f = |s: &SearchSpace| arch.flops(s).total_flops();
        prop_assert!(f(&narrow) <= f(&standard));
        prop_assert!(f(&standard) <= f(&wide));
    }
}
