//! End-to-end rank stability: a λ sweep searched under the fast kernel
//! tier must reproduce the strict sweep's Pareto ordering.
//!
//! The fast tier's per-kernel perturbations are bounded (tolerance suite in
//! `lightnas-tensor`) and its 100-step training trajectories track strict
//! ones (`lightnas-nn`), but what the *search* ultimately sells is an
//! ordering: which architecture is faster, which is more accurate, across
//! the trade-off curve. This test runs the motivational λ sweep (three
//! well-separated λs) under both tiers and asserts the orderings agree —
//! latency ranks, accuracy ranks, and the λ→latency monotonicity the sweep
//! exists to demonstrate.

mod common;

use common::stack;
use lightnas_repro::prelude::*;
use lightnas_repro::search::sweep::{lambda_sweep, SweepPoint};
use lightnas_repro::tensor::{set_kernel_mode, KernelMode};

const LAMBDAS: [f64; 3] = [0.0005, 0.05, 1.0];

fn run_sweep_under(mode: KernelMode) -> Vec<SweepPoint> {
    let s = stack();
    set_kernel_mode(mode);
    let points = lambda_sweep(
        &s.space,
        &s.oracle,
        &s.lut,
        &s.device,
        &LAMBDAS,
        SearchConfig::fast(),
        0xfa57,
    );
    set_kernel_mode(KernelMode::Strict);
    points
}

/// Indices of `points` sorted by `key`, ties broken by index (stable).
fn rank_order(points: &[SweepPoint], key: impl Fn(&SweepPoint) -> f64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| key(&points[a]).total_cmp(&key(&points[b])));
    idx
}

#[test]
fn fast_sweep_reproduces_the_strict_pareto_ordering() {
    let strict = run_sweep_under(KernelMode::Strict);
    let fast = run_sweep_under(KernelMode::Fast);

    // The sweep must span a real trade-off range, or rank agreement is
    // vacuous: the extreme λs must separate latency decisively.
    let lat = |p: &SweepPoint| p.latency_ms;
    assert!(
        strict[0].latency_ms > strict[2].latency_ms * 1.2,
        "strict sweep did not separate the extremes: {:.2} vs {:.2} ms",
        strict[0].latency_ms,
        strict[2].latency_ms
    );

    // Pareto ordering: latency ranks and accuracy ranks agree across tiers.
    assert_eq!(
        rank_order(&strict, lat),
        rank_order(&fast, lat),
        "fast search reordered the sweep by latency: strict {:?} vs fast {:?}",
        strict.iter().map(lat).collect::<Vec<_>>(),
        fast.iter().map(lat).collect::<Vec<_>>()
    );
    assert_eq!(
        rank_order(&strict, |p| p.top1_quick),
        rank_order(&fast, |p| p.top1_quick),
        "fast search reordered the sweep by accuracy: strict {:?} vs fast {:?}",
        strict.iter().map(|p| p.top1_quick).collect::<Vec<_>>(),
        fast.iter().map(|p| p.top1_quick).collect::<Vec<_>>()
    );

    // Both tiers show the motivating monotone trend: more λ, less latency.
    for points in [&strict, &fast] {
        assert!(
            points[0].latency_ms >= points[2].latency_ms,
            "λ={} should not be faster than λ={}",
            LAMBDAS[0],
            LAMBDAS[2]
        );
    }

    // The tiers must also land *near* each other point for point — rank
    // stability through wildly different architectures would be luck, not
    // tolerance. 10% covers an op flip on a couple of layers.
    for (s, f) in strict.iter().zip(&fast) {
        assert!(
            (s.latency_ms - f.latency_ms).abs() <= 0.10 * s.latency_ms,
            "λ={}: fast landed at {:.2} ms vs strict {:.2} ms",
            s.lambda,
            f.latency_ms,
            s.latency_ms
        );
    }
}
