//! Integration tests of the `lightnas_cli` binary (fast commands only —
//! the search commands are exercised through the library tests).

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lightnas_cli"))
}

#[test]
fn measure_prints_all_metrics_for_a_valid_architecture() {
    let arch = vec!["K3E6"; 21].join("-");
    let out = cli()
        .args(["measure", "--arch", &arch])
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for field in ["latency", "energy", "top-1", "MAdds", "params", "depth"] {
        assert!(text.contains(field), "missing {field} in:\n{text}");
    }
    assert!(
        text.contains("20.2"),
        "MobileNetV2 anchor latency missing:\n{text}"
    );
}

#[test]
fn measure_rejects_malformed_architectures() {
    let out = cli()
        .args(["measure", "--arch", "K3E6-bogus"])
        .output()
        .expect("spawns");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error"), "unexpected stderr: {err}");
}

#[test]
fn baselines_lists_the_table2_roster() {
    let out = cli().arg("baselines").output().expect("spawns");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["MobileNetV2", "FBNet-C", "OFA-L", "EfficientNet-B0"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cli().arg("frobnicate").output().expect("spawns");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = cli().arg("--help").output().expect("spawns");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("lightnas_cli"));
}

#[test]
fn search_requires_a_target() {
    let out = cli().arg("search").output().expect("spawns");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--target"));
}
