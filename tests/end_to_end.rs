//! End-to-end integration: the full LightNAS pipeline across all crates —
//! device simulation → predictor training → one-time search → evaluation.

mod common;

use common::stack;
use lightnas_repro::prelude::*;

#[test]
fn one_time_search_hits_the_target_end_to_end() {
    let s = stack();
    let engine = LightNas::new(&s.space, &s.oracle, &s.predictor, SearchConfig::paper());
    let outcome = engine.search(24.0, 11);
    let measured = s.device.true_latency_ms(&outcome.architecture, &s.space);
    assert!(
        (measured - 24.0).abs() < 1.5,
        "one-time search landed at {measured:.2} ms for a 24 ms target"
    );
}

#[test]
fn searched_networks_dominate_their_latency_band() {
    // The Table 2 shape: at comparable latency, the searched network is at
    // least as accurate as every reference baseline in the band.
    let s = stack();
    let engine = LightNas::new(&s.space, &s.oracle, &s.predictor, SearchConfig::paper());
    let refs = reference_architectures();
    let mut checked = 0;
    for &t in &[20.0, 24.0, 28.0] {
        let net = engine.search_architecture(t, 0xe2e);
        let our_lat = s.device.true_latency_ms(&net, &s.space);
        let our_top1 = s.oracle.top1(&net, TrainingProtocol::full(), 0);
        for r in refs.iter().filter(|r| !r.extra_techniques) {
            let lat = s.device.true_latency_ms(&r.arch, &s.space);
            if (lat - our_lat).abs() < 1.0 {
                let base_top1 = s.oracle.top1(&r.arch, TrainingProtocol::full(), 0);
                assert!(
                    our_top1 + 0.15 >= base_top1,
                    "at {our_lat:.1} ms, {} ({base_top1:.2}) beats LightNet ({our_top1:.2})",
                    r.name
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 1, "no latency-matched baselines encountered");
}

#[test]
fn fixed_lambda_engine_needs_tuning_where_lightnas_does_not() {
    let s = stack();
    let config = SearchConfig::fast();
    // One arbitrary λ almost surely misses the 22 ms target ...
    let fbnet = FbnetSearch::new(&s.space, &s.oracle, &s.lut, 0.01, config);
    let fb_arch = fbnet.search_architecture(2);
    let fb_lat = s.device.true_latency_ms(&fb_arch, &s.space);
    // ... while LightNAS is on target with the same step budget.
    let light = LightNas::new(&s.space, &s.oracle, &s.predictor, config);
    let ln_arch = light.search_architecture(22.0, 2);
    let ln_lat = s.device.true_latency_ms(&ln_arch, &s.space);
    assert!(
        (ln_lat - 22.0).abs() < (fb_lat - 22.0).abs() + 0.5,
        "LightNAS ({ln_lat:.2} ms) should be closer to 22 ms than fixed-λ ({fb_lat:.2} ms)"
    );
    assert!(
        (ln_lat - 22.0).abs() < 2.0,
        "LightNAS missed the target: {ln_lat:.2} ms"
    );
}

#[test]
fn energy_constrained_search_works_through_the_same_engine() {
    let s = stack();
    let data = MetricDataset::sample_diverse(&s.device, &s.space, Metric::EnergyMj, 1500, 7);
    let (train, _) = data.split(0.9);
    let energy_predictor = MlpPredictor::train(
        &train,
        &TrainConfig {
            epochs: 50,
            batch_size: 128,
            lr: 2e-3,
            seed: 7,
        },
    );
    let engine = LightNas::new(
        &s.space,
        &s.oracle,
        &energy_predictor,
        SearchConfig::paper(),
    );
    let outcome = engine.search(500.0, 3);
    let measured = s.device.true_energy_mj(&outcome.architecture, &s.space);
    assert!(
        (measured - 500.0).abs() < 60.0,
        "energy-constrained search landed at {measured:.0} mJ for a 500 mJ target"
    );
}

#[test]
fn memory_constrained_search_works_through_the_same_engine() {
    // The third metric (peak inference memory): train a predictor on it,
    // plug it into the unchanged engine, hit the budget.
    let s = stack();
    let data = MetricDataset::sample_diverse(&s.device, &s.space, Metric::PeakMemoryMib, 1500, 17);
    let (train, valid) = data.split(0.9);
    let predictor = MlpPredictor::train(
        &train,
        &TrainConfig {
            epochs: 50,
            batch_size: 128,
            lr: 2e-3,
            seed: 17,
        },
    );
    assert!(
        predictor.rmse(&valid) < valid.target_std() / 2.0,
        "memory predictor failed to learn"
    );
    // Pick a mid-range budget from the corpus itself.
    let budget = data.target_mean();
    let engine = LightNas::new(&s.space, &s.oracle, &predictor, SearchConfig::paper());
    let outcome = engine.search(budget, 4);
    let measured = s.device.peak_memory_mib(&outcome.architecture, &s.space);
    assert!(
        (measured - budget).abs() < budget * 0.12,
        "memory-constrained search landed at {measured:.1} MiB for a {budget:.1} MiB target"
    );
}

#[test]
fn multi_constraint_search_satisfies_both_budgets() {
    use lightnas_repro::search::multi::{Budget, MultiConstraintSearch};
    let s = stack();
    let data = MetricDataset::sample_diverse(&s.device, &s.space, Metric::EnergyMj, 1500, 23);
    let (train, _) = data.split(0.9);
    let energy = MlpPredictor::train(
        &train,
        &TrainConfig {
            epochs: 50,
            batch_size: 128,
            lr: 2e-3,
            seed: 23,
        },
    );
    let engine = MultiConstraintSearch::new(
        &s.space,
        &s.oracle,
        vec![
            Budget {
                predictor: &s.predictor,
                target: 25.0,
                label: "latency",
            },
            Budget {
                predictor: &energy,
                target: 470.0,
                label: "energy",
            },
        ],
        SearchConfig::paper(),
    );
    let out = engine.search(1);
    let arch = &out.outcome.architecture;
    assert!(s.device.true_latency_ms(arch, &s.space) < 26.5);
    assert!(s.device.true_energy_mj(arch, &s.space) < 520.0);
}

#[test]
fn detection_transfer_preserves_backbone_ordering() {
    let s = stack();
    let ssd = SsdLite::new(s.device.clone());
    let engine = LightNas::new(&s.space, &s.oracle, &s.predictor, SearchConfig::paper());
    let light = engine.search_architecture(28.0, 5);
    let mbv2 = mobilenet_v2();
    let r_light = ssd.evaluate(&light, &s.oracle, 0);
    let r_mbv2 = ssd.evaluate(&mbv2, &s.oracle, 0);
    assert!(
        r_light.ap > r_mbv2.ap,
        "LightNet backbone AP {:.1} should beat MobileNetV2 {:.1}",
        r_light.ap,
        r_mbv2.ap
    );
}

#[test]
fn random_search_is_weaker_than_lightnas_at_equal_budget() {
    let s = stack();
    let engine = LightNas::new(&s.space, &s.oracle, &s.predictor, SearchConfig::paper());
    let ln = engine.search_architecture(24.0, 9);
    let rs = RandomSearch::new(&s.space, &s.oracle, &s.predictor, 300)
        .search(24.0, 9)
        .expect("feasible budget");
    let (a, b) = (s.oracle.asymptotic_top1(&ln), s.oracle.asymptotic_top1(&rs));
    assert!(a > b, "LightNAS {a:.2} should beat random search {b:.2}");
}
